//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface this workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{throughput, bench_function, finish}`, `Bencher::iter`,
//! `black_box` — with a simple wall-clock median-of-batches measurement
//! instead of criterion's full statistical machinery. Results print as
//! `name: time/iter (throughput)` lines; there are no HTML reports, no
//! saved baselines, and no outlier analysis.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration work declaration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// The top-level benchmark driver.
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Configure how long each benchmark measures (stub honors it
    /// approximately).
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement = d;
        self
    }

    /// Ignored in the stub; kept for API compatibility.
    pub fn sample_size(self, _n: usize) -> Criterion {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Run a standalone benchmark (outside any group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        let report = run_bench(self.measurement, f);
        print_report(name, &report, None);
        self
    }
}

/// A named group of benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare how much work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Ignored in the stub; kept for API compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ignored in the stub; kept for API compatibility.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Measure one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let id = id.into();
        let report = run_bench(self.criterion.measurement, f);
        print_report(&format!("{}/{}", self.name, id), &report, self.throughput);
    }

    /// End the group (prints nothing extra in the stub).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` does the timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` executions of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

struct Report {
    ns_per_iter: f64,
}

fn run_bench<F: FnMut(&mut Bencher)>(measurement: Duration, mut f: F) -> Report {
    // Calibrate: grow the iteration count until one batch takes >= ~1 ms.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 24 {
            break;
        }
        iters *= 8;
    }

    // Measure: median of batches within the time budget.
    let mut samples: Vec<f64> = Vec::new();
    let deadline = Instant::now() + measurement;
    while samples.len() < 5 || (Instant::now() < deadline && samples.len() < 64) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    Report {
        ns_per_iter: samples[samples.len() / 2],
    }
}

fn print_report(name: &str, report: &Report, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 * 1e9 / report.ns_per_iter;
            format!("  ({:.2} Melem/s)", per_sec / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 * 1e9 / report.ns_per_iter;
            format!("  ({:.2} MiB/s)", per_sec / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("  {name}: {:.1} ns/iter{rate}", report.ns_per_iter);
}

/// Group several benchmark functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(1));
        let mut x = 0u64;
        group.bench_function("add", |b| {
            b.iter(|| {
                x = x.wrapping_add(black_box(1));
                x
            })
        });
        group.finish();
        assert!(x > 0);
    }
}
