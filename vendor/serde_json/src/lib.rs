//! Offline stand-in for `serde_json`.
//!
//! Renders and parses JSON against the vendored `serde` facade's
//! [`Value`] tree. Implements the subset of the real crate's API this
//! workspace uses: [`to_writer`], [`to_string`], [`to_string_pretty`],
//! [`from_reader`], [`from_str`], and a compatible [`Error`] type.

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::io::{Read, Write};

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Error {
        Error::new(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize `value` as human-readable JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Serialize `value` as compact JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let text = to_string(value)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

/// Serialize `value` as pretty JSON into `writer`.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let text = to_string_pretty(value)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse_value(text)?;
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

/// Deserialize a `T` from a reader producing JSON text.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    from_str(&text)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn render(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` keeps a short roundtrippable form (`1.5`, `1e300`);
                // ensure integral floats still read back as floats.
                let s = format!("{f:?}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no NaN/Infinity; mirror serde_json's lossy mode.
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline(indent, depth, out);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(indent, depth + 1, out);
                render_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, indent, depth + 1, out);
            }
            newline(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )));
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: decode exactly one character's worth
                    // of bytes (validating only that slice, not the rest of
                    // the input).
                    let start = self.pos - 1;
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(Error::new("invalid UTF-8 in string")),
                    };
                    let slice = self
                        .bytes
                        .get(start..start + width)
                        .ok_or_else(|| Error::new("invalid UTF-8 in string"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push(s.chars().next().unwrap());
                    self.pos = start + width;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let v: u64 = from_str(&to_string(&42u64).unwrap()).unwrap();
        assert_eq!(v, 42);
        let v: f64 = from_str(&to_string(&1.5f64).unwrap()).unwrap();
        assert_eq!(v, 1.5);
        let v: f64 = from_str(&to_string(&2.0f64).unwrap()).unwrap();
        assert_eq!(v, 2.0);
        let v: String = from_str(&to_string("a\"b\\c\nd").unwrap()).unwrap();
        assert_eq!(v, "a\"b\\c\nd");
        let v: i64 = from_str("-12").unwrap();
        assert_eq!(v, -12);
    }

    #[test]
    fn roundtrip_collections() {
        let data = vec![vec![1u32, 2], vec![3]];
        let back: Vec<Vec<u32>> = from_str(&to_string(&data).unwrap()).unwrap();
        assert_eq!(back, data);
        let back: Vec<Vec<u32>> = from_str(&to_string_pretty(&data).unwrap()).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn pretty_output_is_indented() {
        let text = to_string_pretty(&vec![1u32]).unwrap();
        assert_eq!(text, "[\n  1\n]");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 troll").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn unicode_strings_roundtrip() {
        let s = "héllo → wörld";
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }
}
