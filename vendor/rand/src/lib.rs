//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Everything in this workspace draws randomness from an explicitly seeded
//! [`rngs::SmallRng`], so this stub only needs deterministic seeded
//! generation — no OS entropy, no `thread_rng`. The generator is
//! xoshiro256++ seeded through splitmix64 (the same construction the real
//! `SmallRng` uses on 64-bit targets, though the exact streams differ).
//!
//! Supported surface: `Rng::{gen, gen_range, gen_bool, gen_ratio}`,
//! `SeedableRng::seed_from_u64`, `rngs::SmallRng`, `rngs::StdRng`, and
//! `seq::SliceRandom::{shuffle, choose}`.

use std::ops::{Range, RangeInclusive};

/// The core source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Uniform in [0, 1) with 53 bits of precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Types with uniform sampling over half-open/closed ranges.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(low <= high, "empty gen_range");
                } else {
                    assert!(low < high, "empty gen_range");
                }
                // Span fits u64 for every supported width (i128 math covers
                // the signed corner cases).
                let span = (high as i128 - low as i128 + if inclusive { 1 } else { 0 }) as u128;
                if span == 0 || span > u64::MAX as u128 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                (low as i128 + uniform_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self {
        if inclusive {
            assert!(low <= high, "empty gen_range");
        } else {
            assert!(low < high, "empty gen_range");
        }
        low + f64::sample_from(rng) * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self {
        f64::sample_between(rng, f64::from(low), f64::from(high), inclusive) as f32
    }
}

/// Ranges [`Rng::gen_range`] accepts. A single blanket impl per range shape
/// (mirroring the real crate) keeps integer-literal inference working:
/// `Range<?int>: SampleRange<T>` immediately unifies `?int == T`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// Uniform value in `[0, span)` (`span == 0` means the full u64 domain).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Debiased multiply-shift (Lemire); the rejection loop terminates fast.
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// User-facing convenience methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_from(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample_from(self) < p
    }

    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        self.gen_range(0..denominator) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Seeded xoshiro256++ generator (deterministic, non-cryptographic).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // Expand the seed with splitmix64, as rand does, so nearby
            // seeds produce unrelated streams.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the stub has no cryptographic generator, and none of the
    /// workspace's uses need one.
    pub type StdRng = SmallRng;
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and random selection.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(64..=146);
            assert!((64..=146).contains(&x));
            let y: usize = rng.gen_range(0..5);
            assert!(y < 5);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice sorted (astronomically unlikely)"
        );
    }
}
