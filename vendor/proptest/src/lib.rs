//! Offline stand-in for the `proptest` crate.
//!
//! Provides the strategy combinators and macros this workspace's property
//! tests use — `proptest!`, `prop_oneof!`, `prop_assert*!`, `any`, `Just`,
//! ranges, tuples, `prop::collection::vec`, `prop_map` — with deterministic
//! seeded sampling. Differences from the real crate: no shrinking (a
//! failing case reports its seed and values instead) and no persistence.
//! Case count defaults to 64; override with `PROPTEST_CASES`.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error produced by a failing property case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }

    /// Alias kept for API compatibility.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// The RNG handed to strategies.
pub struct TestRng(SmallRng);

impl TestRng {
    fn from_seed(seed: u64) -> TestRng {
        TestRng(SmallRng::seed_from_u64(seed))
    }

    pub fn inner(&mut self) -> &mut SmallRng {
        &mut self.0
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of values of one type.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Result of [`Strategy::prop_filter`]: resample until the predicate holds.
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive samples");
    }
}

/// Uniform choice between same-typed strategies (`prop_oneof!`).
pub struct Union<S> {
    options: Vec<S>,
}

impl<S> Union<S> {
    pub fn new(options: Vec<S>) -> Union<S> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

// ---------------------------------------------------------------------------
// Ranges and `any`
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool, f64);

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

/// Strategy over a type's whole domain.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
);

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Length specification accepted by [`collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a sampled length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Number of cases per property (`PROPTEST_CASES` overrides).
fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// Drive one property through its cases. Called by `proptest!`-generated
/// tests; panics (failing the test) on the first erroring case.
pub fn run_cases(name: &str, case: impl Fn(&mut TestRng) -> Result<(), TestCaseError>) {
    // Stable per-test seed: FNV-1a of the test name.
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for i in 0..case_count() {
        let mut rng = TestRng::from_seed(seed.wrapping_add(i));
        if let Err(err) = case(&mut rng) {
            panic!("property `{name}` failed at case {i} (seed {seed}): {err}");
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests. Each function's arguments are sampled from the
/// given strategies; the body may use `prop_assert*!` and may `return
/// Ok(())` early.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |rng| {
                    $(let $arg = $crate::Strategy::sample(&$strat, rng);)+
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })()
                });
            }
        )*
    };
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($strategy),+])
    };
}

/// Like `assert!`, but fails only the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Like `assert_eq!`, but fails only the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Like `assert_ne!`, but fails only the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy, TestCaseError,
    };

    /// Namespace mirror so `prop::collection::vec(...)` works.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn tuples_and_maps(pair in (0u8..4, 10u8..20).prop_map(|(a, b)| (b, a))) {
            let (b, a) = pair;
            prop_assert!(a < 4 && (10..20).contains(&b));
        }

        #[test]
        fn oneof_picks_from_options(v in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(v == 1 || v == 2);
            if v == 1 {
                return Ok(());
            }
            prop_assert_eq!(v, 2);
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(any::<u16>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails`")]
    fn failing_property_panics() {
        crate::run_cases("always_fails", |_| Err(crate::TestCaseError::fail("nope")));
    }
}
