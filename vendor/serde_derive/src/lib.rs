//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! vendored value-tree `serde` facade without depending on `syn`/`quote`
//! (unavailable offline). The item is parsed directly from the
//! `proc_macro::TokenTree` stream and the impl is emitted as formatted
//! source text, then re-parsed into a `TokenStream`.
//!
//! Supported shapes (the full set this workspace uses):
//! * named-field structs, including generics with inline bounds;
//! * tuple structs (single-field newtypes serialize transparently);
//! * unit structs;
//! * enums with unit and tuple variants;
//! * field attributes `#[serde(skip)]`, `#[serde(default)]`,
//!   `#[serde(default = "path")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Trait {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, which: Trait) -> TokenStream {
    let item = match Item::parse(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let code = match which {
        Trait::Serialize => gen_serialize(&item),
        Trait::Deserialize => gen_deserialize(&item),
    };
    match code {
        Ok(code) => code
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive emitted bad code: {e:?}"))),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsed representation
// ---------------------------------------------------------------------------

/// Per-field `#[serde(...)]` attribute state.
#[derive(Default, Clone)]
struct FieldAttrs {
    skip: bool,
    /// `Some(None)` for bare `default`, `Some(Some(path))` for `default = "path"`.
    default: Option<Option<String>>,
}

struct NamedField {
    name: String,
    attrs: FieldAttrs,
}

struct Variant {
    name: String,
    /// Number of tuple fields; 0 for a unit variant.
    arity: usize,
}

enum Body {
    Named(Vec<NamedField>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    /// Generic parameter declarations, e.g. `["T: Copy + Default"]`.
    generic_decls: Vec<String>,
    /// Bare generic parameter names, e.g. `["T"]`.
    generic_names: Vec<String>,
    where_clause: String,
    body: Body,
}

impl Item {
    fn parse(input: TokenStream) -> Result<Item, String> {
        let tokens: Vec<TokenTree> = input.into_iter().collect();
        let mut pos = 0;

        skip_attrs(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);

        let kind = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
        };
        pos += 1;
        if kind != "struct" && kind != "enum" {
            return Err(format!("cannot derive for `{kind}` items"));
        }

        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected item name, got {other:?}")),
        };
        pos += 1;

        let (generic_decls, generic_names) = parse_generics(&tokens, &mut pos)?;

        // Optional `where` clause between generics and the body.
        let mut where_clause = String::new();
        if matches!(tokens.get(pos), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
            let start = pos;
            while pos < tokens.len() {
                if matches!(&tokens[pos], TokenTree::Group(g)
                    if g.delimiter() == Delimiter::Brace || g.delimiter() == Delimiter::Parenthesis)
                {
                    break;
                }
                if matches!(&tokens[pos], TokenTree::Punct(p) if p.as_char() == ';') {
                    break;
                }
                pos += 1;
            }
            where_clause = tokens[start..pos]
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(" ");
        }

        let body = match (kind.as_str(), tokens.get(pos)) {
            ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
                Body::Named(parse_named_fields(g.stream())?)
            }
            ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(count_tuple_fields(g.stream()))
            }
            ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Body::Unit,
            ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream())?)
            }
            (_, other) => return Err(format!("unsupported item body: {other:?}")),
        };

        Ok(Item {
            name,
            generic_decls,
            generic_names,
            where_clause,
            body,
        })
    }

    /// `impl` generics with `bound` appended to every type parameter.
    fn impl_generics(&self, bound: &str) -> String {
        if self.generic_decls.is_empty() {
            return String::new();
        }
        let decls: Vec<String> = self
            .generic_decls
            .iter()
            .map(|d| {
                if d.starts_with('\'') || d.starts_with("const ") {
                    d.clone()
                } else if d.contains(':') {
                    format!("{d} + {bound}")
                } else {
                    format!("{d}: {bound}")
                }
            })
            .collect();
        format!("<{}>", decls.join(", "))
    }

    /// `<T, U>` — the bare parameter list for the type position.
    fn ty_generics(&self) -> String {
        if self.generic_names.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.generic_names.join(", "))
        }
    }
}

// ---------------------------------------------------------------------------
// Token-level parsing helpers
// ---------------------------------------------------------------------------

/// Skip `#[...]` attributes starting at `pos`, returning serde attr state.
fn take_attrs(tokens: &[TokenTree], pos: &mut usize) -> Result<FieldAttrs, String> {
    let mut attrs = FieldAttrs::default();
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        let Some(TokenTree::Group(group)) = tokens.get(*pos + 1) else {
            return Err("malformed attribute".to_string());
        };
        parse_serde_attr(group.stream(), &mut attrs)?;
        *pos += 2;
    }
    Ok(attrs)
}

fn skip_attrs(tokens: &[TokenTree], pos: &mut usize) {
    let _ = take_attrs(tokens, pos);
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

/// Merge a `serde(...)` attribute body (if that is what this is) into `attrs`.
fn parse_serde_attr(stream: TokenStream, attrs: &mut FieldAttrs) -> Result<(), String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            let args: Vec<TokenTree> = args.stream().into_iter().collect();
            let mut i = 0;
            while i < args.len() {
                match &args[i] {
                    TokenTree::Ident(id) if id.to_string() == "skip" => {
                        attrs.skip = true;
                        i += 1;
                    }
                    TokenTree::Ident(id) if id.to_string() == "default" => {
                        if matches!(args.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=')
                        {
                            let Some(TokenTree::Literal(lit)) = args.get(i + 2) else {
                                return Err("expected string after `default =`".to_string());
                            };
                            let path = lit.to_string();
                            let path = path.trim_matches('"').to_string();
                            attrs.default = Some(Some(path));
                            i += 3;
                        } else {
                            attrs.default = Some(None);
                            i += 1;
                        }
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
                    other => return Err(format!("unsupported serde attribute: {other}")),
                }
            }
            Ok(())
        }
        // A non-serde attribute (doc comment, cfg, ...): ignore.
        _ => Ok(()),
    }
}

/// Parse `<...>` generics at `pos` into (declarations, bare names).
fn parse_generics(
    tokens: &[TokenTree],
    pos: &mut usize,
) -> Result<(Vec<String>, Vec<String>), String> {
    if !matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Ok((Vec::new(), Vec::new()));
    }
    *pos += 1;
    let mut depth = 1usize;
    let mut current: Vec<TokenTree> = Vec::new();
    let mut decls: Vec<String> = Vec::new();
    let mut names: Vec<String> = Vec::new();

    let mut flush = |current: &mut Vec<TokenTree>| {
        if current.is_empty() {
            return;
        }
        let text = current
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(" ")
            .replace(" : ", ": ");
        // The bare name is the leading identifier (after `const` if present).
        let mut name = String::new();
        for tok in current.iter() {
            if let TokenTree::Ident(id) = tok {
                let s = id.to_string();
                if s != "const" {
                    name = s;
                    break;
                }
            } else if let TokenTree::Punct(p) = tok {
                if p.as_char() == '\'' {
                    // Lifetime: join the tick with the following ident.
                    continue;
                }
            }
        }
        decls.push(text);
        names.push(name);
        current.clear();
    };

    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                current.push(tokens[*pos].clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    *pos += 1;
                    flush(&mut current);
                    return Ok((decls, names));
                }
                current.push(tokens[*pos].clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                flush(&mut current);
            }
            other => current.push(other.clone()),
        }
        *pos += 1;
    }
    Err("unterminated generics".to_string())
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<NamedField>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let attrs = take_attrs(&tokens, &mut pos)?;
        skip_visibility(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, got {other:?}")),
        };
        pos += 1;
        if !matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        pos += 1;
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0usize;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        fields.push(NamedField { name, attrs });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0usize;
    let mut count = 1;
    for tok in &tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => {}
        }
    }
    // Tolerate a trailing comma.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        let _attrs = take_attrs(&tokens, &mut pos)?;
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        pos += 1;
        let arity = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                pos += 1;
                n
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "struct-style enum variant `{name}` is not supported by the vendored serde"
                ));
            }
            _ => 0,
        };
        // Skip an optional discriminant and the separating comma.
        while pos < tokens.len() {
            if matches!(&tokens[pos], TokenTree::Punct(p) if p.as_char() == ',') {
                pos += 1;
                break;
            }
            pos += 1;
        }
        variants.push(Variant { name, arity });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> Result<String, String> {
    let name = &item.name;
    let impl_generics = item.impl_generics("::serde::Serialize");
    let ty_generics = item.ty_generics();
    let where_clause = &item.where_clause;

    let body = match &item.body {
        Body::Named(fields) => {
            let entries = fields
                .iter()
                .filter(|f| !f.attrs.skip)
                .map(|f| {
                    format!(
                        "({:?}.to_string(), ::serde::Serialize::to_value(&self.{}))",
                        f.name, f.name
                    )
                })
                .collect::<Vec<_>>()
                .join(",\n");
            format!("::serde::Value::Object(vec![\n{entries}\n])")
        }
        Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Tuple(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Array(vec![{items}])")
        }
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                if v.arity == 0 {
                    arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str({vq:?}.to_string()),\n",
                        v = v.name,
                        vq = v.name
                    ));
                } else {
                    let binds = (0..v.arity)
                        .map(|i| format!("f{i}"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    let inner = if v.arity == 1 {
                        "::serde::Serialize::to_value(f0)".to_string()
                    } else {
                        let items = (0..v.arity)
                            .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        format!("::serde::Value::Array(vec![{items}])")
                    };
                    arms.push_str(&format!(
                        "{name}::{v}({binds}) => ::serde::Value::Object(vec![({vq:?}.to_string(), {inner})]),\n",
                        v = v.name,
                        vq = v.name
                    ));
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };

    Ok(format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {where_clause} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    ))
}

fn gen_deserialize(item: &Item) -> Result<String, String> {
    let name = &item.name;
    let impl_generics = item.impl_generics("::serde::Deserialize");
    let ty_generics = item.ty_generics();
    let where_clause = &item.where_clause;

    let body = match &item.body {
        Body::Named(fields) => {
            let mut inits = String::new();
            for f in fields {
                let fallback = match (&f.attrs.skip, &f.attrs.default) {
                    (_, Some(Some(path))) => format!("{path}()"),
                    (true, _) | (_, Some(None)) => "Default::default()".to_string(),
                    (false, None) => format!(
                        "return Err(::serde::DeError::new(concat!(\"missing field `\", {:?}, \"` in {}\")))",
                        f.name, name
                    ),
                };
                if f.attrs.skip {
                    inits.push_str(&format!("{}: {fallback},\n", f.name));
                } else {
                    inits.push_str(&format!(
                        "{field}: match ::serde::value_get(fields, {field:?}) {{\n\
                             Some(v) => ::serde::Deserialize::from_value(v)?,\n\
                             None => {fallback},\n\
                         }},\n",
                        field = f.name
                    ));
                }
            }
            format!(
                "let fields = v.as_object().ok_or_else(|| \
                     ::serde::DeError::new(concat!(\"expected object for \", {name:?})))?;\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        Body::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        Body::Tuple(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "let items = v.as_array().ok_or_else(|| \
                     ::serde::DeError::new(concat!(\"expected array for \", {name:?})))?;\n\
                 if items.len() != {n} {{\n\
                     return Err(::serde::DeError::new(\"wrong tuple arity\"));\n\
                 }}\n\
                 Ok({name}({items}))"
            )
        }
        Body::Unit => format!("let _ = v; Ok({name})"),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                if v.arity == 0 {
                    unit_arms.push_str(&format!(
                        "{vq:?} => Ok({name}::{v}),\n",
                        v = v.name,
                        vq = v.name
                    ));
                } else if v.arity == 1 {
                    data_arms.push_str(&format!(
                        "{vq:?} => Ok({name}::{v}(::serde::Deserialize::from_value(inner)?)),\n",
                        v = v.name,
                        vq = v.name
                    ));
                } else {
                    let items = (0..v.arity)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    data_arms.push_str(&format!(
                        "{vq:?} => {{\n\
                             let items = inner.as_array().ok_or_else(|| \
                                 ::serde::DeError::new(\"expected array variant payload\"))?;\n\
                             if items.len() != {arity} {{\n\
                                 return Err(::serde::DeError::new(\"wrong variant arity\"));\n\
                             }}\n\
                             Ok({name}::{v}({items}))\n\
                         }}\n",
                        v = v.name,
                        vq = v.name,
                        arity = v.arity
                    ));
                }
            }
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\
                         other => Err(::serde::DeError::new(format!(\
                             \"unknown variant `{{other}}` for {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                         let (vname, inner) = &fields[0];\n\
                         let _ = inner;\n\
                         match vname.as_str() {{\n\
                             {data_arms}\
                             other => Err(::serde::DeError::new(format!(\
                                 \"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => Err(::serde::DeError::new(format!(\
                         \"expected variant of {name}, got {{other:?}}\"))),\n\
                 }}"
            )
        }
    };

    Ok(format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Deserialize for {name}{ty_generics} {where_clause} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    ))
}
