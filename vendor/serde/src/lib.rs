//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal serialization facade under the same crate name. It is
//! API-compatible with the subset of serde this repository uses:
//!
//! * `#[derive(Serialize, Deserialize)]` on structs (named, newtype,
//!   generic) and enums (unit and one-field tuple variants);
//! * the field attributes `#[serde(skip)]`, `#[serde(default)]` and
//!   `#[serde(default = "path")]`;
//! * `Serialize`/`Deserialize` bounds on generic functions.
//!
//! Instead of serde's visitor architecture, everything funnels through a
//! self-describing [`Value`] tree; `serde_json` (also vendored) renders and
//! parses that tree. This trades serde's zero-copy performance for a tiny,
//! dependency-free implementation — fine for result files and checkpoint
//! archives, which is all this workspace serializes.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integers.
    U64(u64),
    /// Negative integers.
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Key/value pairs in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Borrow the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value of `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Look up a field in object entries (used by derived code).
pub fn value_get<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(DeError::new(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(format!("integer {n} out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}
impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let n = u64::from_value(v)?;
        usize::try_from(n).map_err(|_| DeError::new(format!("integer {n} out of range")))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError::new(format!("integer {n} out of range")))?,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(DeError::new(format!(
                        "expected integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(format!("integer {n} out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::new(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// The value tree owns its strings, so producing `&'static str` must
    /// leak the allocation. Acceptable for the rare, small identifiers
    /// (e.g. finding codes) this workspace round-trips.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        String::from_value(v).map(|s| &*s.leak())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::new("expected array"))?;
        if items.len() != N {
            return Err(DeError::new(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::new("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::new(format!(
                        "expected tuple of {expected} elements, got {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}
impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

/// Convert a serialized key into the string form JSON objects require.
fn key_to_string(v: Value) -> Result<String, DeError> {
    match v {
        Value::Str(s) => Ok(s),
        Value::U64(n) => Ok(n.to_string()),
        Value::I64(n) => Ok(n.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(DeError::new(format!("unsupported map key {other:?}"))),
    }
}

/// Recover a key [`Value`] from its object-key string form.
fn key_from_string(s: &str) -> Value {
    if let Ok(n) = s.parse::<u64>() {
        Value::U64(n)
    } else if let Ok(n) = s.parse::<i64>() {
        Value::I64(n)
    } else {
        Value::Str(s.to_string())
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = key_to_string(k.to_value()).expect("unsupported map key type");
                (key, v.to_value())
            })
            .collect();
        // HashMap iteration order is nondeterministic; sort for stable,
        // diffable output.
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}
impl<K: Deserialize + Eq + Hash, V: Deserialize, S: Default + std::hash::BuildHasher> Deserialize
    for HashMap<K, V, S>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| DeError::new("expected map object"))?;
        let mut map = HashMap::with_capacity_and_hasher(fields.len(), S::default());
        for (k, val) in fields {
            map.insert(K::from_value(&key_from_string(k))?, V::from_value(val)?);
        }
        Ok(map)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = key_to_string(k.to_value()).expect("unsupported map key type");
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| DeError::new("expected map object"))?;
        let mut map = BTreeMap::new();
        for (k, val) in fields {
            map.insert(K::from_value(&key_from_string(k))?, V::from_value(val)?);
        }
        Ok(map)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let mut m = HashMap::new();
        m.insert(3u32, 1.5f64);
        m.insert(9u32, -2.0f64);
        assert_eq!(HashMap::<u32, f64>::from_value(&m.to_value()).unwrap(), m);
        let arr = [1u8, 2, 3, 4];
        assert_eq!(<[u8; 4]>::from_value(&arr.to_value()).unwrap(), arr);
        let tup = (1u64, 2u64);
        assert_eq!(<(u64, u64)>::from_value(&tup.to_value()).unwrap(), tup);
        let opt: Option<(u64, u64)> = Some(tup);
        assert_eq!(Option::from_value(&opt.to_value()).unwrap(), opt);
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn out_of_range_integers_rejected() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
    }
}
