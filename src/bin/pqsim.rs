//! `pqsim` — command-line driver for the PrintQueue reproduction.
//!
//! Subcommands:
//!
//! * `gen   --kind uw|ws|dm --duration-ms N --seed S --out FILE`
//!   Generate a workload trace and save it as a `.pqtr` file.
//! * `info  FILE`
//!   Print a saved trace's summary statistics.
//! * `run   FILE [--alpha A --k K --t T --m0 M --d NS] [--victims N]
//!   [--telemetry PATH]`
//!   Replay a trace through the simulated switch with PrintQueue attached
//!   and diagnose the N most-delayed packets. With `--telemetry`, span
//!   tracing is enabled and two files are written: a Chrome trace-event
//!   JSON at PATH (loadable in Perfetto / `chrome://tracing`) and a
//!   Prometheus text exposition at PATH with a `.prom` extension.
//! * `telemetry FILE [tw flags] [--out PATH] [--require a,b<=N,c] [--prom F]`
//!   Replay a trace with the full observability plane attached and print
//!   a summary of every metric and span. `--require` names metrics (or
//!   span names) that must be present and nonzero — or, with a `<=N`
//!   suffix, that must not exceed an upper bound (absent observes 0) —
//!   the command exits nonzero otherwise, which makes it a one-line
//!   smoke test for CI. `--prom` merges the samples of a Prometheus
//!   text file (such as the exposition `serve --metrics-file` writes)
//!   into the check.
//! * `case-study [--duration-ms N --seed S]`
//!   Run the §7.2 queue-monitor case study and print the three culprit
//!   views.
//! * `export-pcap FILE.pqtr FILE.pcap` / `import-pcap FILE.pcap FILE.pqtr`
//!   Convert between the native trace format and standard pcap, for
//!   interop with tcpdump/wireshark/tcpreplay.
//! * `depth FILE.pqtr [--step-us N]`
//!   Replay a trace and print an ASCII queue-depth-over-time plot from the
//!   data-plane depth sampler.
//! * `validate [--alpha A --k K --t T --m0 M --rate-gbps G --min-pkt B]`
//!   Pre-flight a configuration against a deployment profile (§7.1's
//!   feasibility guidance) without running anything.
//! * `archive FILE.pqtr OUT [--format json|pqa] [tw flags]`
//!   Run a trace and archive every active port's checkpoints. The binary
//!   `.pqa` format streams checkpoints to disk as the control plane polls
//!   them (bounded RAM); JSON captures the in-RAM snapshot ring. With no
//!   `--format`, a `.pqa` extension selects binary, anything else JSON.
//! * `replay-query ARCHIVE --from NS --to NS [--port P] [--d NS] [--json]`
//!   Re-run a time-window query against an archived checkpoint store.
//!   The format is auto-detected from the file's leading bytes; `.pqa`
//!   queries decode only the segments overlapping the interval.
//! * `convert SRC DST [--format json|pqa]`
//!   Convert an archive between JSON and `.pqa` (either direction),
//!   auto-detecting the source format.
//! * `serve [FILE.pqtr] --listen ADDR [--archive FILE.pqa] [tw flags]
//!   [--workers N --queue-cap N --inflight N --max-conns N --cache-mb MB
//!   --addr-file PATH --metrics-file PATH] [trace flags]`
//!   Run the concurrent diagnosis-query daemon. A trace positional builds
//!   live register state (time-window and queue-monitor queries);
//!   `--archive` additionally serves replay queries from a `.pqa` file.
//!   `--addr-file` records the bound address (useful with `:0` ephemeral
//!   ports); `--metrics-file` writes the server's Prometheus exposition
//!   at shutdown; `--shard NAME` stamps the daemon's shard identity into
//!   its `HealthAck` and `ShardMapAck`. The trace flags — shared with
//!   `router` — turn on distributed request tracing: `--trace` samples
//!   every request, `--trace-sample P` head-samples a fraction,
//!   `--trace-slow-ms N` commits anything slower regardless (default
//!   100), `--trace-out FILE.jsonl` spills committed traces as JSON
//!   lines. Stop it with `pqsim serve-stop ADDR`.
//! * `router --backends name=addr[,name=addr...] [--listen ADDR]
//!   [--replication N] [--epoch-ns N] [--quarantine-after N] [--probe-ms N]
//!   [trace flags]`
//!   Run the scatter-gather router tier in front of N serve daemons.
//!   Speaks the same wire protocol, so `query --remote`, `watch`, and
//!   `serve-stop` all work against it unchanged. Each `(port, epoch)`
//!   shard is owned by `--replication` backends via rendezvous hashing;
//!   transient backend failures fail over to the replica and repeated
//!   ones quarantine the backend until a health probe readmits it.
//! * `replicate SRC.pqa DST.pqa`
//!   Seal-and-ship an archive to a replica path: every segment is
//!   CRC-verified before the copy, the publish is atomic, and the
//!   replica is audited segment-by-segment afterwards.
//! * `query FILE.pqtr|--remote ADDR --from NS --to NS [--port P]
//!   [--kind tw|monitor|replay] [--at NS] [--d NS] [--json] [--trace]`
//!   Run a diagnosis query — against live state built from a trace, or
//!   against a running `serve` daemon with `--remote`. Local and remote
//!   answers print byte-identically through the same formatter.
//!   `--trace` (remote only) plants a fresh always-sampled trace id on
//!   the request and prints it, ready to pull with `pqsim trace`.
//! * `watch ADDR [--interval-ms N] [--updates N] [--rules FILE] [--once]
//!   [--json]`
//!   Watch a running `serve` daemon live: subscribe to its metrics
//!   stream, fold the changed-series updates into a local snapshot, and
//!   render a plaintext dashboard (qps, queue depth, cache hit rate,
//!   shed rate, alert states). `--rules FILE` loads declarative alert
//!   rules (threshold / rate / absence, with debounce and hysteresis)
//!   evaluated against every update. `--once --json` takes two updates
//!   an interval apart (so rates are defined), prints one JSON document,
//!   and exits nonzero when any rule fires — a CI gate in one line.
//! * `stream ADDR --query Q [--cap N] [--windows N] [--once] [--json]`
//!   Register a standing continuous query (DESIGN.md §13's one-line
//!   grammar) against a running daemon or router and print each fired
//!   window as it closes. `--once` ends the stream when the bounded
//!   source seals; `--json` emits one document per window.
//! * `trace --from ADDR[,ADDR...]|--files F.jsonl[,...] [--top N]
//!   [--slow] [--out chrome.json] [--json]`
//!   Pull buffered request traces from running daemons (and/or read
//!   `--trace-out` spill files), stitch the records of each request
//!   across processes, and print per-request span timelines, slowest
//!   first. `--slow` keeps only slow-threshold traces (the slow-query
//!   log), `--json` prints one JSON document per trace, and `--out`
//!   writes a Chrome/Perfetto trace with one lane per process.
//! * `prof --from ADDR[,ADDR...] [--top N] [--folded out.txt] [--json]`
//!   Pull the continuous profiler's dump from running daemons/routers
//!   (start them with `--prof [--prof-sample-ms N]`) and print the
//!   top-N self-time scopes, per-lock wait/hold quantiles, and sampled
//!   stacks. A router address answers with the merged dump of its live
//!   backends. `--folded` writes collapsed stacks ready for
//!   `flamegraph.pl` / inferno; `--json` prints the full report.
//! * `prof FILE.pqtr [tw flags] [--sample-ms N] [...]`
//!   Same report from a local replay: run the trace with profiling and
//!   the stack sampler on, no fleet required.
//! * `serve-stop ADDR`
//!   Ask a running daemon to drain in-flight queries and exit.
//!
//! Every subcommand accepts `--quiet`, which suppresses progress chatter.
//! Progress goes to stderr; results go to stdout; errors exit nonzero.
//! Everything is deterministic given the seed.

use printqueue::core::culprits::GroundTruth;
use printqueue::core::metrics::{self, precision_recall};
use printqueue::prelude::*;
use printqueue::queryfmt;
use printqueue::store::{SegmentPolicy, SharedStoreWriter, StoreWriter};
use printqueue::telemetry::{self, MetricValue, Telemetry};
use printqueue::trace::workload::GeneratedTrace;
use printqueue::trace::{io as trace_io, scenario};
use std::path::PathBuf;
use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};

static QUIET: AtomicBool = AtomicBool::new(false);

/// Progress chatter: stderr, suppressed by `--quiet`. Results (the thing
/// a subcommand exists to compute) stay on stdout.
macro_rules! progress {
    ($($arg:tt)*) => {
        if !QUIET.load(Ordering::Relaxed) {
            eprintln!($($arg)*);
        }
    };
}

type CliResult = Result<(), String>;

fn usage() -> ! {
    eprintln!(
        "usage:\n  pqsim gen --kind uw|ws|dm [--duration-ms N] [--seed S] --out FILE\n  \
         pqsim info FILE\n  \
         pqsim run FILE [--alpha A] [--k K] [--t T] [--m0 M] [--d NS] [--victims N]\n  \
         \x20         [--fault-rate P] [--fault-seed S] [--read-latency-ns NS]\n  \
         \x20         [--telemetry PATH]\n  \
         pqsim telemetry FILE [tw flags] [--out PATH] [--require a,b<=N,c] [--prom F]\n  \
         pqsim case-study [--duration-ms N] [--seed S]\n  \
         pqsim export-pcap FILE.pqtr FILE.pcap\n  \
         pqsim import-pcap FILE.pcap FILE.pqtr [--port P]\n  \
         pqsim depth FILE.pqtr [--step-us N]\n  \
         pqsim validate [tw flags] [--rate-gbps G] [--min-pkt B]\n  \
         pqsim archive FILE.pqtr OUT [--format json|pqa] [tw flags]\n  \
         pqsim replay-query ARCHIVE --from NS --to NS [--port P] [--d NS] [--json]\n  \
         pqsim convert SRC DST [--format json|pqa]\n  \
         pqsim serve [FILE.pqtr] --listen ADDR [--archive FILE.pqa] [tw flags]\n  \
         \x20         [--workers N] [--queue-cap N] [--inflight N] [--max-conns N]\n  \
         \x20         [--cache-mb MB] [--work-delay-ms N] [--shard NAME]\n  \
         \x20         [--addr-file PATH] [--metrics-file PATH] [trace flags]\n  \
         \x20         [--prof] [--prof-sample-ms N]\n  \
         pqsim router --backends name=addr[,name=addr...] [--listen ADDR]\n  \
         \x20         [--replication N] [--epoch-ns N] [--quarantine-after N]\n  \
         \x20         [--probe-ms N] [--connect-ms N] [--io-ms N] [--max-conns N]\n  \
         \x20         [--addr-file PATH] [--metrics-file PATH] [trace flags]\n  \
         \x20         [--prof] [--prof-sample-ms N]\n  \
         \x20         (trace flags: --trace | --trace-sample P | --trace-slow-ms N\n  \
         \x20          | --trace-out FILE.jsonl)\n  \
         pqsim replicate SRC.pqa DST.pqa\n  \
         pqsim query FILE.pqtr|--remote ADDR --from NS --to NS [--port P]\n  \
         \x20         [--kind tw|monitor|replay] [--at NS] [--d NS] [--json] [--trace]\n  \
         pqsim rtt [--flows N] [--pkts N] [--ports N] [--seed S] [--loss P]\n  \
         \x20         [--reorder P] [--jitter F] [--spin F] [--slow-flow-ns NS]\n  \
         \x20         [--archive OUT.pqa] [--top N] [--json]\n  \
         pqsim rtt --remote ADDR [--port P] [--from NS] [--to NS]\n  \
         \x20         [--max-flows N] [--top N] [--json]\n  \
         pqsim trace --from ADDR[,ADDR...]|--files F.jsonl[,...] [--top N]\n  \
         \x20         [--slow] [--out chrome.json] [--json]\n  \
         pqsim prof --from ADDR[,ADDR...] [--top N] [--folded FILE] [--json]\n  \
         pqsim prof FILE.pqtr [tw flags] [--sample-ms N] [--top N]\n  \
         \x20         [--folded FILE] [--json]\n  \
         pqsim watch ADDR [--interval-ms N] [--updates N] [--rules FILE]\n  \
         \x20         [--once] [--json]\n  \
         pqsim stream ADDR --query Q [--cap N] [--windows N] [--once] [--json]\n  \
         pqsim serve-stop ADDR\n  \
         (any subcommand: --quiet suppresses progress output)"
    );
    exit(2)
}

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &["quiet", "json", "once", "trace", "slow", "prof"];

/// Minimal flag parser: `--name value` pairs, boolean `--name` switches,
/// and positional arguments.
struct Args {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
}

impl Args {
    fn parse(raw: impl Iterator<Item = String>) -> Args {
        let mut positional = Vec::new();
        let mut flags = std::collections::HashMap::new();
        let mut raw = raw.peekable();
        while let Some(arg) = raw.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if BOOL_FLAGS.contains(&name) {
                    flags.insert(name.to_string(), "true".to_string());
                } else {
                    let value = raw.next().unwrap_or_else(|| usage());
                    flags.insert(name.to_string(), value);
                }
            } else {
                positional.push(arg);
            }
        }
        Args { positional, flags }
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.flags.get(name) {
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("bad value for --{name}: {v}");
                exit(2)
            }),
            None => default,
        }
    }

    fn get_str(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }
}

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else { usage() };
    let args = Args::parse(argv);
    QUIET.store(args.has("quiet"), Ordering::Relaxed);
    let result = match cmd.as_str() {
        "gen" => cmd_gen(&args),
        "info" => cmd_info(&args),
        "run" => cmd_run(&args),
        "telemetry" => cmd_telemetry(&args),
        "case-study" => cmd_case_study(&args),
        "export-pcap" => cmd_export_pcap(&args),
        "import-pcap" => cmd_import_pcap(&args),
        "depth" => cmd_depth(&args),
        "validate" => cmd_validate(&args),
        "archive" => cmd_archive(&args),
        "replay-query" => cmd_replay_query(&args),
        "convert" => cmd_convert(&args),
        "serve" => cmd_serve(&args),
        "router" => cmd_router(&args),
        "replicate" => cmd_replicate(&args),
        "query" => cmd_query(&args),
        "rtt" => cmd_rtt(&args),
        "trace" => cmd_trace(&args),
        "prof" => cmd_prof(&args),
        "watch" => cmd_watch(&args),
        "stream" => cmd_stream(&args),
        "serve-stop" => cmd_serve_stop(&args),
        _ => usage(),
    };
    if let Err(err) = result {
        eprintln!("pqsim {cmd}: {err}");
        exit(1);
    }
}

fn cmd_gen(args: &Args) -> CliResult {
    let kind = match args.get_str("kind") {
        Some("uw") => WorkloadKind::Uw,
        Some("ws") => WorkloadKind::Ws,
        Some("dm") => WorkloadKind::Dm,
        _ => usage(),
    };
    let duration_ms: u64 = args.get("duration-ms", 50);
    let seed: u64 = args.get("seed", 1);
    let Some(out) = args.get_str("out") else {
        usage()
    };
    let trace = Workload::paper_testbed(kind, duration_ms.millis(), seed).generate();
    progress!(
        "generated {} trace: {} packets, {} flows, offered {:.2} Gbps over {duration_ms} ms",
        kind.label(),
        trace.packets(),
        trace.flows.len(),
        trace.offered_gbps(duration_ms.millis())
    );
    trace_io::save(&trace, &PathBuf::from(out)).map_err(|err| format!("write {out}: {err}"))?;
    progress!("saved to {out}");
    Ok(())
}

fn load_trace(args: &Args) -> Result<GeneratedTrace, String> {
    let Some(path) = args.positional.first() else {
        usage()
    };
    trace_io::load(&PathBuf::from(path)).map_err(|err| format!("read {path}: {err}"))
}

fn cmd_info(args: &Args) -> CliResult {
    let trace = load_trace(args)?;
    println!("{}", printqueue::trace::stats::analyze(&trace));
    // Top 5 flows by packets.
    let mut per_flow = std::collections::HashMap::new();
    for a in &trace.arrivals {
        *per_flow.entry(a.pkt.flow).or_insert(0u64) += 1;
    }
    let mut ranked: Vec<_> = per_flow.into_iter().collect();
    ranked.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("top flows:");
    for (flow, n) in ranked.into_iter().take(5) {
        let tuple = trace
            .flows
            .resolve(flow)
            .map(|k| k.to_string())
            .unwrap_or_default();
        println!("  {n:>8}  {tuple}");
    }
    Ok(())
}

/// Attach the full observability plane to a PrintQueue + discarding spill
/// store, so all span sources (switch residence, freeze-and-read, window
/// rotation, segment flush) are live during a run.
fn attach_telemetry(
    pq: &mut PrintQueue,
    sw: &mut Switch,
    tw: TimeWindowConfig,
) -> Result<(Telemetry, SharedStoreWriter<std::io::Sink>), String> {
    let plane = Telemetry::new();
    plane.set_tracing(true);
    // `run`/`telemetry` own their process, so the plane exports the
    // profiler's series; scopes record so `--require` can gate on
    // `pq_prof_scope_self_ns_total{scope="switch/run"}` and the lock
    // facade's wait/hold histograms.
    printqueue::prof::set_enabled(true);
    plane.set_export_prof(true);
    pq.set_telemetry(&plane);
    sw.set_telemetry(&plane);
    // Stream checkpoints into a discarding store: `run` archives nothing,
    // but this makes segment-flush metrics and spans observable.
    let mut writer = StoreWriter::new(std::io::sink(), tw, SegmentPolicy::default())
        .map_err(|err| format!("telemetry store: {err}"))?;
    writer.set_telemetry(&plane);
    let handle = SharedStoreWriter::new(writer);
    pq.analysis_mut().set_spill(Box::new(handle.clone()));
    Ok((plane, handle))
}

/// Write the Chrome trace-event JSON to `path` and the Prometheus text
/// exposition next to it (same stem, `.prom` extension).
fn export_telemetry(plane: &Telemetry, path: &std::path::Path) -> CliResult {
    let spans = plane.spans().snapshot();
    std::fs::write(path, telemetry::to_chrome_trace(&spans))
        .map_err(|err| format!("write {}: {err}", path.display()))?;
    let prom_path = path.with_extension("prom");
    std::fs::write(&prom_path, telemetry::to_prometheus(&plane.snapshot()))
        .map_err(|err| format!("write {}: {err}", prom_path.display()))?;
    progress!(
        "telemetry: {} spans -> {}, {} metrics -> {}",
        spans.len(),
        path.display(),
        plane.snapshot().len(),
        prom_path.display()
    );
    Ok(())
}

fn cmd_run(args: &Args) -> CliResult {
    let trace = load_trace(args)?;
    let m0: u8 = args.get("m0", 6);
    let alpha: u8 = args.get("alpha", 2);
    let k: u8 = args.get("k", 12);
    let t: u8 = args.get("t", 4);
    let d: u64 = args.get("d", 110);
    let victims_n: usize = args.get("victims", 5);
    let fault_rate: f64 = args.get("fault-rate", 0.0);
    let fault_seed: u64 = args.get("fault-seed", 1);
    let read_latency_ns: u64 = args.get("read-latency-ns", 0);
    let telemetry_path = args.get_str("telemetry").map(PathBuf::from);
    if !(0.0..=1.0).contains(&fault_rate) {
        return Err(format!(
            "--fault-rate must be within [0, 1], got {fault_rate}"
        ));
    }

    let tw = TimeWindowConfig::new(m0, alpha, k, t);
    progress!(
        "PrintQueue: m0={m0} α={alpha} k={k} T={t}; set period {:.3} ms",
        tw.set_period() as f64 / 1e6
    );
    let mut pq_config = PrintQueueConfig::single_port(tw, d);
    if fault_rate > 0.0 || read_latency_ns > 0 {
        let profile = FaultProfile {
            read_failure_prob: fault_rate,
            read_latency: if read_latency_ns > 0 {
                LatencyModel::Fixed(read_latency_ns)
            } else {
                LatencyModel::Zero
            },
            ..FaultProfile::none()
        };
        pq_config = pq_config.with_faults(FaultConfig::new(fault_seed).with_base(profile));
        progress!(
            "fault injection: read failure p={fault_rate}, read latency {read_latency_ns} ns, seed {fault_seed}"
        );
    }
    // Pre-flight the configuration against the trace's characteristics.
    {
        use printqueue::core::validation::{validate, DeploymentProfile};
        let stats = printqueue::trace::stats::analyze(&trace);
        let profile = DeploymentProfile {
            port_rate_gbps: 10.0,
            min_pkt_bytes: stats.pkt_size_p1.max(64),
            max_depth_cells: 32_768,
            max_query_interval: tw.set_period().min(2_000_000),
        };
        for f in validate(&pq_config, &profile) {
            println!("[{:?}] {}: {}", f.severity, f.code, f.message);
        }
    }
    let mut pq = PrintQueue::new(pq_config);
    let mut sink = TelemetrySink::new();
    let mut sw = Switch::new(SwitchConfig::single_port(10.0, 32_768));
    let mut observability = None;
    if telemetry_path.is_some() {
        observability = Some(attach_telemetry(&mut pq, &mut sw, tw)?);
    }
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq, &mut sink];
        sw.run(trace.arrivals.iter().copied(), &mut hooks, tw.set_period());
    }
    let stats = sw.port_stats(0);
    println!(
        "switch: {} transmitted, {} dropped, max depth {} cells, mean delay {:.1} µs",
        stats.dequeued,
        stats.dropped,
        stats.max_depth_cells,
        stats.mean_queue_delay() / 1e3
    );
    let health = pq.analysis().health();
    println!(
        "control plane: {} polls ({} failed, {} retried, {} stalled), {} checkpoints \
         ({} dropped), {} coverage gaps ({:.3} ms lost), {} backoff ceiling hits",
        health.polls_attempted,
        health.polls_failed,
        health.polls_retried,
        health.polls_stalled,
        health.checkpoints_stored,
        health.checkpoints_dropped,
        health.coverage_gaps,
        health.gap_ns as f64 / 1e6,
        health.backoff_ceiling_hits,
    );
    if let (Some(path), Some((plane, handle))) = (&telemetry_path, &observability) {
        handle
            .finish()
            .map_err(|err| format!("telemetry store finish: {err}"))?;
        export_telemetry(plane, path)?;
    }

    let oracle = GroundTruth::new(&sink.records, 80);
    let mut by_delay: Vec<_> = sink.records.iter().collect();
    by_delay.sort_by_key(|r| std::cmp::Reverse(r.meta.deq_timedelta));
    println!("\ndiagnosing the {victims_n} most-delayed packets:");
    for victim in by_delay.into_iter().take(victims_n) {
        let interval = QueryInterval::new(victim.meta.enq_timestamp, victim.deq_timestamp());
        let est = pq.analysis().query_time_windows(0, interval);
        let truth = metrics::to_float_counts(&oracle.direct_culprits(
            interval.from,
            interval.to,
            victim.seqno,
        ));
        let pr = precision_recall(&est.counts, &truth);
        let top = est
            .ranked()
            .first()
            .and_then(|(f, n)| trace.flows.resolve(*f).map(|key| (key.to_string(), *n)));
        println!(
            "  victim {} waited {:>8.1} µs | {} culprit flows, P {:.2} R {:.2} | top: {}{}",
            victim.flow,
            f64::from(victim.meta.deq_timedelta) / 1e3,
            est.counts.len(),
            pr.precision,
            pr.recall,
            top.map(|(key, n)| format!("{key} (~{n:.0} pkts)"))
                .unwrap_or_else(|| "-".into()),
            if est.degraded {
                " [degraded: coverage gap]"
            } else {
                ""
            },
        );
    }
    Ok(())
}

fn cmd_telemetry(args: &Args) -> CliResult {
    let trace = load_trace(args)?;
    let m0: u8 = args.get("m0", 6);
    let alpha: u8 = args.get("alpha", 2);
    let k: u8 = args.get("k", 12);
    let t: u8 = args.get("t", 4);
    let d: u64 = args.get("d", 110);
    let tw = TimeWindowConfig::new(m0, alpha, k, t);

    let mut pq = PrintQueue::new(PrintQueueConfig::single_port(tw, d));
    let mut sink = TelemetrySink::new();
    let mut sw = Switch::new(SwitchConfig::single_port(10.0, 32_768));
    let (plane, handle) = attach_telemetry(&mut pq, &mut sw, tw)?;
    progress!(
        "replaying {} packets with the observability plane attached",
        trace.packets()
    );
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq, &mut sink];
        sw.run(trace.arrivals.iter().copied(), &mut hooks, tw.set_period());
    }
    handle
        .finish()
        .map_err(|err| format!("telemetry store finish: {err}"))?;
    if let Some(out) = args.get_str("out") {
        export_telemetry(&plane, &PathBuf::from(out))?;
    }

    let snap = plane.snapshot();
    let spans = plane.spans().snapshot();
    println!("metrics ({}):", snap.len());
    for (key, value) in snap.iter() {
        let labels = if key.labels.is_empty() {
            String::new()
        } else {
            let inner: Vec<String> = key
                .labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{v}\""))
                .collect();
            format!("{{{}}}", inner.join(","))
        };
        match value {
            MetricValue::Counter(v) => println!("  counter   {}{labels} {v}", key.name),
            MetricValue::Gauge(v) => println!("  gauge     {}{labels} {v}", key.name),
            MetricValue::Histogram(h) => println!(
                "  histogram {}{labels} count={} p50={} p90={} p99={} max={}",
                key.name,
                h.count,
                h.p50(),
                h.p90(),
                h.p99(),
                h.max
            ),
        }
    }
    let mut per_span: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for s in &spans {
        *per_span.entry(s.name).or_default() += 1;
    }
    println!(
        "spans ({} recorded, {} dropped):",
        spans.len(),
        plane.spans().dropped()
    );
    for (name, n) in &per_span {
        println!("  {n:>8}  {name}");
    }

    // Extra metrics from a Prometheus text file (e.g. the exposition a
    // `pqsim serve --metrics-file` daemon wrote at shutdown) — merged
    // into the `--require` check so one CI line covers both planes.
    let prom_metrics = match args.get_str("prom") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|err| format!("read --prom {path}: {err}"))?;
            let parsed =
                telemetry::parse_prometheus(&text).map_err(|err| format!("parse {path}: {err}"))?;
            progress!("merged {} samples from {path}", parsed.len());
            parsed
        }
        None => Vec::new(),
    };

    if let Some(required) = args.get_str("require") {
        let mut failures = Vec::new();
        for spec in required.split(',').filter(|s| !s.is_empty()) {
            // Two spellings: a bare `name` must be present and nonzero in
            // some source; `name<=N` bounds the observed value from above
            // (an absent metric observes 0, so `pq_x_total<=0` asserts
            // "never happened" even before the counter exists).
            if let Some((name, bound)) = spec.split_once("<=") {
                let name = name.trim();
                let bound: f64 = bound
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad bound in --require entry `{spec}`"))?;
                let observed = metric_sources(name, &snap, &per_span, &prom_metrics)
                    .into_iter()
                    .fold(0.0_f64, f64::max);
                if observed > bound {
                    failures.push(format!("{name} = {observed} exceeds bound {bound}"));
                }
            } else {
                let nonzero = metric_sources(spec, &snap, &per_span, &prom_metrics)
                    .into_iter()
                    .any(|v| v > 0.0);
                if !nonzero {
                    failures.push(format!("{spec} absent or zero"));
                }
            }
        }
        if !failures.is_empty() {
            return Err(format!("required-metric check: {}", failures.join("; ")));
        }
        progress!("all required metrics present and within bounds");
    }
    Ok(())
}

/// The per-source observations of metric `name`: the registry sum over
/// its label sets (histograms observe their sample count), the recorded
/// span count, and the `--prom` exposition sum (`_count` covers
/// histogram samples there). One entry per source that knows the name at
/// all, so callers can distinguish "absent" from "present at zero".
fn metric_sources(
    name: &str,
    snap: &telemetry::RegistrySnapshot,
    per_span: &std::collections::BTreeMap<&str, usize>,
    prom: &[telemetry::ParsedMetric],
) -> Vec<f64> {
    let mut sources = Vec::new();
    let mut reg = None;
    for (_, value) in snap.iter().filter(|(k, _)| k.name == name) {
        let v = match value {
            MetricValue::Counter(c) | MetricValue::Gauge(c) => *c as f64,
            MetricValue::Histogram(h) => h.count as f64,
        };
        *reg.get_or_insert(0.0) += v;
    }
    sources.extend(reg);
    if let Some(n) = per_span.get(name) {
        sources.push(*n as f64);
    }
    let mut p = None;
    for m in prom
        .iter()
        .filter(|m| m.name == name || m.name == format!("{name}_count"))
    {
        *p.get_or_insert(0.0) += m.value;
    }
    sources.extend(p);
    sources
}

fn cmd_export_pcap(args: &Args) -> CliResult {
    let (Some(src), Some(dst)) = (args.positional.first(), args.positional.get(1)) else {
        usage()
    };
    let trace = trace_io::load(&PathBuf::from(src)).map_err(|err| format!("read {src}: {err}"))?;
    let file = std::fs::File::create(dst).map_err(|err| format!("create {dst}: {err}"))?;
    printqueue::trace::pcap::write_pcap(&trace, std::io::BufWriter::new(file))
        .map_err(|err| format!("pcap write: {err}"))?;
    progress!("wrote {} packets to {dst}", trace.packets());
    Ok(())
}

fn cmd_import_pcap(args: &Args) -> CliResult {
    let (Some(src), Some(dst)) = (args.positional.first(), args.positional.get(1)) else {
        usage()
    };
    let port: u16 = args.get("port", 0);
    let file = std::fs::File::open(src).map_err(|err| format!("open {src}: {err}"))?;
    let (trace, skipped) = printqueue::trace::pcap::read_pcap(std::io::BufReader::new(file), port)
        .map_err(|err| format!("pcap read: {err}"))?;
    if skipped > 0 {
        progress!("skipped {skipped} non-IPv4/TCP/UDP frames");
    }
    trace_io::save(&trace, &PathBuf::from(dst)).map_err(|err| format!("write {dst}: {err}"))?;
    progress!(
        "imported {} packets across {} flows into {dst}",
        trace.packets(),
        trace.flows.len()
    );
    Ok(())
}

fn cmd_depth(args: &Args) -> CliResult {
    use printqueue::switch::DepthSampler;
    let trace = load_trace(args)?;
    let step_us: u64 = args.get("step-us", 500);
    let mut sw = Switch::new(SwitchConfig::single_port(10.0, 32_768));
    let mut sampler = DepthSampler::new(0, 80, 1 << 20);
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut sampler];
        sw.run(trace.arrivals.iter().copied(), &mut hooks, step_us * 1_000);
    }
    let peak = sampler.peak_cells.max(1);
    println!("queue depth over time (port 0, peak {peak} cells):");
    for s in &sampler.samples {
        let bars = (u64::from(s.depth_cells) * 50 / u64::from(peak)) as usize;
        println!(
            "{:>9.2} ms |{}{}",
            s.at as f64 / 1e6,
            "#".repeat(bars),
            if s.depth_cells > 0 && bars == 0 {
                "."
            } else {
                ""
            }
        );
    }
    if let Some((from, to)) = sampler.longest_busy_span(peak / 10) {
        println!(
            "longest span above 10% of peak: {:.2} ms",
            (to - from) as f64 / 1e6
        );
    }
    Ok(())
}

fn cmd_validate(args: &Args) -> CliResult {
    use printqueue::core::validation::{is_deployable, validate, DeploymentProfile};
    let m0: u8 = args.get("m0", 6);
    let alpha: u8 = args.get("alpha", 2);
    let k: u8 = args.get("k", 12);
    let t: u8 = args.get("t", 4);
    let rate: f64 = args.get("rate-gbps", 10.0);
    let min_pkt: u32 = args.get("min-pkt", 64);
    let tw = TimeWindowConfig::new(m0, alpha, k, t);
    let config = PrintQueueConfig::single_port(tw, 64);
    let profile = DeploymentProfile {
        port_rate_gbps: rate,
        min_pkt_bytes: min_pkt,
        max_depth_cells: 32_768,
        max_query_interval: 2_000_000,
    };
    progress!(
        "config m0={m0} α={alpha} k={k} T={t}: set period {:.3} ms, poll {:.3} ms",
        tw.set_period() as f64 / 1e6,
        config.control.poll_period as f64 / 1e6
    );
    let findings = validate(&config, &profile);
    if findings.is_empty() {
        println!("no findings — deployable ✓");
        return Ok(());
    }
    for f in &findings {
        println!("[{:?}] {}: {}", f.severity, f.code, f.message);
    }
    if !is_deployable(&findings) {
        return Err("configuration is not deployable".to_string());
    }
    Ok(())
}

fn parse_format_flag(args: &Args, path: &std::path::Path) -> printqueue::store::ArchiveFormat {
    use printqueue::store::ArchiveFormat;
    match args.get_str("format") {
        Some("json") => ArchiveFormat::Json,
        Some("pqa") => ArchiveFormat::Pqa,
        Some(other) => {
            eprintln!("unknown --format {other} (expected json|pqa)");
            exit(2)
        }
        None => printqueue::store::format_for_path(path),
    }
}

fn cmd_archive(args: &Args) -> CliResult {
    use printqueue::store::ArchiveFormat;
    use printqueue::switch::PortConfig;
    let trace = load_trace(args)?;
    let Some(out_path) = args.positional.get(1) else {
        usage()
    };
    let out_path = PathBuf::from(out_path);
    let m0: u8 = args.get("m0", 6);
    let alpha: u8 = args.get("alpha", 2);
    let k: u8 = args.get("k", 12);
    let t: u8 = args.get("t", 4);
    let d: u64 = args.get("d", 110);
    let tw = TimeWindowConfig::new(m0, alpha, k, t);
    let format = parse_format_flag(args, &out_path);

    // Archive every port the trace touches, not just port 0.
    let mut ports: Vec<u16> = trace.arrivals.iter().map(|a| a.port).collect();
    ports.push(0);
    ports.sort_unstable();
    ports.dedup();
    let port_count = usize::from(*ports.last().unwrap()) + 1;

    let mut pq_config = PrintQueueConfig::single_port(tw, d);
    pq_config.ports = ports.clone();
    let mut pq = PrintQueue::new(pq_config);

    // Binary output streams checkpoints to disk as the control plane
    // polls them (bounded RAM); JSON captures the snapshot ring at end.
    let mut spill: Option<SharedStoreWriter<std::io::BufWriter<std::fs::File>>> = None;
    if format == ArchiveFormat::Pqa {
        let file = std::fs::File::create(&out_path)
            .map_err(|err| format!("create {}: {err}", out_path.display()))?;
        let writer = StoreWriter::new(std::io::BufWriter::new(file), tw, SegmentPolicy::default())
            .map_err(|err| format!("start store: {err}"))?;
        let handle = SharedStoreWriter::new(writer);
        pq.analysis_mut().set_spill(Box::new(handle.clone()));
        spill = Some(handle);
    }

    let mut sink = TelemetrySink::new();
    let mut sw_config = SwitchConfig::single_port(10.0, 32_768);
    sw_config.ports = vec![
        PortConfig {
            rate_gbps: 10.0,
            max_depth_cells: 32_768,
            ..PortConfig::default()
        };
        port_count
    ];
    let mut sw = Switch::new(sw_config);
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq, &mut sink];
        sw.run(trace.arrivals.iter().copied(), &mut hooks, tw.set_period());
    }

    let total_checkpoints: usize = ports
        .iter()
        .map(|&p| pq.analysis().checkpoints(p).len())
        .sum();
    match spill {
        Some(handle) => {
            let health = pq.analysis().health();
            for &port in &ports {
                if handle.with(|w| w.set_health(port, health)).is_err() {
                    break;
                }
            }
            handle
                .finish()
                .map_err(|err| format!("store finish: {err}"))?;
        }
        None => {
            let archives: Vec<_> = ports
                .iter()
                .map(|&p| printqueue::core::export::CheckpointArchive::capture(pq.analysis(), p))
                .collect();
            printqueue::store::write_archives(
                &out_path,
                &archives,
                ArchiveFormat::Json,
                SegmentPolicy::default(),
            )
            .map_err(|err| format!("archive write: {err}"))?;
        }
    }
    progress!(
        "archived {} checkpoints across {} port(s) ({} transmitted packets) to {}",
        total_checkpoints,
        ports.len(),
        sink.records.len(),
        out_path.display()
    );
    Ok(())
}

/// Print a time-window answer through the shared formatter — every query
/// path (live, replay, remote) funnels here so outputs stay identical.
fn emit_result(
    spec: &queryfmt::QuerySpec,
    checkpoints: u64,
    est: &printqueue::core::snapshot::FlowEstimates,
    gaps: &[CoverageGap],
    degraded: bool,
    json: bool,
) {
    if json {
        println!(
            "{}",
            queryfmt::result_json(spec, checkpoints, est, gaps, degraded)
        );
    } else {
        let header = queryfmt::interval_header(spec.from, spec.to, checkpoints);
        print!("{}", queryfmt::result_text(&header, est, gaps, degraded));
    }
}

fn cmd_replay_query(args: &Args) -> CliResult {
    use printqueue::store::{ArchiveFormat, StoreReader};
    let Some(path) = args.positional.first() else {
        usage()
    };
    let path = PathBuf::from(path);
    let from: u64 = args.get("from", 0);
    let to: u64 = args.get("to", u64::MAX);
    let d: u64 = args.get("d", 110);
    let json = args.has("json");
    let interval = QueryInterval::new(from, to);
    let format = ArchiveFormat::detect(&path)
        .map_err(|err| format!("detect format of {}: {err}", path.display()))?;
    match format {
        ArchiveFormat::Pqa => {
            let file = std::fs::File::open(&path)
                .map_err(|err| format!("open {}: {err}", path.display()))?;
            let mut reader = StoreReader::open(std::io::BufReader::new(file))
                .map_err(|err| format!("store open: {err}"))?;
            let ports = reader.ports();
            let port: u16 = args.get("port", ports.first().copied().unwrap_or(0));
            let coeffs =
                printqueue::core::coefficient::Coefficients::compute(reader.tw_config(), d);
            let result = reader
                .query(port, interval, &coeffs)
                .map_err(|err| format!("query: {err}"))?;
            let spec = queryfmt::QuerySpec {
                port,
                from,
                to,
                d,
                kind: queryfmt::QueryKind::Replay,
            };
            emit_result(
                &spec,
                reader.checkpoint_count(port),
                &result.estimates,
                &result.gaps,
                result.degraded,
                json,
            );
        }
        ArchiveFormat::Json => {
            let archives = printqueue::store::read_archives(&path)
                .map_err(|err| format!("archive read: {err}"))?;
            let port: u16 = args.get("port", archives.first().map_or(0, |a| a.port));
            let Some(archive) = archives.iter().find(|a| a.port == port) else {
                return Err(format!("port {port} not present in archive"));
            };
            let coeffs =
                printqueue::core::coefficient::Coefficients::compute(&archive.tw_config, d);
            let result = archive.query_result(interval, &coeffs);
            let spec = queryfmt::QuerySpec {
                port,
                from,
                to,
                d,
                kind: queryfmt::QueryKind::Replay,
            };
            emit_result(
                &spec,
                archive.checkpoints.len() as u64,
                &result.estimates,
                &result.gaps,
                result.degraded,
                json,
            );
        }
    }
    Ok(())
}

/// Run `trace` through the simulated switch with PrintQueue attached and
/// hand back the resulting live analysis-program state, every touched
/// port activated (shared by `serve` and local `query`).
fn run_trace_live(
    trace: &GeneratedTrace,
    tw: TimeWindowConfig,
    d: u64,
) -> printqueue::prelude::AnalysisProgram {
    use printqueue::switch::PortConfig;
    let mut ports: Vec<u16> = trace.arrivals.iter().map(|a| a.port).collect();
    ports.push(0);
    ports.sort_unstable();
    ports.dedup();
    let port_count = usize::from(*ports.last().unwrap()) + 1;
    let mut pq_config = PrintQueueConfig::single_port(tw, d);
    pq_config.ports = ports;
    let mut pq = PrintQueue::new(pq_config);
    let mut sw_config = SwitchConfig::single_port(10.0, 32_768);
    sw_config.ports = vec![
        PortConfig {
            rate_gbps: 10.0,
            max_depth_cells: 32_768,
            ..PortConfig::default()
        };
        port_count
    ];
    let mut sw = Switch::new(sw_config);
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq];
        sw.run(trace.arrivals.iter().copied(), &mut hooks, tw.set_period());
    }
    pq.into_analysis()
}

fn tw_from_args(args: &Args) -> TimeWindowConfig {
    TimeWindowConfig::new(
        args.get("m0", 6),
        args.get("alpha", 2),
        args.get("k", 12),
        args.get("t", 4),
    )
}

/// Apply the shared `--trace*` daemon flags to a telemetry plane's trace
/// store. Tracing stays compiled in but disabled unless one of the flags
/// is present, so the default daemon pays only the `is_enabled` check.
///
/// `--trace` alone turns collection on with head sampling off — only
/// slow (or `Busy`-retried) requests are captured. `--trace-sample P`
/// adds probabilistic head sampling at rate `P` in [0, 1].
fn configure_tracing(args: &Args, plane: &Telemetry) -> CliResult {
    let requested = args.has("trace")
        || args.has("trace-sample")
        || args.has("trace-slow-ms")
        || args.has("trace-out");
    if !requested {
        return Ok(());
    }
    let traces = plane.traces();
    traces.set_enabled(true);
    let sample: f64 = args.get("trace-sample", 0.0);
    if !(0.0..=1.0).contains(&sample) {
        return Err(format!("--trace-sample {sample} out of range [0, 1]"));
    }
    traces.set_sample_ppm((sample * 1_000_000.0).round() as u32);
    let slow_ms: u64 = args.get("trace-slow-ms", 100);
    traces.set_slow_ns(slow_ms.saturating_mul(1_000_000));
    if let Some(path) = args.get_str("trace-out") {
        let sink = printqueue::telemetry::TraceSink::to_file(std::path::Path::new(path))
            .map_err(|err| format!("open --trace-out {path}: {err}"))?;
        traces.set_sink(sink);
    }
    progress!(
        "tracing on: sample {:.4}, slow >= {slow_ms}ms{}",
        sample,
        args.get_str("trace-out")
            .map(|p| format!(", spilling to {p}"))
            .unwrap_or_default()
    );
    Ok(())
}

fn cmd_serve(args: &Args) -> CliResult {
    use printqueue::serve::{ServeConfig, Server, Sources};
    use std::sync::Arc;
    let listen = args.get_str("listen").unwrap_or("127.0.0.1:0");
    let archive = args.get_str("archive").map(PathBuf::from);
    let tw = tw_from_args(args);
    let d: u64 = args.get("d", 110);

    let mut live = None;
    if let Some(path) = args.positional.first() {
        let trace =
            trace_io::load(&PathBuf::from(path)).map_err(|err| format!("read {path}: {err}"))?;
        progress!(
            "building live register state from {path} ({} packets)",
            trace.packets()
        );
        live = Some(Arc::new(run_trace_live(&trace, tw, d)));
    }
    if live.is_none() && archive.is_none() {
        return Err(
            "nothing to serve: pass a trace for live queries and/or --archive FILE.pqa".into(),
        );
    }

    let config = ServeConfig {
        workers: args.get("workers", 4),
        queue_cap: args.get("queue-cap", 128),
        inflight_per_conn: args.get("inflight", 8),
        max_conns: args.get("max-conns", 64),
        cache_bytes: args.get::<u64>("cache-mb", 64) << 20,
        retry_after_ms: args.get("retry-after-ms", 50),
        drain_deadline: std::time::Duration::from_millis(args.get("drain-ms", 5_000)),
        work_delay: std::time::Duration::from_millis(args.get("work-delay-ms", 0)),
        max_subs: args.get("max-subs", 16),
        shard: args.get_str("shard").unwrap_or_default().to_string(),
        prof: args.has("prof") || args.get::<u64>("prof-sample-ms", 0) > 0,
        prof_sample_ms: args.get("prof-sample-ms", 0),
    };
    let plane = Telemetry::new();
    printqueue::telemetry::provenance::set_build_info(
        plane.registry(),
        env!("CARGO_PKG_VERSION"),
        &printqueue::telemetry::provenance::git_commit(),
    );
    configure_tracing(args, &plane)?;
    let server = Server::bind(
        listen,
        Sources {
            live,
            archive,
            rtt: Vec::new(),
        },
        config,
        &plane,
    )
    .map_err(|err| format!("bind {listen}: {err}"))?;
    let addr = server
        .local_addr()
        .map_err(|err| format!("local addr: {err}"))?;
    println!("serving on {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    if let Some(path) = args.get_str("addr-file") {
        std::fs::write(path, addr.to_string()).map_err(|err| format!("write {path}: {err}"))?;
    }
    server.run().map_err(|err| format!("serve: {err}"))?;
    progress!("server drained and stopped");
    if let Some(path) = args.get_str("metrics-file") {
        std::fs::write(path, telemetry::to_prometheus(&plane.snapshot()))
            .map_err(|err| format!("write {path}: {err}"))?;
        progress!("server metrics written to {path}");
    }
    Ok(())
}

fn cmd_router(args: &Args) -> CliResult {
    use printqueue::router::{BackendSpec, Router, RouterConfig};
    let listen = args.get_str("listen").unwrap_or("127.0.0.1:0");
    let Some(backends_raw) = args.get_str("backends") else {
        return Err("--backends name=addr[,name=addr...] is required".into());
    };
    let mut backends = Vec::new();
    for (i, entry) in backends_raw
        .split(',')
        .filter(|s| !s.is_empty())
        .enumerate()
    {
        let (name, addr) = match entry.split_once('=') {
            Some((name, addr)) => (name.to_string(), addr.to_string()),
            None => (format!("shard-{i}"), entry.to_string()),
        };
        backends.push(BackendSpec { name, addr });
    }
    let config = RouterConfig {
        replication: args.get("replication", 2),
        epoch_ns: args.get("epoch-ns", 0),
        connect_timeout: std::time::Duration::from_millis(args.get("connect-ms", 250)),
        io_timeout: std::time::Duration::from_millis(args.get("io-ms", 2_000)),
        retry: printqueue::serve::RetryPolicy::default(),
        quarantine_after: args.get("quarantine-after", 2),
        probe_interval: std::time::Duration::from_millis(args.get("probe-ms", 100)),
        max_conns: args.get("max-conns", 64),
        retry_after_ms: args.get("retry-after-ms", 50),
        pool_per_backend: args.get("pool", 8),
    };
    let plane = Telemetry::new();
    printqueue::telemetry::provenance::set_build_info(
        plane.registry(),
        env!("CARGO_PKG_VERSION"),
        &printqueue::telemetry::provenance::git_commit(),
    );
    configure_tracing(args, &plane)?;
    // The router profiles like a daemon does: process-global scopes on,
    // `pq_prof_*` series on its own plane. Its dump answer stays the
    // merged backends-only report either way.
    if args.has("prof") || args.get::<u64>("prof-sample-ms", 0) > 0 {
        printqueue::prof::set_enabled(true);
        plane.set_export_prof(true);
        let sample_ms: u64 = args.get("prof-sample-ms", 0);
        if sample_ms > 0 {
            printqueue::prof::start_sampler(std::time::Duration::from_millis(sample_ms));
        }
    }
    progress!(
        "routing across {} backend(s), replication {}",
        backends.len(),
        config.replication
    );
    let router = Router::bind(listen, backends, config, &plane)
        .map_err(|err| format!("bind {listen}: {err}"))?;
    let addr = router
        .local_addr()
        .map_err(|err| format!("local addr: {err}"))?;
    println!("routing on {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    if let Some(path) = args.get_str("addr-file") {
        std::fs::write(path, addr.to_string()).map_err(|err| format!("write {path}: {err}"))?;
    }
    router.run().map_err(|err| format!("router: {err}"))?;
    progress!("router stopped");
    if let Some(path) = args.get_str("metrics-file") {
        std::fs::write(path, telemetry::to_prometheus(&plane.snapshot()))
            .map_err(|err| format!("write {path}: {err}"))?;
        progress!("router metrics written to {path}");
    }
    Ok(())
}

fn cmd_replicate(args: &Args) -> CliResult {
    let (Some(src), Some(dst)) = (args.positional.first(), args.positional.get(1)) else {
        usage()
    };
    let src = PathBuf::from(src);
    let dst = PathBuf::from(dst);
    let report = printqueue::store::ship_archive(&src, &dst)
        .map_err(|err| format!("ship {} -> {}: {err}", src.display(), dst.display()))?;
    progress!(
        "shipped {} segment(s) / {} checkpoint(s) across {} port(s), {} B",
        report.segments,
        report.checkpoints,
        report.ports,
        report.bytes
    );
    match printqueue::store::verify_replica(&src, &dst).map_err(|err| format!("verify: {err}"))? {
        None => {
            progress!("replica verified: segment-identical to source");
            Ok(())
        }
        Some(div) => Err(format!("replica diverges from source: {div}")),
    }
}

fn cmd_query(args: &Args) -> CliResult {
    use printqueue::serve::Client;
    let from: u64 = args.get("from", 0);
    let to: u64 = args.get("to", u64::MAX);
    let at: u64 = args.get("at", from);
    let d: u64 = args.get("d", 110);
    let port: u16 = args.get("port", 0);
    let json = args.has("json");
    let kind = match args.get_str("kind") {
        None | Some("tw") => queryfmt::QueryKind::TimeWindows,
        Some("monitor") => queryfmt::QueryKind::Monitor,
        Some("replay") => queryfmt::QueryKind::Replay,
        Some(other) => {
            return Err(format!(
                "unknown --kind {other} (expected tw|monitor|replay)"
            ))
        }
    };
    let spec = queryfmt::QuerySpec {
        port,
        from: if kind == queryfmt::QueryKind::Monitor {
            at
        } else {
            from
        },
        to,
        d,
        kind,
    };

    if let Some(remote) = args.get_str("remote") {
        let mut client =
            Client::connect(remote).map_err(|err| format!("connect {remote}: {err}"))?;
        if args.has("trace") {
            // Force-sample this one request end to end and tell the
            // operator the id to pull: the daemon keeps the full span
            // tree under it, retrievable with `pqsim trace --from`.
            let tid = telemetry::new_trace_id();
            client.set_trace_context(Some(telemetry::TraceContext::root(tid, true)));
            progress!("trace id {tid:032x} (pull with `pqsim trace --from {remote}`)");
        }
        return match kind {
            queryfmt::QueryKind::Monitor => {
                let m = client
                    .queue_monitor(port, spec.from)
                    .map_err(remote_error)?;
                if json {
                    println!(
                        "{}",
                        queryfmt::monitor_json(
                            &spec,
                            m.frozen_at,
                            m.staleness,
                            &m.counts,
                            &m.gaps,
                            m.degraded
                        )
                    );
                } else {
                    print!(
                        "{}",
                        queryfmt::monitor_text(
                            spec.from,
                            m.frozen_at,
                            m.staleness,
                            &m.counts,
                            &m.gaps,
                            m.degraded
                        )
                    );
                }
                Ok(())
            }
            _ => {
                let r = client.query(spec.to_request()).map_err(remote_error)?;
                emit_result(
                    &spec,
                    r.checkpoints,
                    &r.estimates,
                    &r.gaps,
                    r.degraded,
                    json,
                );
                Ok(())
            }
        };
    }

    // Local: build live state from the trace and run the same query
    // in-process.
    if kind == queryfmt::QueryKind::Replay {
        return Err("local replay queries use `pqsim replay-query ARCHIVE` \
                    (or `query --remote` against a daemon with --archive)"
            .into());
    }
    let trace = load_trace(args)?;
    let tw = tw_from_args(args);
    let ap = run_trace_live(&trace, tw, d);
    if !ap.is_active(port) {
        return Err(format!("port {port} not activated by this trace"));
    }
    match kind {
        queryfmt::QueryKind::Monitor => {
            let Some(ans) = ap.query_queue_monitor(port, spec.from) else {
                return Err("no queue-monitor checkpoint stored".into());
            };
            let mut counts: Vec<(FlowId, u64)> = ans.culprit_counts().into_iter().collect();
            counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            if json {
                println!(
                    "{}",
                    queryfmt::monitor_json(
                        &spec,
                        ans.frozen_at,
                        ans.staleness,
                        &counts,
                        &ans.gaps,
                        ans.degraded
                    )
                );
            } else {
                print!(
                    "{}",
                    queryfmt::monitor_text(
                        spec.from,
                        ans.frozen_at,
                        ans.staleness,
                        &counts,
                        &ans.gaps,
                        ans.degraded
                    )
                );
            }
        }
        _ => {
            let result = ap.query_time_windows(port, QueryInterval::new(from, to));
            let checkpoints = ap.checkpoints(port).len() as u64;
            emit_result(
                &spec,
                checkpoints,
                &result.estimates,
                &result.gaps,
                result.degraded,
                json,
            );
        }
    }
    Ok(())
}

/// Render a remote failure the way local queries render theirs: the typed
/// code and message first, then the unanswered interval as gap lines.
fn remote_error(err: printqueue::serve::ClientError) -> String {
    use printqueue::serve::ClientError;
    match err {
        ClientError::Remote {
            code,
            message,
            gaps,
        } => {
            let mut s = format!("remote query failed: {code}");
            if !message.is_empty() {
                s.push_str(&format!(": {message}"));
            }
            if !gaps.is_empty() {
                s.push_str(&format!(
                    "\ndegraded: {} coverage gap(s) left unanswered:",
                    gaps.len()
                ));
                for g in &gaps {
                    s.push_str(&format!("\n  gap [{}, {}]", g.from, g.to));
                }
            }
            s
        }
        ClientError::Busy { retry_after_ms } => {
            format!("server busy, retry after {retry_after_ms} ms")
        }
        other => format!("remote query failed: {other}"),
    }
}

/// Passive RTT diagnosis. Local mode generates the QUIC-like workload
/// with known per-flow ground truth, measures it through the switch
/// pipeline with `RttHook`, and grades the estimates; `--archive` spills
/// the measured reports as raw kind-1 segments that `pqsim serve
/// --archive` later serves to `rtt --remote`, standing `where p99(rtt)`
/// queries, and watch alerts. `--remote` instead fetches the merged
/// report a daemon (or router, transparently) answers for the interval.
fn cmd_rtt(args: &Args) -> CliResult {
    use printqueue::rtt::{RttHook, RttReport, RttWorkload, TableConfig, RTT_SEGMENT_KIND};
    use printqueue::switch::PortConfig;
    let json = args.has("json");
    let top: usize = args.get("top", 8);

    if let Some(remote) = args.get_str("remote") {
        use printqueue::serve::Client;
        let port: u16 = args.get("port", 0);
        let from: u64 = args.get("from", 0);
        let to: u64 = args.get("to", u64::MAX);
        let max_flows: u32 = args.get("max-flows", 0);
        let mut client =
            Client::connect(remote).map_err(|err| format!("connect {remote}: {err}"))?;
        let r = client
            .rtt(port, from, to, max_flows)
            .map_err(remote_error)?;
        print_rtt_reports(std::slice::from_ref(&r.report), r.degraded, None, top, json);
        return Ok(());
    }

    let mut cfg = RttWorkload {
        flows: args.get("flows", 64),
        ports: args.get("ports", 1),
        pkts_per_flow: args.get("pkts", 96),
        jitter_frac: args.get("jitter", 0.05),
        loss: args.get("loss", 0.01),
        reorder: args.get("reorder", 0.01),
        spin_fraction: args.get("spin", 0.5),
        seed: args.get("seed", 7),
        ..RttWorkload::default()
    };
    if args.has("slow-flow-ns") {
        cfg.slow_rtt_ns = Some(args.get("slow-flow-ns", 8_000_000));
    }
    let trace = cfg.generate();
    progress!(
        "measuring {} flows / {} arrivals across {} port(s)",
        cfg.flows,
        trace.arrivals.len(),
        cfg.ports
    );
    let plane = Telemetry::new();
    let mut sw = Switch::new(SwitchConfig {
        ports: vec![
            PortConfig {
                rate_gbps: 100.0,
                ..PortConfig::default()
            };
            cfg.ports as usize
        ],
        ..SwitchConfig::default()
    });
    let mut hook = RttHook::new(&trace.obs, TableConfig::default());
    hook.set_telemetry(&plane);
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut hook];
        sw.run(trace.arrivals.iter().cloned(), &mut hooks, 1_000_000);
    }
    let reports = hook.reports();
    if let Some(out) = args.get_str("archive") {
        let tw = TimeWindowConfig::new(6, 2, 12, 4);
        let file = std::fs::File::create(out).map_err(|err| format!("create {out}: {err}"))?;
        let mut w = StoreWriter::new(std::io::BufWriter::new(file), tw, SegmentPolicy::default())
            .map_err(|err| format!("start store: {err}"))?;
        for r in &reports {
            w.push_raw(
                r.port,
                RTT_SEGMENT_KIND,
                r.sample_count(),
                r.min_t,
                r.max_t,
                &r.encode(),
            )
            .map_err(|err| format!("spill port {}: {err}", r.port))?;
        }
        w.finish().map_err(|err| format!("store finish: {err}"))?;
        progress!("spilled {} rtt report(s) to {out}", reports.len());
    }
    let degraded = reports.iter().any(RttReport::degraded);
    print_rtt_reports(&reports, degraded, Some(&trace.truth), top, json);
    Ok(())
}

/// Shared presentation for local and remote RTT reports. `truth` (local
/// mode only) adds per-flow ground-truth error and the recall of
/// top-decile slow-flow detection — the headline numbers
/// `ext_rtt_precision` sweeps.
fn print_rtt_reports(
    reports: &[printqueue::rtt::RttReport],
    degraded: bool,
    truth: Option<&[printqueue::rtt::FlowTruth]>,
    top: usize,
    json: bool,
) {
    use std::fmt::Write as _;
    let ms = |ns: u64| format!("{:.3}ms", ns as f64 / 1e6);
    // Grade only flows with enough samples to claim an estimate (slow
    // spin flows yield few edges in a short run).
    let mut errs: Vec<f64> = Vec::new();
    let mut graded = 0usize;
    let mut recall = None;
    if let Some(truth) = truth {
        for r in reports {
            for f in &r.flows {
                let Some(t) = truth.get(f.flow as usize) else {
                    continue;
                };
                if f.hist.count >= 8 {
                    errs.push((f.hist.mean() as f64 - t.rtt_ns as f64).abs() / t.rtt_ns as f64);
                }
            }
        }
        errs.sort_by(f64::total_cmp);
        graded = errs.len();
        // Top-decile slow-flow detection over the *graded* flows: a spin
        // flow that sent for less than one RTT yields no edges and is
        // unmeasurable by construction — that is a coverage property
        // (visible in the sample counts), not a ranking failure.
        let mut est: Vec<(u64, u32)> = reports
            .iter()
            .flat_map(|r| r.flows.iter().map(|f| (f.hist.mean(), f.flow)))
            .filter(|&(_, flow)| {
                reports
                    .iter()
                    .flat_map(|r| r.flows.iter())
                    .any(|f| f.flow == flow && f.hist.count >= 8)
            })
            .collect();
        est.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut by_truth: Vec<_> = truth
            .iter()
            .filter(|t| est.iter().any(|&(_, f)| f == t.flow))
            .collect();
        by_truth.sort_by(|a, b| b.rtt_ns.cmp(&a.rtt_ns).then(a.flow.cmp(&b.flow)));
        if !by_truth.is_empty() {
            let k = by_truth.len().div_ceil(10).max(1);
            let want: std::collections::BTreeSet<u32> =
                by_truth.iter().take(k).map(|t| t.flow).collect();
            let got: std::collections::BTreeSet<u32> =
                est.iter().take(k).map(|&(_, f)| f).collect();
            recall = Some(want.intersection(&got).count() as f64 / k as f64);
        }
    }
    let p50_err = (!errs.is_empty()).then(|| errs[errs.len() / 2]);
    let truth_of = |flow: u32| truth.and_then(|t| t.get(flow as usize)).map(|t| t.rtt_ns);
    // Slowest flows first — the answer to "who is the slow peer".
    fn ranked(r: &printqueue::rtt::RttReport, top: usize) -> Vec<&printqueue::rtt::FlowRtt> {
        let mut flows: Vec<_> = r.flows.iter().collect();
        flows.sort_by(|a, b| b.hist.mean().cmp(&a.hist.mean()).then(a.flow.cmp(&b.flow)));
        flows.truncate(top);
        flows
    }
    if json {
        let mut out = String::from("{");
        let _ = write!(out, "\"degraded\":{degraded},\"ports\":[");
        for (i, r) in reports.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let c = &r.counters;
            let _ = write!(
                out,
                "{{\"port\":{},\"samples\":{},\"flows\":{},\"min_t\":{},\"max_t\":{},\
                 \"p50_ns\":{},\"p99_ns\":{},\"seq_samples\":{},\"spin_edges\":{},\
                 \"collisions\":{},\"evictions\":{},\"sample_drops\":{},\"clipped\":{},\"top\":[",
                r.port,
                r.sample_count(),
                r.flows.len(),
                r.min_t,
                r.max_t,
                r.agg.p50(),
                r.agg.p99(),
                c.seq_samples,
                c.spin_edges,
                c.collisions,
                c.evictions,
                c.sample_drops,
                r.clipped,
            );
            for (j, f) in ranked(r, top).into_iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"flow\":{},\"count\":{},\"mean_ns\":{},\"p99_ns\":{},\"truth_ns\":{}}}",
                    f.flow,
                    f.hist.count,
                    f.hist.mean(),
                    f.hist.p99(),
                    truth_of(f.flow)
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "null".into()),
                );
            }
            out.push_str("]}");
        }
        out.push(']');
        let _ = write!(out, ",\"graded_flows\":{graded}");
        let _ = write!(
            out,
            ",\"p50_err\":{}",
            p50_err.map(|e| format!("{e:.6}")).unwrap_or("null".into())
        );
        let _ = write!(
            out,
            ",\"top_decile_recall\":{}",
            recall.map(|r| format!("{r:.4}")).unwrap_or("null".into())
        );
        out.push('}');
        println!("{out}");
    } else {
        for r in reports {
            let c = &r.counters;
            println!(
                "rtt port {}: {} samples over [{}, {}], {} flows, p50 {} p99 {} \
                 (seq {}, spin {}, collisions {}, evictions {}, drops {}){}",
                r.port,
                r.sample_count(),
                r.min_t,
                r.max_t,
                r.flows.len(),
                ms(r.agg.p50()),
                ms(r.agg.p99()),
                c.seq_samples,
                c.spin_edges,
                c.collisions,
                c.evictions,
                c.sample_drops,
                if r.clipped { " [clipped]" } else { "" },
            );
            for f in ranked(r, top) {
                let truth_col = match truth_of(f.flow) {
                    Some(t) => {
                        let err = (f.hist.mean() as f64 - t as f64).abs() / t as f64;
                        format!("  truth {}  err {:.1}%", ms(t), 100.0 * err)
                    }
                    None => String::new(),
                };
                println!(
                    "  flow {:>6}  count {:>5}  mean {}  p99 {}{}",
                    f.flow,
                    f.hist.count,
                    ms(f.hist.mean()),
                    ms(f.hist.p99()),
                    truth_col,
                );
            }
        }
        if let (Some(err), Some(rec)) = (p50_err, recall) {
            println!(
                "accuracy: {graded} flows graded, p50 err {:.2}%, top-decile recall {rec:.2}",
                100.0 * err
            );
        }
        if degraded {
            println!("degraded: collisions, evictions, drops, or truncation affected this answer");
        }
    }
}

/// Pull committed traces out of running daemons (`--from`, the
/// `TraceDump` wire message) and/or spilled JSON-lines files (`--files`,
/// what `--trace-out` writes), print the slow-query log, and optionally
/// stitch every process's records into one cross-process Chrome
/// trace-event timeline (`--out`, loadable in Perfetto or
/// `chrome://tracing`). Records from different processes that share a
/// trace id — the router's and each backend's view of one request — are
/// grouped into a single entry.
fn cmd_trace(args: &Args) -> CliResult {
    use printqueue::serve::Client;
    let top: usize = args.get("top", 16);
    let slow_only = args.has("slow");
    let json = args.has("json");
    if args.get_str("from").is_none() && args.get_str("files").is_none() {
        return Err(
            "nothing to read: pass --from ADDR[,ADDR...] and/or --files F.jsonl[,...]".into(),
        );
    }

    let mut records: Vec<telemetry::Trace> = Vec::new();
    for addr in args
        .get_str("from")
        .unwrap_or_default()
        .split(',')
        .filter(|s| !s.is_empty())
    {
        let mut client = Client::connect(addr).map_err(|err| format!("connect {addr}: {err}"))?;
        let got = client
            .trace_dump(top as u32, slow_only)
            .map_err(|err| format!("trace dump from {addr}: {err}"))?;
        progress!("{addr}: {} trace record(s)", got.len());
        records.extend(got);
    }
    for path in args
        .get_str("files")
        .unwrap_or_default()
        .split(',')
        .filter(|s| !s.is_empty())
    {
        let text = std::fs::read_to_string(path).map_err(|err| format!("read {path}: {err}"))?;
        let got = telemetry::traces_from_jsonl(&text);
        progress!("{path}: {} trace record(s)", got.len());
        records.extend(got);
    }

    // Stitch: every per-process record of one request shares a trace id.
    // Order requests slowest-first (by their longest per-process root) and
    // keep the top N.
    let mut by_id: std::collections::BTreeMap<u128, Vec<telemetry::Trace>> = Default::default();
    for r in records {
        by_id.entry(r.trace_id).or_default().push(r);
    }
    let mut grouped: Vec<(u128, Vec<telemetry::Trace>)> = by_id.into_iter().collect();
    grouped.sort_by_key(|(_, parts)| {
        std::cmp::Reverse(parts.iter().map(|p| p.duration_ns).max().unwrap_or(0))
    });
    grouped.truncate(top.max(1));

    if let Some(out) = args.get_str("out") {
        let flat: Vec<telemetry::Trace> = grouped
            .iter()
            .flat_map(|(_, parts)| parts.iter().cloned())
            .collect();
        std::fs::write(out, telemetry::traces_to_chrome(&flat))
            .map_err(|err| format!("write {out}: {err}"))?;
        progress!(
            "chrome timeline ({} request(s), {} record(s)) written to {out}",
            grouped.len(),
            flat.len()
        );
    }

    if json {
        for (_, parts) in &grouped {
            for p in parts {
                println!("{}", telemetry::trace_to_json(p));
            }
        }
        return Ok(());
    }

    println!(
        "{} request(s){}:",
        grouped.len(),
        if slow_only { " (slow log)" } else { "" }
    );
    for (tid, parts) in &grouped {
        let worst = parts.iter().map(|p| p.duration_ns).max().unwrap_or(0);
        let slow = parts.iter().any(|p| p.slow);
        let procs: Vec<&str> = {
            let mut seen: Vec<&str> = parts
                .iter()
                .flat_map(|p| p.spans.iter().map(|s| s.process.as_str()))
                .collect();
            seen.sort_unstable();
            seen.dedup();
            seen
        };
        println!(
            "trace {tid:032x}  {:.3}ms{}  [{}]",
            worst as f64 / 1e6,
            if slow { "  SLOW" } else { "" },
            procs.join(", "),
        );
        // One flat line per span, offset from the request's earliest
        // start so cross-process skew reads directly.
        let t0 = parts
            .iter()
            .flat_map(|p| p.spans.iter().map(|s| s.start_ns))
            .min()
            .unwrap_or(0);
        let mut spans: Vec<&telemetry::TraceSpan> =
            parts.iter().flat_map(|p| p.spans.iter()).collect();
        spans.sort_by_key(|s| (s.start_ns, s.end_ns));
        for s in spans {
            println!(
                "  +{:>9.3}ms {:>9.3}ms  {}/{}{}",
                s.start_ns.saturating_sub(t0) as f64 / 1e6,
                s.duration_ns() as f64 / 1e6,
                s.process,
                s.name,
                if s.tag.is_empty() {
                    String::new()
                } else {
                    format!("  [{}]", s.tag)
                },
            );
        }
    }
    Ok(())
}

fn cmd_prof(args: &Args) -> CliResult {
    use printqueue::prof::ProfileReport;
    let top: usize = args.get("top", 10);
    let json = args.has("json");

    let report = if let Some(from) = args.get_str("from") {
        // Remote: fetch each peer's dump and fold. A router address
        // already answers with its backends' merged dump — merging here
        // too lets one invocation span several routers, or mix routers
        // with standalone daemons, because the fold is associative and
        // commutative no matter how the dumps were grouped upstream.
        use printqueue::serve::Client;
        let mut merged = ProfileReport::default();
        let mut fetched = 0usize;
        for addr in from.split(',').filter(|s| !s.is_empty()) {
            let mut client =
                Client::connect(addr).map_err(|err| format!("connect {addr}: {err}"))?;
            let dump = client
                .profile_dump()
                .map_err(|err| format!("profile {addr}: {err}"))?;
            progress!(
                "{addr}: {} scopes, {} locks, {} stacks, {} samples",
                dump.scopes.len(),
                dump.locks.len(),
                dump.stacks.len(),
                dump.samples_total,
            );
            merged.merge(&dump);
            fetched += 1;
        }
        if fetched == 0 {
            return Err("--from needs at least one address".into());
        }
        merged
    } else {
        // Local: replay a trace with the profiler attached — the
        // walkthrough path that ends in a flamegraph without needing a
        // running fleet.
        let trace = load_trace(args)?;
        let sample_ms: u64 = args.get("sample-ms", 1);
        let m0: u8 = args.get("m0", 6);
        let alpha: u8 = args.get("alpha", 2);
        let k: u8 = args.get("k", 12);
        let t: u8 = args.get("t", 4);
        let d: u64 = args.get("d", 110);
        let tw = TimeWindowConfig::new(m0, alpha, k, t);
        printqueue::prof::reset();
        printqueue::prof::set_enabled(true);
        if sample_ms > 0 {
            printqueue::prof::start_sampler(std::time::Duration::from_millis(sample_ms));
        }
        let mut pq = PrintQueue::new(PrintQueueConfig::single_port(tw, d));
        let mut sw = Switch::new(SwitchConfig::single_port(10.0, 32_768));
        let (_plane, handle) = attach_telemetry(&mut pq, &mut sw, tw)?;
        progress!(
            "replaying {} packets with the profiler attached",
            trace.packets()
        );
        {
            let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq];
            sw.run(trace.arrivals.iter().copied(), &mut hooks, tw.set_period());
        }
        handle
            .finish()
            .map_err(|err| format!("profiling store finish: {err}"))?;
        printqueue::prof::stop_sampler();
        ProfileReport::capture()
    };

    if let Some(path) = args.get_str("folded") {
        std::fs::write(path, report.folded()).map_err(|err| format!("write {path}: {err}"))?;
        progress!("collapsed stacks written to {path} (flamegraph.pl / inferno input)");
    }
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render(top));
    }
    Ok(())
}

fn cmd_watch(args: &Args) -> CliResult {
    use printqueue::serve::Client;
    use printqueue::telemetry::{names, AlertEngine, GaugeHistory};
    let Some(addr) = args.positional.first().cloned() else {
        usage()
    };
    let interval_ms: u32 = args.get("interval-ms", 1_000);
    let json = args.has("json");
    let once = args.has("once");
    let max_updates: u32 = args.get("updates", 0);

    let mut rules = Vec::new();
    if let Some(path) = args.get_str("rules") {
        let text = std::fs::read_to_string(path).map_err(|err| format!("read {path}: {err}"))?;
        rules = telemetry::parse_rules(&text).map_err(|err| format!("{path}: {err}"))?;
    }
    if once {
        // A single evaluation pair must be able to fire: drop debounce
        // holds so `--once` is a usable CI gate.
        for r in &mut rules {
            r.for_ns = 0;
        }
    }
    let mut engine = AlertEngine::new(rules);

    // The watch client's own observability rides the same registry type
    // as everything else, so it prints and asserts uniformly.
    let plane = Telemetry::new();
    let reg = plane.registry();
    let updates_ctr = reg.counter(names::WATCH_UPDATES, &[]);
    let changed_ctr = reg.counter(names::WATCH_SERIES_CHANGED, &[]);
    let firing_gauge = reg.gauge(names::WATCH_ALERTS_FIRING, &[]);
    let events_ctr = reg.counter(names::WATCH_ALERT_EVENTS, &[]);

    let mut client =
        Client::connect(addr.as_str()).map_err(|err| format!("connect {addr}: {err}"))?;
    let sub_updates = if once { 2 } else { max_updates };
    let first = client
        .subscribe(interval_ms, sub_updates)
        .map_err(|err| format!("subscribe: {err}"))?;
    // The server clamps the publisher tick to its supported range and
    // echoes the effective value in the subscribe ack; surface it so an
    // operator asking for 1ms is not silently misled about cadence.
    let effective_ms = client.subscribed_interval_ms().unwrap_or(interval_ms);
    if effective_ms != interval_ms {
        progress!("watch {addr}: interval clamped to {effective_ms}ms (requested {interval_ms}ms)");
    }
    // Update 0 is the full baseline; later updates carry only changed
    // series (absolute values), folded in with `apply`.
    let mut folded = first.changed.clone();
    let mut last_seen = first.last;
    updates_ctr.inc();
    changed_ctr.add(first.changed.iter().count() as u64);
    let baseline_events = engine.evaluate(first.t_ns, &folded);
    events_ctr.add(baseline_events.len() as u64);
    firing_gauge.set(engine.firing().len() as u64);
    let mut prev = (first.t_ns, folded.clone());

    let mut qps_hist = GaugeHistory::new(60);
    let mut depth_hist = GaugeHistory::new(60);

    loop {
        if last_seen {
            break;
        }
        let update = client
            .next_update()
            .map_err(|err| format!("update: {err}"))?;
        last_seen = update.last;
        folded.apply(&update.changed);
        updates_ctr.inc();
        changed_ctr.add(update.changed.iter().count() as u64);
        let fresh_events = engine.evaluate(update.t_ns, &folded);
        events_ctr.add(fresh_events.len() as u64);
        firing_gauge.set(engine.firing().len() as u64);

        let (prev_t, prev_snap) = &prev;
        let elapsed = update.t_ns.saturating_sub(*prev_t);
        let qps = telemetry::rate_per_sec(
            sum_counter(prev_snap, names::SERVE_REQUESTS),
            sum_counter(&folded, names::SERVE_REQUESTS),
            elapsed,
        );
        qps_hist.push(update.t_ns, qps);
        depth_hist.push(
            update.t_ns,
            sum_gauge(&folded, names::SERVE_QUEUE_DEPTH) as f64,
        );
        if once {
            break;
        }
        let health = client.health().map_err(|err| format!("health: {err}"))?;
        render_watch_frame(
            &addr,
            &health,
            effective_ms,
            &folded,
            qps,
            &qps_hist,
            &depth_hist,
            &engine,
            &fresh_events,
        );
        prev = (update.t_ns, folded.clone());
    }

    // Final (or only, with --once) report.
    let health = client.health().map_err(|err| format!("health: {err}"))?;
    let firing = engine.firing();
    if json {
        println!(
            "{}",
            watch_json(
                &addr,
                &health,
                effective_ms,
                &folded,
                &plane.snapshot(),
                &engine
            )
        );
    } else {
        print!(
            "{}",
            watch_text(&addr, &health, effective_ms, &folded, &qps_hist, &engine)
        );
    }
    if !firing.is_empty() {
        let reasons: Vec<String> = engine
            .statuses()
            .into_iter()
            .filter(|s| s.state == "firing")
            .map(|s| format!("{}: {}", s.rule, s.reason))
            .collect();
        return Err(format!(
            "{} alert rule(s) firing: {}",
            firing.len(),
            reasons.join("; ")
        ));
    }
    Ok(())
}

/// Register a standing continuous query and print window results as they
/// materialize. `--once` asks the server to end the stream once the
/// bounded source is sealed (one full pass over the live registers), so
/// the command terminates and is usable as a CI gate; `--json` prints
/// one object per closed window live, or a single summary document under
/// `--once`.
fn cmd_stream(args: &Args) -> CliResult {
    use printqueue::serve::Client;
    let Some(addr) = args.positional.first().cloned() else {
        usage()
    };
    let Some(query) = args.get_str("query") else {
        usage()
    };
    let cap: u32 = args.get("cap", 512);
    let windows: u32 = args.get("windows", 0);
    let json = args.has("json");
    let once = args.has("once");

    let mut client =
        Client::connect(addr.as_str()).map_err(|err| format!("connect {addr}: {err}"))?;
    let ack = client
        .standing(query, cap, windows, once)
        .map_err(|err| format!("standing query: {err}"))?;
    progress!(
        "stream {addr}: sub {} cap {} — {}",
        ack.sub,
        ack.cap,
        ack.query
    );

    let mut closed = 0u64;
    let mut fired = 0u64;
    let mut results = Vec::new();
    loop {
        let r = client
            .next_stream_result(ack.sub)
            .map_err(|err| format!("stream result: {err}"))?;
        let last = r.last;
        // Frames with `to == 0` carry only watermark progress.
        if r.to != 0 {
            closed += 1;
            if r.fired {
                fired += 1;
            }
            if json && once {
                results.push(r);
            } else if json {
                println!("{}", stream_result_json(&r));
            } else {
                println!("{}", stream_result_text(&r));
            }
        }
        if last {
            break;
        }
    }
    if json && once {
        let body: Vec<String> = results.iter().map(stream_result_json).collect();
        println!(
            "{{\"addr\":\"{}\",\"query\":\"{}\",\"closed\":{closed},\"fired\":{fired},\
             \"results\":[{}]}}",
            json_escape(&addr),
            json_escape(&ack.query),
            body.join(","),
        );
    } else {
        progress!("stream {addr}: {closed} window(s) closed, {fired} fired");
    }
    Ok(())
}

/// One closed window as a human-readable line.
fn stream_result_text(r: &printqueue::serve::StreamResult) -> String {
    use std::fmt::Write as _;
    let min = if r.min == u64::MAX { 0 } else { r.min };
    let avg = if r.count > 0 {
        r.sum as f64 / r.count as f64
    } else {
        0.0
    };
    let mut out = format!(
        "window port {} [{}ns, {}ns) {}: depth max {} min {min} avg {avg:.1} last {} \
         ({} checkpoints)",
        r.port,
        r.from,
        r.to,
        if r.fired { "FIRED" } else { "quiet" },
        r.max,
        r.last_depth,
        r.count,
    );
    for (flow, est) in &r.flows {
        let _ = write!(out, " {}={est:.0}", flow.0);
    }
    if r.evictions > 0 {
        let _ = write!(
            out,
            " [{} evicted, weight {:.0}]",
            r.evictions, r.evicted_weight
        );
    }
    if r.forced {
        out.push_str(" [forced]");
    }
    if r.degraded {
        out.push_str(" [degraded]");
    }
    out
}

/// One closed window as a JSON object (shared by the live `--json`
/// stream and the `--once` summary document).
fn stream_result_json(r: &printqueue::serve::StreamResult) -> String {
    use std::fmt::Write as _;
    let mut flows = String::from("[");
    for (i, (flow, est)) in r.flows.iter().enumerate() {
        if i > 0 {
            flows.push(',');
        }
        let _ = write!(flows, "{{\"flow\":{},\"est\":{est}}}", flow.0);
    }
    flows.push(']');
    let mut gaps = String::from("[");
    for (i, g) in r.gaps.iter().enumerate() {
        if i > 0 {
            gaps.push(',');
        }
        let _ = write!(gaps, "{{\"from\":{},\"to\":{}}}", g.from, g.to);
    }
    gaps.push(']');
    format!(
        "{{\"seq\":{},\"watermark_ns\":{},\"port\":{},\"from\":{},\"to\":{},\"fired\":{},\
         \"forced\":{},\"degraded\":{},\"max\":{},\"min\":{},\"sum\":{},\"count\":{},\
         \"last_t\":{},\"last_depth\":{},\"evictions\":{},\"evicted_weight\":{},\
         \"flows\":{flows},\"gaps\":{gaps}}}",
        r.seq,
        r.watermark_ns,
        r.port,
        r.from,
        r.to,
        r.fired,
        r.forced,
        r.degraded,
        r.max,
        if r.min == u64::MAX { 0 } else { r.min },
        r.sum,
        r.count,
        r.last_t,
        r.last_depth,
        r.evictions,
        r.evicted_weight,
    )
}

/// Sum a counter's value across all of its label sets.
fn sum_counter(snap: &telemetry::RegistrySnapshot, name: &str) -> u64 {
    snap.iter()
        .filter(|(k, _)| k.name == name)
        .map(|(_, v)| match v {
            MetricValue::Counter(n) | MetricValue::Gauge(n) => *n,
            MetricValue::Histogram(h) => h.count,
        })
        .sum()
}

/// Sum a gauge's value across all of its label sets.
fn sum_gauge(snap: &telemetry::RegistrySnapshot, name: &str) -> u64 {
    sum_counter(snap, name)
}

/// `name` or `name{k="v",...}` — the Prometheus sample-key spelling, so
/// watch output and `.prom` expositions are directly comparable.
fn sample_key(key: &telemetry::MetricKey, suffix: &str) -> String {
    use std::fmt::Write as _;
    let mut out = format!("{}{}", key.name, suffix);
    if !key.labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in key.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{v}\"");
        }
        out.push('}');
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a snapshot as a flat JSON object of sample keys to numbers
/// (histograms contribute `_count` / `_sum` / `_p99` entries).
fn snapshot_json(snap: &telemetry::RegistrySnapshot) -> String {
    let mut out = String::from("{");
    let mut first = true;
    let mut entry = |key: String, value: String, out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\"{}\":{}", json_escape(&key), value));
    };
    for (key, value) in snap.iter() {
        match value {
            MetricValue::Counter(n) | MetricValue::Gauge(n) => {
                entry(sample_key(key, ""), n.to_string(), &mut out);
            }
            MetricValue::Histogram(h) => {
                entry(sample_key(key, "_count"), h.count.to_string(), &mut out);
                entry(sample_key(key, "_sum"), h.sum.to_string(), &mut out);
                entry(
                    sample_key(key, "_p99"),
                    h.quantile(0.99).to_string(),
                    &mut out,
                );
            }
        }
    }
    out.push('}');
    out
}

fn health_json(health: &printqueue::serve::HealthInfo) -> String {
    format!(
        "{{\"uptime_ns\":{},\"workers\":{},\"busy_workers\":{},\"queue_depth\":{},\
         \"queue_cap\":{},\"active_conns\":{},\"max_conns\":{},\"subscribers\":{},\
         \"draining\":{},\"version\":\"{}\",\"commit\":\"{}\",\"shard\":\"{}\"}}",
        health.uptime_ns,
        health.workers,
        health.busy_workers,
        health.queue_depth,
        health.queue_cap,
        health.active_conns,
        health.max_conns,
        health.subscribers,
        health.draining,
        json_escape(&health.version),
        json_escape(&health.commit),
        json_escape(&health.shard),
    )
}

fn alerts_json(engine: &printqueue::telemetry::AlertEngine) -> String {
    let mut out = String::from("[");
    for (i, s) in engine.statuses().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let value = match s.value {
            Some(v) if v.is_finite() => format!("{v}"),
            _ => "null".to_string(),
        };
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"state\":\"{}\",\"value\":{},\"threshold\":{},\"reason\":\"{}\"}}",
            json_escape(&s.rule),
            s.state,
            value,
            s.threshold,
            json_escape(&s.reason),
        ));
    }
    out.push(']');
    out
}

/// The worst (highest-valued) exemplar across every histogram in a
/// snapshot, with the sample key it came from. When an alert fires,
/// this is the trace id to pull first: the slowest traced request the
/// server has seen in the offending distribution.
fn worst_snapshot_exemplar(
    snap: &telemetry::RegistrySnapshot,
) -> Option<(String, telemetry::BucketExemplar)> {
    let mut best: Option<(String, telemetry::BucketExemplar)> = None;
    for (key, value) in snap.iter() {
        if let MetricValue::Histogram(h) = value {
            if let Some(ex) = h.worst_exemplar() {
                if best.as_ref().is_none_or(|(_, b)| ex.value > b.value) {
                    best = Some((sample_key(key, ""), ex));
                }
            }
        }
    }
    best
}

fn exemplar_json(snap: &telemetry::RegistrySnapshot) -> String {
    match worst_snapshot_exemplar(snap) {
        Some((metric, ex)) => format!(
            "{{\"metric\":\"{}\",\"trace_id\":\"{:032x}\",\"value\":{}}}",
            json_escape(&metric),
            ex.trace_id,
            ex.value,
        ),
        None => "null".to_string(),
    }
}

/// The `--json` document: health, the folded server metrics, the watch
/// client's own metrics, and every rule's status.
fn watch_json(
    addr: &str,
    health: &printqueue::serve::HealthInfo,
    interval_ms: u32,
    server: &telemetry::RegistrySnapshot,
    watch: &telemetry::RegistrySnapshot,
    engine: &printqueue::telemetry::AlertEngine,
) -> String {
    let firing = engine.firing();
    let firing_list: Vec<String> = firing
        .iter()
        .map(|name| format!("\"{}\"", json_escape(name)))
        .collect();
    // Shard identity rides at the top level (not only inside "health") so
    // CI scripts pointed at a fleet member can assert who answered with a
    // one-key lookup.
    format!(
        "{{\"addr\":\"{}\",\"shard\":\"{}\",\"interval_ms\":{},\"health\":{},\"metrics\":{},\
         \"watch\":{},\"alerts\":{},\"firing\":[{}],\"exemplar\":{}}}",
        json_escape(addr),
        json_escape(&health.shard),
        interval_ms,
        health_json(health),
        snapshot_json(server),
        snapshot_json(watch),
        alerts_json(engine),
        firing_list.join(","),
        // The histogram exemplar linking the numbers to a concrete
        // request: an alert consumer can jump straight from this
        // document to `pqsim trace` with the trace id.
        exemplar_json(server),
    )
}

/// The plaintext summary printed by `--once` (and at stream end).
fn watch_text(
    addr: &str,
    health: &printqueue::serve::HealthInfo,
    interval_ms: u32,
    server: &telemetry::RegistrySnapshot,
    qps_hist: &printqueue::telemetry::GaugeHistory,
    engine: &printqueue::telemetry::AlertEngine,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    // The shard identity the backend advertises in its HealthAck, so a
    // watcher pointed at one member of a sharded fleet (or at the
    // router itself) sees who is answering.
    let shard = if health.shard.is_empty() {
        String::new()
    } else {
        format!(" [{}]", health.shard)
    };
    let _ = writeln!(
        out,
        "watch {addr}{shard}: every {interval_ms}ms, up {}s, version {} ({}), \
         {}/{} workers busy, queue {}/{}, conns {}/{}, subscribers {}{}",
        health.uptime_ns / 1_000_000_000,
        health.version,
        &health.commit[..health.commit.len().min(12)],
        health.busy_workers,
        health.workers,
        health.queue_depth,
        health.queue_cap,
        health.active_conns,
        health.max_conns,
        health.subscribers,
        if health.draining { ", DRAINING" } else { "" },
    );
    let requests = sum_counter(server, telemetry::names::SERVE_REQUESTS);
    let shed = sum_counter(server, telemetry::names::SERVE_SHED);
    let hits = sum_counter(server, telemetry::names::SERVE_CACHE_HIT);
    let misses = sum_counter(server, telemetry::names::SERVE_CACHE_MISS);
    let hit_rate = if hits + misses > 0 {
        format!("{:.1}%", 100.0 * hits as f64 / (hits + misses) as f64)
    } else {
        "n/a".to_string()
    };
    let qps = qps_hist.latest().map(|(_, v)| v).unwrap_or(0.0);
    let _ = writeln!(
        out,
        "  requests {requests} ({qps:.1}/s), shed {shed}, cache hit rate {hit_rate}"
    );
    if qps_hist.len() > 1 {
        let _ = writeln!(out, "  qps {}", qps_hist.sparkline(40));
    }
    // RTT row, present only when the daemon actually serves RTT data
    // (`pq_rtt_samples_total` is the same series the CI floor gates).
    let rtt_samples = sum_counter(server, telemetry::names::RTT_SAMPLES);
    if rtt_samples > 0 {
        let rtt_queries = sum_counter(server, telemetry::names::RTT_QUERIES);
        let (mut p50, mut p99) = (0u64, 0u64);
        for (key, value) in server.iter() {
            if key.name == telemetry::names::RTT_SAMPLE_NS {
                if let MetricValue::Histogram(h) = value {
                    p50 = p50.max(h.p50());
                    p99 = p99.max(h.p99());
                }
            }
        }
        let _ = writeln!(
            out,
            "  rtt {rtt_samples} samples, {rtt_queries} queries, worst-port p50 {:.3}ms p99 {:.3}ms",
            p50 as f64 / 1e6,
            p99 as f64 / 1e6,
        );
    }
    // Hotspot row, present only when the backend profiles itself
    // (`--prof` on serve/router): the top self-time scope and the worst
    // lock-wait p99s, straight off the exported `pq_prof_*` series.
    let mut top_scope: Option<(&str, u64)> = None;
    let mut lock_p99: Vec<(&str, u64)> = Vec::new();
    for (key, value) in server.iter() {
        match (key.name.as_str(), value) {
            (telemetry::names::PROF_SCOPE_SELF_NS, MetricValue::Counter(v)) => {
                let name = key.labels.first().map(|(_, v)| v.as_str()).unwrap_or("?");
                if top_scope.is_none_or(|(_, best)| *v > best) {
                    top_scope = Some((name, *v));
                }
            }
            (telemetry::names::LOCK_WAIT_NS, MetricValue::Histogram(h)) => {
                let name = key.labels.first().map(|(_, v)| v.as_str()).unwrap_or("?");
                lock_p99.push((name, h.p99()));
            }
            _ => {}
        }
    }
    if let Some((name, self_ns)) = top_scope {
        lock_p99.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let locks: Vec<String> = lock_p99
            .iter()
            .take(2)
            .map(|(l, p99)| format!("{l} wait p99 {}ns", p99))
            .collect();
        let _ = writeln!(
            out,
            "  hotspot {name} self {:.3}ms{}",
            self_ns as f64 / 1e6,
            if locks.is_empty() {
                String::new()
            } else {
                format!("; locks: {}", locks.join(", "))
            }
        );
    }
    let statuses = engine.statuses();
    if statuses.is_empty() {
        let _ = writeln!(out, "  alerts: no rules loaded");
    }
    for s in statuses {
        let _ = writeln!(out, "  alert {:8} {}: {}", s.state, s.rule, s.reason);
    }
    if let Some((metric, ex)) = worst_snapshot_exemplar(server) {
        let _ = writeln!(
            out,
            "  exemplar {metric}: trace {:032x} at {} (pull with `pqsim trace --from {addr}`)",
            ex.trace_id, ex.value,
        );
    }
    out
}

/// One live-dashboard frame. On a terminal the screen is redrawn in
/// place; when piped, frames are separated by blank lines so the stream
/// stays greppable.
#[allow(clippy::too_many_arguments)]
fn render_watch_frame(
    addr: &str,
    health: &printqueue::serve::HealthInfo,
    interval_ms: u32,
    server: &telemetry::RegistrySnapshot,
    qps: f64,
    qps_hist: &printqueue::telemetry::GaugeHistory,
    depth_hist: &printqueue::telemetry::GaugeHistory,
    engine: &printqueue::telemetry::AlertEngine,
    fresh_events: &[printqueue::telemetry::AlertEvent],
) {
    use std::io::IsTerminal as _;
    let mut out = String::new();
    if std::io::stdout().is_terminal() {
        out.push_str("\x1b[2J\x1b[H");
    }
    out.push_str(&watch_text(
        addr,
        health,
        interval_ms,
        server,
        qps_hist,
        engine,
    ));
    use std::fmt::Write as _;
    let _ = writeln!(
        out,
        "  qps now {qps:.1}, queue depth {}",
        depth_hist.latest().map(|(_, v)| v as u64).unwrap_or(0)
    );
    if depth_hist.len() > 1 {
        let _ = writeln!(out, "  depth {}", depth_hist.sparkline(40));
    }
    for e in fresh_events {
        let _ = writeln!(out, "  event {:?} {}: {}", e.kind, e.rule, e.reason);
    }
    println!("{out}");
}

fn cmd_serve_stop(args: &Args) -> CliResult {
    use printqueue::serve::Client;
    let Some(addr) = args.positional.first() else {
        usage()
    };
    let mut client =
        Client::connect(addr.as_str()).map_err(|err| format!("connect {addr}: {err}"))?;
    client
        .shutdown_server()
        .map_err(|err| format!("shutdown: {err}"))?;
    progress!("server at {addr} acknowledged shutdown");
    Ok(())
}

fn cmd_convert(args: &Args) -> CliResult {
    let (Some(src), Some(dst)) = (args.positional.first(), args.positional.get(1)) else {
        usage()
    };
    let src = PathBuf::from(src);
    let dst = PathBuf::from(dst);
    let format = parse_format_flag(args, &dst);
    let archives = printqueue::store::read_archives(&src)
        .map_err(|err| format!("read {}: {err}", src.display()))?;
    printqueue::store::write_archives(&dst, &archives, format, SegmentPolicy::default())
        .map_err(|err| format!("write {}: {err}", dst.display()))?;
    let checkpoints: usize = archives.iter().map(|a| a.checkpoints.len()).sum();
    let bytes = |p: &std::path::Path| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
    progress!(
        "converted {} checkpoints across {} port(s): {} ({} B) -> {} ({} B)",
        checkpoints,
        archives.len(),
        src.display(),
        bytes(&src),
        dst.display(),
        bytes(&dst)
    );
    Ok(())
}

fn cmd_case_study(args: &Args) -> CliResult {
    let duration_ms: u64 = args.get("duration-ms", 100);
    let seed: u64 = args.get("seed", 1);
    let cs = scenario::case_study_fig16(duration_ms.millis(), seed);
    let tw = TimeWindowConfig::WS_DM;
    let mut config = PrintQueueConfig::single_port(tw, 200);
    config.control.poll_period = 2u64.millis();
    let mut pq = PrintQueue::new(config);
    let mut sink = TelemetrySink::new();
    let mut sw_config = SwitchConfig::single_port(10.0, 40_000);
    sw_config.ports[0].max_depth_cells = 40_000;
    let mut sw = Switch::new(sw_config);
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq, &mut sink];
        sw.run(cs.trace.arrivals.iter().copied(), &mut hooks, 2u64.millis());
    }
    let oracle = GroundTruth::new(&sink.records, 80);
    let Some(victim) = oracle
        .records()
        .iter()
        .filter(|r| r.flow == cs.roles.new_tcp)
        .max_by_key(|r| r.meta.deq_timedelta)
        .copied()
    else {
        return Err(
            "case study produced no packets for the new TCP flow — try a longer \
             --duration-ms or a different --seed"
                .to_string(),
        );
    };
    println!(
        "victim (new TCP flow) waited {:.2} ms behind a queue the burst built",
        f64::from(victim.meta.deq_timedelta) / 1e6
    );
    let label = |flow: FlowId| -> &str {
        if flow == cs.roles.burst {
            "burst"
        } else if flow == cs.roles.background {
            "background"
        } else {
            "new TCP"
        }
    };
    let report = oracle.report(&victim);
    let show = |name: &str, counts: &std::collections::HashMap<FlowId, u64>| {
        let total: u64 = counts.values().sum();
        print!("{name:>9}:");
        let mut entries: Vec<_> = counts.iter().collect();
        entries.sort_by(|a, b| b.1.cmp(a.1));
        for (flow, n) in entries {
            print!(
                " {}={n} ({:.0}%)",
                label(*flow),
                *n as f64 / total as f64 * 100.0
            );
        }
        println!();
    };
    show("direct", &report.direct);
    show("indirect", &report.indirect);
    let Some(qm) = pq.analysis().query_queue_monitor(0, victim.deq_timestamp()) else {
        return Err(
            "no queue-monitor checkpoint near the victim's dequeue — the control \
             plane stored nothing (shorter poll period or longer run needed)"
                .to_string(),
        );
    };
    if qm.degraded {
        progress!(
            "warning: queue-monitor answer is degraded (snapshot {:.2} ms away from \
             the victim, or inside a coverage gap)",
            qm.staleness as f64 / 1e6
        );
    }
    show("original", &qm.culprit_counts());
    println!(
        "\nonly the original-culprit view (queue monitor) implicates the burst,\n\
         which left the network ~{} ms before the victim arrived",
        (victim.meta.enq_timestamp.saturating_sub(cs.burst_start)) / 1_000_000
    );
    Ok(())
}
