//! `pqsim` — command-line driver for the PrintQueue reproduction.
//!
//! Subcommands:
//!
//! * `gen   --kind uw|ws|dm --duration-ms N --seed S --out FILE`
//!   Generate a workload trace and save it as a `.pqtr` file.
//! * `info  FILE`
//!   Print a saved trace's summary statistics.
//! * `run   FILE [--alpha A --k K --t T --m0 M --d NS] [--victims N]`
//!   Replay a trace through the simulated switch with PrintQueue attached
//!   and diagnose the N most-delayed packets.
//! * `case-study [--duration-ms N --seed S]`
//!   Run the §7.2 queue-monitor case study and print the three culprit
//!   views.
//! * `export-pcap FILE.pqtr FILE.pcap` / `import-pcap FILE.pcap FILE.pqtr`
//!   Convert between the native trace format and standard pcap, for
//!   interop with tcpdump/wireshark/tcpreplay.
//! * `depth FILE.pqtr [--step-us N]`
//!   Replay a trace and print an ASCII queue-depth-over-time plot from the
//!   data-plane depth sampler.
//! * `validate [--alpha A --k K --t T --m0 M --rate-gbps G --min-pkt B]`
//!   Pre-flight a configuration against a deployment profile (§7.1's
//!   feasibility guidance) without running anything.
//! * `archive FILE.pqtr OUT [--format json|pqa] [tw flags]`
//!   Run a trace and archive every active port's checkpoints. The binary
//!   `.pqa` format streams checkpoints to disk as the control plane polls
//!   them (bounded RAM); JSON captures the in-RAM snapshot ring. With no
//!   `--format`, a `.pqa` extension selects binary, anything else JSON.
//! * `replay-query ARCHIVE --from NS --to NS [--port P] [--d NS]`
//!   Re-run a time-window query against an archived checkpoint store.
//!   The format is auto-detected from the file's leading bytes; `.pqa`
//!   queries decode only the segments overlapping the interval.
//! * `convert SRC DST [--format json|pqa]`
//!   Convert an archive between JSON and `.pqa` (either direction),
//!   auto-detecting the source format.
//!
//! Everything is deterministic given the seed.

use printqueue::core::culprits::GroundTruth;
use printqueue::core::metrics::{self, precision_recall};
use printqueue::prelude::*;
use printqueue::trace::workload::GeneratedTrace;
use printqueue::trace::{io as trace_io, scenario};
use std::path::PathBuf;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  pqsim gen --kind uw|ws|dm [--duration-ms N] [--seed S] --out FILE\n  \
         pqsim info FILE\n  \
         pqsim run FILE [--alpha A] [--k K] [--t T] [--m0 M] [--d NS] [--victims N]\n  \
         \x20         [--fault-rate P] [--fault-seed S] [--read-latency-ns NS]\n  \
         pqsim case-study [--duration-ms N] [--seed S]\n  \
         pqsim export-pcap FILE.pqtr FILE.pcap\n  \
         pqsim import-pcap FILE.pcap FILE.pqtr [--port P]\n  \
         pqsim depth FILE.pqtr [--step-us N]\n  \
         pqsim validate [tw flags] [--rate-gbps G] [--min-pkt B]\n  \
         pqsim archive FILE.pqtr OUT [--format json|pqa] [tw flags]\n  \
         pqsim replay-query ARCHIVE --from NS --to NS [--port P] [--d NS]\n  \
         pqsim convert SRC DST [--format json|pqa]"
    );
    exit(2)
}

/// Minimal flag parser: `--name value` pairs plus positional arguments.
struct Args {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
}

impl Args {
    fn parse(raw: impl Iterator<Item = String>) -> Args {
        let mut positional = Vec::new();
        let mut flags = std::collections::HashMap::new();
        let mut raw = raw.peekable();
        while let Some(arg) = raw.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = raw.next().unwrap_or_else(|| usage());
                flags.insert(name.to_string(), value);
            } else {
                positional.push(arg);
            }
        }
        Args { positional, flags }
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.flags.get(name) {
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("bad value for --{name}: {v}");
                exit(2)
            }),
            None => default,
        }
    }

    fn get_str(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }
}

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else { usage() };
    let args = Args::parse(argv);
    match cmd.as_str() {
        "gen" => cmd_gen(&args),
        "info" => cmd_info(&args),
        "run" => cmd_run(&args),
        "case-study" => cmd_case_study(&args),
        "export-pcap" => cmd_export_pcap(&args),
        "import-pcap" => cmd_import_pcap(&args),
        "depth" => cmd_depth(&args),
        "validate" => cmd_validate(&args),
        "archive" => cmd_archive(&args),
        "replay-query" => cmd_replay_query(&args),
        "convert" => cmd_convert(&args),
        _ => usage(),
    }
}

fn cmd_gen(args: &Args) {
    let kind = match args.get_str("kind") {
        Some("uw") => WorkloadKind::Uw,
        Some("ws") => WorkloadKind::Ws,
        Some("dm") => WorkloadKind::Dm,
        _ => usage(),
    };
    let duration_ms: u64 = args.get("duration-ms", 50);
    let seed: u64 = args.get("seed", 1);
    let Some(out) = args.get_str("out") else {
        usage()
    };
    let trace = Workload::paper_testbed(kind, duration_ms.millis(), seed).generate();
    println!(
        "generated {} trace: {} packets, {} flows, offered {:.2} Gbps over {duration_ms} ms",
        kind.label(),
        trace.packets(),
        trace.flows.len(),
        trace.offered_gbps(duration_ms.millis())
    );
    if let Err(err) = trace_io::save(&trace, &PathBuf::from(out)) {
        eprintln!("failed to write {out}: {err}");
        exit(1);
    }
    println!("saved to {out}");
}

fn load_trace(args: &Args) -> GeneratedTrace {
    let Some(path) = args.positional.first() else {
        usage()
    };
    match trace_io::load(&PathBuf::from(path)) {
        Ok(trace) => trace,
        Err(err) => {
            eprintln!("failed to read {path}: {err}");
            exit(1)
        }
    }
}

fn cmd_info(args: &Args) {
    let trace = load_trace(args);
    println!("{}", printqueue::trace::stats::analyze(&trace));
    // Top 5 flows by packets.
    let mut per_flow = std::collections::HashMap::new();
    for a in &trace.arrivals {
        *per_flow.entry(a.pkt.flow).or_insert(0u64) += 1;
    }
    let mut ranked: Vec<_> = per_flow.into_iter().collect();
    ranked.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("top flows:");
    for (flow, n) in ranked.into_iter().take(5) {
        let tuple = trace
            .flows
            .resolve(flow)
            .map(|k| k.to_string())
            .unwrap_or_default();
        println!("  {n:>8}  {tuple}");
    }
}

fn cmd_run(args: &Args) {
    let trace = load_trace(args);
    let m0: u8 = args.get("m0", 6);
    let alpha: u8 = args.get("alpha", 2);
    let k: u8 = args.get("k", 12);
    let t: u8 = args.get("t", 4);
    let d: u64 = args.get("d", 110);
    let victims_n: usize = args.get("victims", 5);
    let fault_rate: f64 = args.get("fault-rate", 0.0);
    let fault_seed: u64 = args.get("fault-seed", 1);
    let read_latency_ns: u64 = args.get("read-latency-ns", 0);
    if !(0.0..=1.0).contains(&fault_rate) {
        eprintln!("--fault-rate must be within [0, 1], got {fault_rate}");
        exit(2);
    }

    let tw = TimeWindowConfig::new(m0, alpha, k, t);
    println!(
        "PrintQueue: m0={m0} α={alpha} k={k} T={t}; set period {:.3} ms",
        tw.set_period() as f64 / 1e6
    );
    let mut pq_config = PrintQueueConfig::single_port(tw, d);
    if fault_rate > 0.0 || read_latency_ns > 0 {
        let profile = FaultProfile {
            read_failure_prob: fault_rate,
            read_latency: if read_latency_ns > 0 {
                LatencyModel::Fixed(read_latency_ns)
            } else {
                LatencyModel::Zero
            },
            ..FaultProfile::none()
        };
        pq_config = pq_config.with_faults(FaultConfig::new(fault_seed).with_base(profile));
        println!(
            "fault injection: read failure p={fault_rate}, read latency {read_latency_ns} ns, seed {fault_seed}"
        );
    }
    // Pre-flight the configuration against the trace's characteristics.
    {
        use printqueue::core::validation::{validate, DeploymentProfile};
        let stats = printqueue::trace::stats::analyze(&trace);
        let profile = DeploymentProfile {
            port_rate_gbps: 10.0,
            min_pkt_bytes: stats.pkt_size_p1.max(64),
            max_depth_cells: 32_768,
            max_query_interval: tw.set_period().min(2_000_000),
        };
        for f in validate(&pq_config, &profile) {
            println!("[{:?}] {}: {}", f.severity, f.code, f.message);
        }
    }
    let mut pq = PrintQueue::new(pq_config);
    let mut sink = TelemetrySink::new();
    let mut sw = Switch::new(SwitchConfig::single_port(10.0, 32_768));
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq, &mut sink];
        sw.run(trace.arrivals.iter().copied(), &mut hooks, tw.set_period());
    }
    let stats = sw.port_stats(0);
    println!(
        "switch: {} transmitted, {} dropped, max depth {} cells, mean delay {:.1} µs",
        stats.dequeued,
        stats.dropped,
        stats.max_depth_cells,
        stats.mean_queue_delay() / 1e3
    );
    let health = *pq.analysis().health();
    println!(
        "control plane: {} polls ({} failed, {} retried, {} stalled), {} checkpoints \
         ({} dropped), {} coverage gaps ({:.3} ms lost), {} backoff ceiling hits",
        health.polls_attempted,
        health.polls_failed,
        health.polls_retried,
        health.polls_stalled,
        health.checkpoints_stored,
        health.checkpoints_dropped,
        health.coverage_gaps,
        health.gap_ns as f64 / 1e6,
        health.backoff_ceiling_hits,
    );

    let oracle = GroundTruth::new(&sink.records, 80);
    let mut by_delay: Vec<_> = sink.records.iter().collect();
    by_delay.sort_by_key(|r| std::cmp::Reverse(r.meta.deq_timedelta));
    println!("\ndiagnosing the {victims_n} most-delayed packets:");
    for victim in by_delay.into_iter().take(victims_n) {
        let interval = QueryInterval::new(victim.meta.enq_timestamp, victim.deq_timestamp());
        let est = pq.analysis().query_time_windows(0, interval);
        let truth = metrics::to_float_counts(&oracle.direct_culprits(
            interval.from,
            interval.to,
            victim.seqno,
        ));
        let pr = precision_recall(&est.counts, &truth);
        let top = est
            .ranked()
            .first()
            .and_then(|(f, n)| trace.flows.resolve(*f).map(|key| (key.to_string(), *n)));
        println!(
            "  victim {} waited {:>8.1} µs | {} culprit flows, P {:.2} R {:.2} | top: {}{}",
            victim.flow,
            f64::from(victim.meta.deq_timedelta) / 1e3,
            est.counts.len(),
            pr.precision,
            pr.recall,
            top.map(|(key, n)| format!("{key} (~{n:.0} pkts)"))
                .unwrap_or_else(|| "-".into()),
            if est.degraded {
                " [degraded: coverage gap]"
            } else {
                ""
            },
        );
    }
}

fn cmd_export_pcap(args: &Args) {
    let (Some(src), Some(dst)) = (args.positional.first(), args.positional.get(1)) else {
        usage()
    };
    let trace = match trace_io::load(&PathBuf::from(src)) {
        Ok(t) => t,
        Err(err) => {
            eprintln!("failed to read {src}: {err}");
            exit(1)
        }
    };
    let file = match std::fs::File::create(dst) {
        Ok(f) => f,
        Err(err) => {
            eprintln!("failed to create {dst}: {err}");
            exit(1)
        }
    };
    if let Err(err) = printqueue::trace::pcap::write_pcap(&trace, std::io::BufWriter::new(file)) {
        eprintln!("pcap write failed: {err}");
        exit(1);
    }
    println!("wrote {} packets to {dst}", trace.packets());
}

fn cmd_import_pcap(args: &Args) {
    let (Some(src), Some(dst)) = (args.positional.first(), args.positional.get(1)) else {
        usage()
    };
    let port: u16 = args.get("port", 0);
    let file = match std::fs::File::open(src) {
        Ok(f) => f,
        Err(err) => {
            eprintln!("failed to open {src}: {err}");
            exit(1)
        }
    };
    let (trace, skipped) =
        match printqueue::trace::pcap::read_pcap(std::io::BufReader::new(file), port) {
            Ok(r) => r,
            Err(err) => {
                eprintln!("pcap read failed: {err}");
                exit(1)
            }
        };
    if skipped > 0 {
        eprintln!("skipped {skipped} non-IPv4/TCP/UDP frames");
    }
    if let Err(err) = trace_io::save(&trace, &PathBuf::from(dst)) {
        eprintln!("failed to write {dst}: {err}");
        exit(1);
    }
    println!(
        "imported {} packets across {} flows into {dst}",
        trace.packets(),
        trace.flows.len()
    );
}

fn cmd_depth(args: &Args) {
    use printqueue::switch::DepthSampler;
    let trace = load_trace(args);
    let step_us: u64 = args.get("step-us", 500);
    let mut sw = Switch::new(SwitchConfig::single_port(10.0, 32_768));
    let mut sampler = DepthSampler::new(0, 80, 1 << 20);
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut sampler];
        sw.run(trace.arrivals.iter().copied(), &mut hooks, step_us * 1_000);
    }
    let peak = sampler.peak_cells.max(1);
    println!("queue depth over time (port 0, peak {peak} cells):");
    for s in &sampler.samples {
        let bars = (u64::from(s.depth_cells) * 50 / u64::from(peak)) as usize;
        println!(
            "{:>9.2} ms |{}{}",
            s.at as f64 / 1e6,
            "#".repeat(bars),
            if s.depth_cells > 0 && bars == 0 {
                "."
            } else {
                ""
            }
        );
    }
    if let Some((from, to)) = sampler.longest_busy_span(peak / 10) {
        println!(
            "longest span above 10% of peak: {:.2} ms",
            (to - from) as f64 / 1e6
        );
    }
}

fn cmd_validate(args: &Args) {
    use printqueue::core::validation::{is_deployable, validate, DeploymentProfile};
    let m0: u8 = args.get("m0", 6);
    let alpha: u8 = args.get("alpha", 2);
    let k: u8 = args.get("k", 12);
    let t: u8 = args.get("t", 4);
    let rate: f64 = args.get("rate-gbps", 10.0);
    let min_pkt: u32 = args.get("min-pkt", 64);
    let tw = TimeWindowConfig::new(m0, alpha, k, t);
    let config = PrintQueueConfig::single_port(tw, 64);
    let profile = DeploymentProfile {
        port_rate_gbps: rate,
        min_pkt_bytes: min_pkt,
        max_depth_cells: 32_768,
        max_query_interval: 2_000_000,
    };
    println!(
        "config m0={m0} α={alpha} k={k} T={t}: set period {:.3} ms, poll {:.3} ms",
        tw.set_period() as f64 / 1e6,
        config.control.poll_period as f64 / 1e6
    );
    let findings = validate(&config, &profile);
    if findings.is_empty() {
        println!("no findings — deployable ✓");
        return;
    }
    for f in &findings {
        println!("[{:?}] {}: {}", f.severity, f.code, f.message);
    }
    if !is_deployable(&findings) {
        exit(1);
    }
}

fn parse_format_flag(args: &Args, path: &std::path::Path) -> printqueue::store::ArchiveFormat {
    use printqueue::store::ArchiveFormat;
    match args.get_str("format") {
        Some("json") => ArchiveFormat::Json,
        Some("pqa") => ArchiveFormat::Pqa,
        Some(other) => {
            eprintln!("unknown --format {other} (expected json|pqa)");
            exit(2)
        }
        None => printqueue::store::format_for_path(path),
    }
}

fn cmd_archive(args: &Args) {
    use printqueue::store::{ArchiveFormat, SegmentPolicy, SharedStoreWriter, StoreWriter};
    use printqueue::switch::PortConfig;
    let trace = load_trace(args);
    let Some(out_path) = args.positional.get(1) else {
        usage()
    };
    let out_path = PathBuf::from(out_path);
    let m0: u8 = args.get("m0", 6);
    let alpha: u8 = args.get("alpha", 2);
    let k: u8 = args.get("k", 12);
    let t: u8 = args.get("t", 4);
    let d: u64 = args.get("d", 110);
    let tw = TimeWindowConfig::new(m0, alpha, k, t);
    let format = parse_format_flag(args, &out_path);

    // Archive every port the trace touches, not just port 0.
    let mut ports: Vec<u16> = trace.arrivals.iter().map(|a| a.port).collect();
    ports.push(0);
    ports.sort_unstable();
    ports.dedup();
    let port_count = usize::from(*ports.last().unwrap()) + 1;

    let mut pq_config = PrintQueueConfig::single_port(tw, d);
    pq_config.ports = ports.clone();
    let mut pq = PrintQueue::new(pq_config);

    // Binary output streams checkpoints to disk as the control plane
    // polls them (bounded RAM); JSON captures the snapshot ring at end.
    let mut spill: Option<SharedStoreWriter<std::io::BufWriter<std::fs::File>>> = None;
    if format == ArchiveFormat::Pqa {
        let file = match std::fs::File::create(&out_path) {
            Ok(f) => f,
            Err(err) => {
                eprintln!("failed to create {}: {err}", out_path.display());
                exit(1)
            }
        };
        let writer =
            match StoreWriter::new(std::io::BufWriter::new(file), tw, SegmentPolicy::default()) {
                Ok(w) => w,
                Err(err) => {
                    eprintln!("failed to start store: {err}");
                    exit(1)
                }
            };
        let handle = SharedStoreWriter::new(writer);
        pq.analysis_mut().set_spill(Box::new(handle.clone()));
        spill = Some(handle);
    }

    let mut sink = TelemetrySink::new();
    let mut sw_config = SwitchConfig::single_port(10.0, 32_768);
    sw_config.ports = vec![
        PortConfig {
            rate_gbps: 10.0,
            max_depth_cells: 32_768,
            ..PortConfig::default()
        };
        port_count
    ];
    let mut sw = Switch::new(sw_config);
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq, &mut sink];
        sw.run(trace.arrivals.iter().copied(), &mut hooks, tw.set_period());
    }

    let total_checkpoints: usize = ports
        .iter()
        .map(|&p| pq.analysis().checkpoints(p).len())
        .sum();
    match spill {
        Some(handle) => {
            let health = *pq.analysis().health();
            for &port in &ports {
                if handle.with(|w| w.set_health(port, health)).is_err() {
                    break;
                }
            }
            if let Err(err) = handle.finish() {
                eprintln!("store finish failed: {err}");
                exit(1);
            }
        }
        None => {
            let archives: Vec<_> = ports
                .iter()
                .map(|&p| printqueue::core::export::CheckpointArchive::capture(pq.analysis(), p))
                .collect();
            if let Err(err) = printqueue::store::write_archives(
                &out_path,
                &archives,
                ArchiveFormat::Json,
                SegmentPolicy::default(),
            ) {
                eprintln!("archive write failed: {err}");
                exit(1);
            }
        }
    }
    println!(
        "archived {} checkpoints across {} port(s) ({} transmitted packets) to {}",
        total_checkpoints,
        ports.len(),
        sink.records.len(),
        out_path.display()
    );
}

fn print_query_result(
    header: String,
    est: &printqueue::core::snapshot::FlowEstimates,
    gaps: &[CoverageGap],
    degraded: bool,
) {
    println!(
        "{header}: {} flows, ~{:.0} packets",
        est.counts.len(),
        est.total()
    );
    if degraded {
        println!(
            "degraded: {} coverage gap(s) overlap the interval:",
            gaps.len()
        );
        for g in gaps {
            println!("  gap [{}, {}]", g.from, g.to);
        }
    }
    for (flow, n) in est.ranked().into_iter().take(10) {
        println!("  {n:10.1}  {flow}");
    }
}

fn cmd_replay_query(args: &Args) {
    use printqueue::store::{ArchiveFormat, StoreReader};
    let Some(path) = args.positional.first() else {
        usage()
    };
    let path = PathBuf::from(path);
    let from: u64 = args.get("from", 0);
    let to: u64 = args.get("to", u64::MAX);
    let d: u64 = args.get("d", 110);
    let interval = QueryInterval::new(from, to);
    let format = match ArchiveFormat::detect(&path) {
        Ok(f) => f,
        Err(err) => {
            eprintln!("failed to detect format of {}: {err}", path.display());
            exit(1)
        }
    };
    match format {
        ArchiveFormat::Pqa => {
            let file = match std::fs::File::open(&path) {
                Ok(f) => f,
                Err(err) => {
                    eprintln!("failed to open {}: {err}", path.display());
                    exit(1)
                }
            };
            let mut reader = match StoreReader::open(std::io::BufReader::new(file)) {
                Ok(r) => r,
                Err(err) => {
                    eprintln!("store open failed: {err}");
                    exit(1)
                }
            };
            let ports = reader.ports();
            let port: u16 = args.get("port", ports.first().copied().unwrap_or(0));
            let coeffs =
                printqueue::core::coefficient::Coefficients::compute(reader.tw_config(), d);
            let result = match reader.query(port, interval, &coeffs) {
                Ok(r) => r,
                Err(err) => {
                    eprintln!("query failed: {err}");
                    exit(1)
                }
            };
            print_query_result(
                format!(
                    "query [{from}, {to}] over {} checkpoints",
                    reader.checkpoint_count(port)
                ),
                &result.estimates,
                &result.gaps,
                result.degraded,
            );
        }
        ArchiveFormat::Json => {
            let archives = match printqueue::store::read_archives(&path) {
                Ok(a) => a,
                Err(err) => {
                    eprintln!("archive read failed: {err}");
                    exit(1)
                }
            };
            let port: u16 = args.get("port", archives.first().map_or(0, |a| a.port));
            let Some(archive) = archives.iter().find(|a| a.port == port) else {
                eprintln!("port {port} not present in archive");
                exit(1)
            };
            let coeffs =
                printqueue::core::coefficient::Coefficients::compute(&archive.tw_config, d);
            let result = archive.query_result(interval, &coeffs);
            print_query_result(
                format!(
                    "query [{from}, {to}] over {} checkpoints",
                    archive.checkpoints.len()
                ),
                &result.estimates,
                &result.gaps,
                result.degraded,
            );
        }
    }
}

fn cmd_convert(args: &Args) {
    use printqueue::store::SegmentPolicy;
    let (Some(src), Some(dst)) = (args.positional.first(), args.positional.get(1)) else {
        usage()
    };
    let src = PathBuf::from(src);
    let dst = PathBuf::from(dst);
    let format = parse_format_flag(args, &dst);
    let archives = match printqueue::store::read_archives(&src) {
        Ok(a) => a,
        Err(err) => {
            eprintln!("failed to read {}: {err}", src.display());
            exit(1)
        }
    };
    if let Err(err) =
        printqueue::store::write_archives(&dst, &archives, format, SegmentPolicy::default())
    {
        eprintln!("failed to write {}: {err}", dst.display());
        exit(1);
    }
    let checkpoints: usize = archives.iter().map(|a| a.checkpoints.len()).sum();
    let bytes = |p: &std::path::Path| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
    println!(
        "converted {} checkpoints across {} port(s): {} ({} B) -> {} ({} B)",
        checkpoints,
        archives.len(),
        src.display(),
        bytes(&src),
        dst.display(),
        bytes(&dst)
    );
}

fn cmd_case_study(args: &Args) {
    let duration_ms: u64 = args.get("duration-ms", 100);
    let seed: u64 = args.get("seed", 1);
    let cs = scenario::case_study_fig16(duration_ms.millis(), seed);
    let tw = TimeWindowConfig::WS_DM;
    let mut config = PrintQueueConfig::single_port(tw, 200);
    config.control.poll_period = 2u64.millis();
    let mut pq = PrintQueue::new(config);
    let mut sink = TelemetrySink::new();
    let mut sw_config = SwitchConfig::single_port(10.0, 40_000);
    sw_config.ports[0].max_depth_cells = 40_000;
    let mut sw = Switch::new(sw_config);
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq, &mut sink];
        sw.run(cs.trace.arrivals.iter().copied(), &mut hooks, 2u64.millis());
    }
    let oracle = GroundTruth::new(&sink.records, 80);
    let Some(victim) = oracle
        .records()
        .iter()
        .filter(|r| r.flow == cs.roles.new_tcp)
        .max_by_key(|r| r.meta.deq_timedelta)
        .copied()
    else {
        eprintln!(
            "case study produced no packets for the new TCP flow — try a longer \
             --duration-ms or a different --seed"
        );
        exit(1);
    };
    println!(
        "victim (new TCP flow) waited {:.2} ms behind a queue the burst built",
        f64::from(victim.meta.deq_timedelta) / 1e6
    );
    let label = |flow: FlowId| -> &str {
        if flow == cs.roles.burst {
            "burst"
        } else if flow == cs.roles.background {
            "background"
        } else {
            "new TCP"
        }
    };
    let report = oracle.report(&victim);
    let show = |name: &str, counts: &std::collections::HashMap<FlowId, u64>| {
        let total: u64 = counts.values().sum();
        print!("{name:>9}:");
        let mut entries: Vec<_> = counts.iter().collect();
        entries.sort_by(|a, b| b.1.cmp(a.1));
        for (flow, n) in entries {
            print!(
                " {}={n} ({:.0}%)",
                label(*flow),
                *n as f64 / total as f64 * 100.0
            );
        }
        println!();
    };
    show("direct", &report.direct);
    show("indirect", &report.indirect);
    let Some(qm) = pq.analysis().query_queue_monitor(0, victim.deq_timestamp()) else {
        eprintln!(
            "no queue-monitor checkpoint near the victim's dequeue — the control \
             plane stored nothing (shorter poll period or longer run needed)"
        );
        exit(1);
    };
    if qm.degraded {
        eprintln!(
            "warning: queue-monitor answer is degraded (snapshot {:.2} ms away from \
             the victim, or inside a coverage gap)",
            qm.staleness as f64 / 1e6
        );
    }
    show("original", &qm.culprit_counts());
    println!(
        "\nonly the original-culprit view (queue monitor) implicates the burst,\n\
         which left the network ~{} ms before the victim arrived",
        (victim.meta.enq_timestamp.saturating_sub(cs.burst_start)) / 1_000_000
    );
}
