//! Shared query building and result rendering for `pqsim`.
//!
//! Three paths produce diagnosis answers — `pqsim query` against live
//! register state, `pqsim replay-query` against an archive, and
//! `pqsim query --remote` against a running [`serve`](pq_serve) daemon —
//! and the acceptance bar for the service is that all three print
//! **byte-identical** output for the same data. That only holds if there
//! is exactly one formatter, so it lives here and every path calls it.
//!
//! Two renderings exist: the human text format (unchanged from the
//! original `replay-query` output) and a `--json` rendering whose field
//! order and float formatting are deterministic (flows in ranked order,
//! totals summed in that same order).

use pq_core::control::CoverageGap;
use pq_core::snapshot::FlowEstimates;
use pq_packet::FlowId;
use std::fmt::Write as _;

/// Which query a `pqsim query` invocation is asking for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// A §6.3 time-window query over live register state.
    TimeWindows,
    /// A §5 queue-monitor query (original culprits at an instant).
    Monitor,
    /// A time-window query replayed from a `.pqa` archive.
    Replay,
}

/// One fully-specified query, independent of where it will execute.
#[derive(Debug, Clone, Copy)]
pub struct QuerySpec {
    /// Egress port.
    pub port: u16,
    /// Interval start (ns). For monitor queries, the queried instant.
    pub from: u64,
    /// Interval end (ns); unused by monitor queries.
    pub to: u64,
    /// Per-packet transmission delay `d` for replay coefficients.
    pub d: u64,
    /// Which query to run.
    pub kind: QueryKind,
}

impl QuerySpec {
    /// The wire request this spec corresponds to.
    pub fn to_request(self) -> pq_serve::Request {
        match self.kind {
            QueryKind::TimeWindows => pq_serve::Request::TimeWindows {
                port: self.port,
                from: self.from,
                to: self.to,
            },
            QueryKind::Monitor => pq_serve::Request::QueueMonitor {
                port: self.port,
                at: self.from,
            },
            QueryKind::Replay => pq_serve::Request::Replay {
                port: self.port,
                from: self.from,
                to: self.to,
                d: self.d,
            },
        }
    }
}

/// The standard answer header: `query [from, to] over N checkpoints`.
pub fn interval_header(from: u64, to: u64, checkpoints: u64) -> String {
    format!("query [{from}, {to}] over {checkpoints} checkpoints")
}

/// Render a time-window answer in the standard text format (one string,
/// trailing newline included) — shared verbatim by local, replay, and
/// remote query paths.
pub fn result_text(
    header: &str,
    est: &FlowEstimates,
    gaps: &[CoverageGap],
    degraded: bool,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{header}: {} flows, ~{:.0} packets",
        est.counts.len(),
        est.total()
    );
    if degraded {
        let _ = writeln!(
            out,
            "degraded: {} coverage gap(s) overlap the interval:",
            gaps.len()
        );
        for g in gaps {
            let _ = writeln!(out, "  gap [{}, {}]", g.from, g.to);
        }
    }
    for (flow, n) in est.ranked().into_iter().take(10) {
        let _ = writeln!(out, "  {n:10.1}  {flow}");
    }
    out
}

/// Render a time-window answer as deterministic JSON: flows in ranked
/// order, the total summed in that same order (so it is reproducible
/// across runs, unlike a hash-map-order sum).
pub fn result_json(
    spec: &QuerySpec,
    checkpoints: u64,
    est: &FlowEstimates,
    gaps: &[CoverageGap],
    degraded: bool,
) -> String {
    let ranked = est.ranked();
    let total: f64 = ranked.iter().map(|(_, n)| n).sum();
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"query\":{{\"kind\":\"{}\",\"port\":{},\"from\":{},\"to\":{},\"checkpoints\":{}}}",
        match spec.kind {
            QueryKind::TimeWindows => "time_windows",
            QueryKind::Monitor => "monitor",
            QueryKind::Replay => "replay",
        },
        spec.port,
        spec.from,
        spec.to,
        checkpoints
    );
    let _ = write!(out, ",\"degraded\":{degraded},\"gaps\":[");
    push_gaps(&mut out, gaps);
    let _ = write!(out, "],\"total_packets\":{},\"flows\":[", json_f64(total));
    for (i, (flow, n)) in ranked.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"flow\":{},\"packets\":{}}}", flow.0, json_f64(*n));
    }
    out.push_str("]}");
    out
}

/// Render a queue-monitor answer in the standard text format.
pub fn monitor_text(
    at: u64,
    frozen_at: u64,
    staleness: u64,
    counts: &[(FlowId, u64)],
    gaps: &[CoverageGap],
    degraded: bool,
) -> String {
    let total: u64 = counts.iter().map(|(_, n)| n).sum();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "queue monitor at {at}: snapshot frozen at {frozen_at} (staleness {staleness} ns), \
         {} culprit flow(s), {total} appearances",
        counts.len()
    );
    if degraded {
        let _ = writeln!(
            out,
            "degraded: {} coverage gap(s) contain the instant:",
            gaps.len()
        );
        for g in gaps {
            let _ = writeln!(out, "  gap [{}, {}]", g.from, g.to);
        }
    }
    for (flow, n) in counts.iter().take(10) {
        let _ = writeln!(out, "  {n:10}  {flow}");
    }
    out
}

/// Render a queue-monitor answer as deterministic JSON.
pub fn monitor_json(
    spec: &QuerySpec,
    frozen_at: u64,
    staleness: u64,
    counts: &[(FlowId, u64)],
    gaps: &[CoverageGap],
    degraded: bool,
) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"query\":{{\"kind\":\"monitor\",\"port\":{},\"at\":{}}},\"frozen_at\":{frozen_at},\
         \"staleness\":{staleness},\"degraded\":{degraded},\"gaps\":[",
        spec.port, spec.from
    );
    push_gaps(&mut out, gaps);
    out.push_str("],\"culprits\":[");
    for (i, (flow, n)) in counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"flow\":{},\"appearances\":{n}}}", flow.0);
    }
    out.push_str("]}");
    out
}

fn push_gaps(out: &mut String, gaps: &[CoverageGap]) {
    for (i, g) in gaps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"from\":{},\"to\":{}}}", g.from, g.to);
    }
}

/// `f64` as JSON: finite values print via Rust's shortest-round-trip
/// formatter (deterministic); non-finite values become `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(pairs: &[(u32, f64)]) -> FlowEstimates {
        let mut e = FlowEstimates::default();
        for &(f, n) in pairs {
            e.counts.insert(FlowId(f), n);
        }
        e
    }

    #[test]
    fn text_matches_historical_format() {
        let text = result_text(
            &interval_header(5, 10, 3),
            &est(&[(1, 12.5), (2, 3.0)]),
            &[CoverageGap { from: 6, to: 7 }],
            true,
        );
        assert_eq!(
            text,
            "query [5, 10] over 3 checkpoints: 2 flows, ~16 packets\n\
             degraded: 1 coverage gap(s) overlap the interval:\n\
             \x20 gap [6, 7]\n\
             \x20       12.5  flow#1\n\
             \x20        3.0  flow#2\n"
        );
    }

    #[test]
    fn json_is_ranked_and_deterministic() {
        let spec = QuerySpec {
            port: 0,
            from: 5,
            to: 10,
            d: 110,
            kind: QueryKind::Replay,
        };
        let a = result_json(&spec, 3, &est(&[(2, 3.0), (1, 12.5)]), &[], false);
        let b = result_json(&spec, 3, &est(&[(1, 12.5), (2, 3.0)]), &[], false);
        assert_eq!(a, b, "insertion order must not matter");
        assert!(a.contains("\"flows\":[{\"flow\":1,\"packets\":12.5},{\"flow\":2,\"packets\":3}]"));
        assert!(a.starts_with(
            "{\"query\":{\"kind\":\"replay\",\"port\":0,\"from\":5,\"to\":10,\"checkpoints\":3}"
        ));
    }

    #[test]
    fn monitor_renders_both_ways() {
        let spec = QuerySpec {
            port: 0,
            from: 42,
            to: 42,
            d: 110,
            kind: QueryKind::Monitor,
        };
        let counts = vec![(FlowId(7), 3u64), (FlowId(1), 1)];
        let text = monitor_text(42, 40, 2, &counts, &[], false);
        assert!(text.starts_with("queue monitor at 42: snapshot frozen at 40 (staleness 2 ns)"));
        let json = monitor_json(&spec, 40, 2, &counts, &[], false);
        assert!(json.contains("\"culprits\":[{\"flow\":7,\"appearances\":3}"));
    }
}
