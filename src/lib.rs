//! # printqueue — a Rust reproduction of PrintQueue (SIGCOMM 2022)
//!
//! PrintQueue diagnoses per-packet queueing delay inside a switch by
//! answering: *which flows caused this packet to wait?* It classifies
//! culprits into three groups (§2 of the paper) — **direct** (dequeued
//! during the victim's queueing), **indirect** (the rest of the congestion
//! regime), and **original** (the packets that built the queue to its
//! current level) — and tracks all three in the data plane with two novel
//! structures: hierarchical **time windows** and the **queue monitor**.
//!
//! The original system runs on an Intel Tofino ASIC; this reproduction
//! implements the complete stack in Rust on a discrete-event switch
//! simulator (see `DESIGN.md` for the substitution rationale):
//!
//! * [`packet`] — wire formats, 5-tuple flow keys, telemetry ground truth;
//! * [`switch`] — the programmable-switch substrate: queues, schedulers,
//!   traffic manager, register arrays, hooks;
//! * [`trace`] — the paper's workloads (UW / WS / DM) and scenarios
//!   (microburst, incast, the §7.2 case study);
//! * [`core`] — PrintQueue itself: Algorithms 1–3, the coefficient theory,
//!   the queue monitor, the control-plane analysis program, culprit ground
//!   truth and accuracy metrics;
//! * [`baselines`] — HashPipe, FlowRadar, and linear per-packet storage,
//!   the comparison points of the paper's evaluation;
//! * [`store`] — the segmented, indexed, crash-tolerant `.pqa` binary
//!   store for checkpoint archives, with streaming spill from the
//!   control plane and time-range-pruned offline queries;
//! * [`telemetry`] — the observability plane: a lock-free metrics
//!   registry (counters, gauges, log2 histograms), sim-clock span
//!   tracing, and Prometheus / Chrome-trace exporters shared by the
//!   switch, control plane, and store;
//! * [`serve`] — the concurrent diagnosis-query service: a TCP daemon
//!   and client speaking a small versioned binary protocol over live
//!   register state and `.pqa` archives, with a shared LRU decode cache
//!   and explicit load shedding ([`queryfmt`] renders answers
//!   identically for local and remote queries);
//! * [`router`] — the scale-out tier in front of N serve daemons:
//!   rendezvous-sharded, replicated scatter-gather with transparent
//!   failover, quarantine-with-probe, and bit-identical single-shard
//!   answers (same wire protocol, so clients point at it unchanged);
//! * [`stream`] — standing continuous queries: a typed query language
//!   (predicate / window / top-k / emit clauses), tumbling and sliding
//!   window operators with watermark-driven deterministic closes under
//!   out-of-order arrival, and bounded per-subscription state via a
//!   space-saving top-k summary with explicit eviction accounting. The
//!   daemon evaluates subscriptions on a dedicated thread and pushes
//!   `StandingQueryResult` frames; the router fans a standing query to
//!   every shard and merges per-window partials associatively;
//! * [`rtt`] — passive RTT diagnosis: seq-match and QUIC spin-bit
//!   detectors over a budgeted per-flow table of log2 RTT histograms,
//!   canonical mergeable reports that spill into `.pqa` archives and
//!   answer `Rtt` wire queries bit-identically through the router, and
//!   a QUIC-like ground-truth workload generator.
//!
//! ## Quickstart
//!
//! ```
//! use printqueue::prelude::*;
//!
//! // A microburst: 40 flows × 25 packets converging on one 10 Gbps port.
//! let trace = printqueue::trace::scenario::microburst(0, 50_000, 40, 25, 200, 0, 7);
//!
//! // Attach PrintQueue (paper's WS/DM parameters) and run the switch.
//! let tw = TimeWindowConfig::new(6, 1, 10, 3);
//! let mut pq = PrintQueue::new(PrintQueueConfig::single_port(tw, 160));
//! let mut sink = TelemetrySink::new();
//! let mut sw = Switch::new(SwitchConfig::single_port(10.0, 32_768));
//! {
//!     let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq, &mut sink];
//!     sw.run(trace.arrivals.iter().copied(), &mut hooks, tw.set_period());
//! }
//!
//! // Diagnose the most-delayed packet.
//! let victim = sink.records.iter().max_by_key(|r| r.meta.deq_timedelta).unwrap();
//! let est = pq.analysis().query_time_windows(
//!     0,
//!     QueryInterval::new(victim.meta.enq_timestamp, victim.deq_timestamp()),
//! );
//! assert!(!est.counts.is_empty(), "culprits found");
//! ```

pub use pq_baselines as baselines;
pub use pq_core as core;
pub use pq_packet as packet;
pub use pq_prof as prof;
pub use pq_router as router;
pub use pq_rtt as rtt;
pub use pq_serve as serve;
pub use pq_store as store;
pub use pq_stream as stream;
pub use pq_switch as switch;
pub use pq_telemetry as telemetry;
pub use pq_trace as trace;

pub mod queryfmt;

/// The names almost every user of the library needs.
pub mod prelude {
    pub use pq_core::control::{AnalysisProgram, CoverageGap, QueryResult, QueueMonitorAnswer};
    pub use pq_core::culprits::GroundTruth;
    pub use pq_core::faults::{FaultConfig, FaultProfile, LatencyModel, RetryPolicy};
    pub use pq_core::metrics::{precision_recall, PrecisionRecall};
    pub use pq_core::params::TimeWindowConfig;
    pub use pq_core::printqueue::{DataPlaneTrigger, PrintQueue, PrintQueueConfig};
    pub use pq_core::snapshot::QueryInterval;
    pub use pq_packet::{FlowId, FlowKey, Nanos, NanosExt, SimPacket};
    pub use pq_switch::{Arrival, QueueHooks, Switch, SwitchConfig, TelemetrySink};
    pub use pq_trace::workload::{Workload, WorkloadKind};
}
