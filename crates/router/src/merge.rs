//! Scatter-gather answer merging.
//!
//! The router reuses the associative-rollup idiom the fleet metrics
//! path proved out: each shard's partial answer is folded into one
//! response where every field has a merge that cannot depend on
//! arrival order — gaps are unioned then canonicalized, degraded flags
//! are OR-ed, per-flow estimates are summed (epoch slices are
//! disjoint), and the checkpoint count takes the max (replicas of the
//! same data must not double-count).
//!
//! The single-partial case — always, under the default port-only
//! sharding — passes the backend's answer through **unchanged**, gap
//! list and all, so a routed answer is bit-identical to what the
//! backend itself would have sent.

use pq_core::control::CoverageGap;
use pq_serve::RemoteResult;

/// Canonicalize a gap list: sort by `(from, to)` and coalesce every
/// overlapping or touching pair (`next.from <= cur.to + 1`).
///
/// Union-then-canonicalize makes the merge associative *and*
/// commutative: any grouping or ordering of partials unions to the
/// same set of covered instants, and canonicalization maps equal sets
/// to equal lists. The property tests in `tests/properties.rs` pin
/// this down.
pub fn normalize_gaps(mut gaps: Vec<CoverageGap>) -> Vec<CoverageGap> {
    gaps.sort_by_key(|g| (g.from, g.to));
    let mut out: Vec<CoverageGap> = Vec::with_capacity(gaps.len());
    for g in gaps {
        if let Some(last) = out.last_mut() {
            if g.from <= last.to.saturating_add(1) {
                last.to = last.to.max(g.to);
                continue;
            }
        }
        out.push(g);
    }
    out
}

/// Fold per-shard partial answers into one response.
///
/// Returns `None` for an empty input (the router never produces that:
/// an unanswerable shard becomes an error, not a missing partial). A
/// single partial is returned untouched — the bit-identity fast path.
pub fn merge_results(partials: Vec<RemoteResult>) -> Option<RemoteResult> {
    let mut it = partials.into_iter();
    let first = it.next()?;
    let mut rest = it.peekable();
    if rest.peek().is_none() {
        return Some(first);
    }
    let mut estimates = first.estimates;
    let mut gaps = first.gaps;
    let mut degraded = first.degraded;
    let mut checkpoints = first.checkpoints;
    for p in rest {
        estimates.merge(&p.estimates);
        gaps.extend(p.gaps);
        degraded |= p.degraded;
        // Replicated slices of one archive report the same store; max,
        // not sum, keeps the header honest.
        checkpoints = checkpoints.max(p.checkpoints);
    }
    Some(RemoteResult {
        estimates,
        gaps: normalize_gaps(gaps),
        degraded,
        checkpoints,
        // A merged answer spans backends; the router's own header echo
        // carries the caller's context instead.
        trace: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_core::snapshot::FlowEstimates;
    use pq_packet::FlowId;

    fn gap(from: u64, to: u64) -> CoverageGap {
        CoverageGap { from, to }
    }

    #[test]
    fn touching_and_overlapping_gaps_coalesce() {
        let got = normalize_gaps(vec![gap(10, 20), gap(21, 30), gap(5, 12), gap(50, 60)]);
        assert_eq!(got, vec![gap(5, 30), gap(50, 60)]);
    }

    #[test]
    fn single_partial_passes_through_unnormalized() {
        // A lone backend's gap list may be unsorted/overlapping; the
        // router must not editorialize it, or bit-identity dies.
        let raw = vec![gap(30, 40), gap(10, 35)];
        let partial = RemoteResult {
            estimates: FlowEstimates::default(),
            gaps: raw.clone(),
            degraded: true,
            checkpoints: 7,
            trace: None,
        };
        let merged = merge_results(vec![partial]).unwrap();
        assert_eq!(merged.gaps, raw);
        assert_eq!(merged.checkpoints, 7);
    }

    #[test]
    fn multi_partial_merge_sums_flows_and_maxes_checkpoints() {
        let mut a = FlowEstimates::default();
        a.counts.insert(FlowId(1), 2.0);
        a.counts.insert(FlowId(2), 1.0);
        let mut b = FlowEstimates::default();
        b.counts.insert(FlowId(2), 3.5);
        let merged = merge_results(vec![
            RemoteResult {
                estimates: a,
                gaps: vec![gap(0, 5)],
                degraded: false,
                checkpoints: 4,
                trace: None,
            },
            RemoteResult {
                estimates: b,
                gaps: vec![gap(6, 9)],
                degraded: true,
                checkpoints: 9,
                trace: None,
            },
        ])
        .unwrap();
        assert_eq!(merged.estimates.counts[&FlowId(1)], 2.0);
        assert_eq!(merged.estimates.counts[&FlowId(2)], 4.5);
        assert_eq!(merged.gaps, vec![gap(0, 9)]);
        assert!(merged.degraded);
        assert_eq!(merged.checkpoints, 9);
    }

    #[test]
    fn empty_input_is_none() {
        assert!(merge_results(Vec::new()).is_none());
    }
}
