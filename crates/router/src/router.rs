//! The scatter-gather router daemon.
//!
//! A thin tier speaking the same wire protocol as `pq-serve`, so every
//! existing client — `pqsim query --remote`, `pqsim watch`, the bench
//! harness — can point at a router unchanged. Per query the router:
//!
//! 1. splits the interval into epoch slices ([`crate::shard::epochs`];
//!    one slice under the default port-only sharding),
//! 2. ranks each slice's owners by rendezvous hashing and tries them
//!    **in order** — healthy owners first, quarantined ones as a last
//!    resort. Sequential per-shard failover (not hedged fan-out) is
//!    deliberate: hedging would burn `replication`× backend capacity
//!    per query and flatten aggregate throughput scaling,
//! 3. fails over transparently on transient errors (timeout, reset,
//!    `Busy` past the retry budget, a backend answering `ShuttingDown`)
//!    and quarantines a backend after repeated failures; a probe loop
//!    readmits it once `HealthReq` passes again,
//! 4. merges partials with the order-independent rollup in
//!    [`crate::merge`] — a single-owner answer passes through
//!    bit-identical to the backend's own.
//!
//! Authoritative errors (unknown port, no archive, no data) are *not*
//! failed over: every replica would answer the same, so the first
//! answer is forwarded as-is.

use crate::merge::{merge_results, normalize_gaps};
use crate::shard::{epoch_of, epochs, rendezvous_rank, BackendSpec, EpochSlice};
use pq_core::control::CoverageGap;
use pq_core::snapshot::QueryInterval;
use pq_packet::FlowId;
use pq_rtt::RttReport;
use pq_serve::wire::{
    self, chunk_counts, chunk_flows, chunk_gaps, metrics_update_frames, snapshot_to_samples,
    ErrorCode, Frame, HealthInfo, Request, ShardMap, ShardMapEntry, StreamResult, WireError,
    ENTRIES_PER_FRAME, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use pq_serve::{Client, ClientError, RetryPolicy};
use pq_stream::{DepthAgg, Emit, RttAgg, Target, TopKSummary};
use pq_telemetry::{
    names, new_trace_id, provenance, to_prometheus, ActiveTrace, Counter, Gauge, Histogram,
    Telemetry, Trace, TraceClock, TraceContext,
};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::thread;
use std::time::{Duration, Instant};

/// Tuning knobs for the router tier. `pqsim router` exposes each as a
/// flag.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Owners per `(port, epoch)` shard. 2 tolerates any single backend
    /// loss with zero lost answers.
    pub replication: u32,
    /// Time-axis shard width in nanoseconds; 0 (the default) shards by
    /// port only, which keeps every answer on the single-partial
    /// bit-identity fast path.
    pub epoch_ns: u64,
    /// Bound on establishing a backend connection.
    pub connect_timeout: Duration,
    /// Bound on every backend read/write; a wedged backend surfaces as
    /// a transient failure instead of hanging the query.
    pub io_timeout: Duration,
    /// Busy-retry policy applied per sub-query (honors the backend's
    /// `retry_after` hint, jittered and capped).
    pub retry: RetryPolicy,
    /// Consecutive sub-query failures before a backend is quarantined.
    pub quarantine_after: u32,
    /// How often the probe loop health-checks quarantined backends.
    pub probe_interval: Duration,
    /// Client connections beyond this are refused with `Busy`.
    pub max_conns: usize,
    /// Backoff hint carried in the router's own `Busy` frames.
    pub retry_after_ms: u32,
    /// Idle pooled connections kept per backend.
    pub pool_per_backend: usize,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            replication: 2,
            epoch_ns: 0,
            connect_timeout: Duration::from_millis(250),
            io_timeout: Duration::from_secs(2),
            retry: RetryPolicy::default(),
            quarantine_after: 2,
            probe_interval: Duration::from_millis(100),
            max_conns: 64,
            retry_after_ms: 50,
            pool_per_backend: 8,
        }
    }
}

/// Pre-resolved `pq_router_*` registry handles.
struct Instruments {
    req_time_windows: Counter,
    req_queue_monitor: Counter,
    req_replay: Counter,
    req_rtt: Counter,
    req_standing: Counter,
    rtt_merges: Counter,
    errors: Counter,
    fanout: Histogram,
    failovers: Counter,
    retries: Counter,
    quarantines: Counter,
    readmissions: Counter,
    quarantined: Gauge,
    shard_unavailable: Counter,
    plane: Telemetry,
}

impl Instruments {
    fn resolve(plane: &Telemetry) -> Instruments {
        let reg = plane.registry();
        let req = |kind| reg.counter(names::ROUTER_REQUESTS, &[("kind", kind)]);
        Instruments {
            req_time_windows: req("time_windows"),
            req_queue_monitor: req("queue_monitor"),
            req_replay: req("replay"),
            req_rtt: req("rtt"),
            req_standing: req("standing"),
            rtt_merges: reg.counter(names::RTT_MERGES, &[]),
            errors: reg.counter(names::ROUTER_ERRORS, &[]),
            fanout: reg.histogram(names::ROUTER_FANOUT, &[]),
            failovers: reg.counter(names::ROUTER_FAILOVERS, &[]),
            retries: reg.counter(names::ROUTER_RETRIES, &[]),
            quarantines: reg.counter(names::ROUTER_QUARANTINES, &[]),
            readmissions: reg.counter(names::ROUTER_READMISSIONS, &[]),
            quarantined: reg.gauge(names::ROUTER_QUARANTINED, &[]),
            shard_unavailable: reg.counter(names::ROUTER_SHARD_UNAVAILABLE, &[]),
            plane: plane.clone(),
        }
    }

    fn completed(&self, kind: &str) {
        match kind {
            "time_windows" => self.req_time_windows.inc(),
            "queue_monitor" => self.req_queue_monitor.inc(),
            "rtt" => self.req_rtt.inc(),
            _ => self.req_replay.inc(),
        }
    }
}

/// One routed backend plus its failover state.
struct Backend {
    spec: BackendSpec,
    /// Consecutive transient sub-query failures; reset by any success
    /// or an authoritative answer.
    failures: AtomicU32,
    quarantined: AtomicBool,
    /// Idle pooled client connections.
    pool: Mutex<Vec<Client>>,
    /// `pq_router_backend_ns{backend=<name>}`.
    latency: Histogram,
}

/// Per-client-connection state (same write-atomicity contract as the
/// serve daemon: streamed responses never interleave).
struct Conn {
    stream: TcpStream,
    write: Mutex<()>,
}

impl Conn {
    fn send(&self, frames: &[Frame]) -> io::Result<()> {
        let mut buf = Vec::with_capacity(64);
        for f in frames {
            let body = wire::encode_body(f);
            buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
            buf.extend_from_slice(&body);
        }
        let _guard = self.write.lock().unwrap();
        use io::Write as _;
        (&self.stream).write_all(&buf)
    }
}

/// Cancel bookkeeping for a standing subscription whose fan-in already
/// completed (the merged results were emitted at registration; only the
/// final `last` frame remains owed).
struct StandingEntry {
    conn: Weak<Conn>,
    id: u64,
    seq: u64,
    watermark: u64,
}

struct Shared {
    config: RouterConfig,
    backends: Vec<Backend>,
    /// Bumped on every quarantine/readmission; carried in `ShardMapAck`
    /// so watchers can cheaply detect topology churn.
    generation: AtomicU64,
    shutdown: AtomicBool,
    active_conns: AtomicUsize,
    conns: Mutex<Vec<Weak<Conn>>>,
    /// Open routed standing subscriptions awaiting cancel.
    standing: Mutex<Vec<StandingEntry>>,
    instruments: Instruments,
    started: Instant,
    /// Unix-epoch-anchored span clock, comparable across processes so a
    /// stitched timeline lines router spans up with backend spans.
    trace_clock: TraceClock,
}

/// One backend's contribution to a routed standing query: its closed
/// windows keyed `(port, from, to)` and its final watermark.
#[derive(Default)]
struct StandingPartial {
    windows: BTreeMap<(u16, u64, u64), StreamResult>,
    watermark: u64,
    /// The backend failed mid-stream; its windows may be missing, so
    /// every merged window it should have contributed to is degraded.
    dead: bool,
}

/// Transient failures fail over to a replica; authoritative ones do not
/// (every replica holds the same data and would answer identically).
fn transient(err: &ClientError) -> bool {
    match err {
        ClientError::Io(_)
        | ClientError::Wire(_)
        | ClientError::Protocol(_)
        | ClientError::Busy { .. } => true,
        ClientError::Remote { code, .. } => {
            matches!(code, ErrorCode::Io | ErrorCode::ShuttingDown)
        }
    }
}

/// Render a terminal sub-query failure for the caller. Authoritative
/// remote errors forward code/gaps/message untouched (bit-identical to
/// the backend's own frame); transport-level exhaustion becomes a typed
/// `Io` error whose gap summary covers the whole unanswered slice —
/// the same honesty contract the serve daemon keeps.
fn error_frame(id: u64, slice: &EpochSlice, err: ClientError) -> Frame {
    match err {
        ClientError::Remote {
            code,
            message,
            gaps,
        } => Frame::Error {
            id,
            code,
            gaps,
            message,
        },
        other => {
            let interval = QueryInterval::new(slice.from, slice.to);
            Frame::Error {
                id,
                code: ErrorCode::Io,
                gaps: vec![CoverageGap {
                    from: interval.from,
                    to: interval.to,
                }],
                message: format!("shard unavailable: {other}"),
            }
        }
    }
}

impl Shared {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn refresh_quarantined_gauge(&self) {
        let n = self
            .backends
            .iter()
            .filter(|b| b.quarantined.load(Ordering::SeqCst))
            .count();
        self.instruments.quarantined.set(n as u64);
    }

    /// Shard owners for `(port, epoch)`, healthy first (stable within
    /// each class, so rendezvous order still decides).
    fn owners(&self, port: u16, epoch: u64) -> Vec<usize> {
        let ranked = rendezvous_rank(&self.backends_specs(), port, epoch);
        let r = (self.config.replication.max(1) as usize).min(self.backends.len());
        let mut owners: Vec<usize> = ranked.into_iter().take(r).collect();
        owners.sort_by_key(|&i| self.backends[i].quarantined.load(Ordering::SeqCst));
        owners
    }

    fn backends_specs(&self) -> Vec<BackendSpec> {
        self.backends.iter().map(|b| b.spec.clone()).collect()
    }

    /// Pop a pooled connection or dial a fresh one. The bool says which
    /// (a stale pooled socket earns one same-backend retry).
    fn checkout(&self, backend: &Backend) -> Result<(Client, bool), ClientError> {
        if let Some(client) = backend.pool.lock().unwrap().pop() {
            return Ok((client, true));
        }
        let addr: SocketAddr = backend.spec.addr.to_socket_addrs()?.next().ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                format!(
                    "backend address {:?} resolves to nothing",
                    backend.spec.addr
                ),
            ))
        })?;
        let client =
            Client::connect_timeout(&addr, self.config.connect_timeout, self.config.io_timeout)?;
        Ok((client, false))
    }

    fn checkin(&self, backend: &Backend, client: Client) {
        let mut pool = backend.pool.lock().unwrap();
        if pool.len() < self.config.pool_per_backend {
            pool.push(client);
        }
    }

    fn note_failure(&self, bi: usize) {
        let backend = &self.backends[bi];
        let failures = backend.failures.fetch_add(1, Ordering::SeqCst) + 1;
        if failures >= self.config.quarantine_after
            && !backend.quarantined.swap(true, Ordering::SeqCst)
        {
            self.instruments.quarantines.inc();
            self.refresh_quarantined_gauge();
            self.generation.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn note_success(&self, bi: usize) {
        self.backends[bi].failures.store(0, Ordering::SeqCst);
    }

    /// One sub-query against one backend, with the stale-pooled-socket
    /// retry and per-backend latency accounting.
    fn sub_call<T>(
        &self,
        bi: usize,
        mut call: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let backend = &self.backends[bi];
        let started = Instant::now();
        let mut retried_stale = false;
        let out = loop {
            let (mut client, reused) = match self.checkout(backend) {
                Ok(c) => c,
                Err(e) => break Err(e),
            };
            match call(&mut client) {
                Ok(v) => {
                    self.checkin(backend, client);
                    break Ok(v);
                }
                Err(e) if reused && transient(&e) && !retried_stale => {
                    // The pooled socket may have died while idle (backend
                    // restart); one fresh dial before blaming the backend.
                    retried_stale = true;
                    self.instruments.retries.inc();
                }
                Err(e) => break Err(e),
            }
        };
        backend
            .latency
            .record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        match &out {
            Ok(_) => self.note_success(bi),
            Err(e) if transient(e) => self.note_failure(bi),
            // Authoritative answers prove the backend alive.
            Err(_) => self.note_success(bi),
        }
        out
    }

    /// Scatter one epoch slice: owners in rendezvous order, failing
    /// over on transient errors, quarantined owners as last resort.
    fn shard_call<T>(
        &self,
        port: u16,
        epoch: u64,
        contacted: &mut BTreeSet<usize>,
        mut call: impl FnMut(&Self, usize) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let owners = self.owners(port, epoch);
        let mut last_err = None;
        for (attempt, &bi) in owners.iter().enumerate() {
            if attempt > 0 {
                self.instruments.failovers.inc();
            }
            contacted.insert(bi);
            match call(self, bi) {
                Ok(v) => return Ok(v),
                Err(e) if transient(&e) => last_err = Some(e),
                Err(e) => return Err(e),
            }
        }
        self.instruments.shard_unavailable.inc();
        Err(last_err.unwrap_or_else(|| ClientError::Protocol("no backends configured".into())))
    }

    /// Start an [`ActiveTrace`] for one routed request when tracing is
    /// enabled: continue the propagated context, or originate a root here
    /// so router-edge queries are traceable too.
    fn start_trace(&self, trace: Option<TraceContext>) -> Option<ActiveTrace> {
        let traces = self.instruments.plane.traces();
        if !traces.is_enabled() {
            return None;
        }
        let ctx = trace.unwrap_or_else(|| {
            let tid = new_trace_id();
            TraceContext::root(tid, traces.should_sample(tid))
        });
        Some(ActiveTrace::new(ctx, "router"))
    }

    /// Close a routed request's `route` span and commit the trace when it
    /// is sampled (originally, or `upgraded` by a Busy shed downstream)
    /// or slow.
    fn finish_trace(
        &self,
        tracer: Option<ActiveTrace>,
        route_span: u64,
        route_start: u64,
        upgraded: bool,
        errored: bool,
    ) {
        let Some(mut t) = tracer else { return };
        let end = self.trace_clock.now_ns();
        let ctx = t.ctx();
        t.record_with_id(
            route_span,
            names::SPAN_ROUTE,
            ctx.parent_span,
            route_start,
            end,
            if errored { "error" } else { "ok" },
        );
        let traces = self.instruments.plane.traces();
        let duration = end.saturating_sub(route_start);
        let slow = traces.is_slow(duration);
        if ctx.sampled || upgraded || slow {
            traces.commit(t.finish(route_span, duration, slow));
        }
    }

    /// Route a time-windows or replay query: slice, scatter, merge.
    fn route_query(&self, id: u64, req: Request, trace: Option<TraceContext>) -> Vec<Frame> {
        let (port, from, to, replay_d) = match req {
            Request::TimeWindows { port, from, to } => (port, from, to, None),
            Request::Replay { port, from, to, d } => (port, from, to, Some(d)),
            Request::QueueMonitor { .. } => unreachable!("monitor has its own path"),
            Request::Rtt { .. } => unreachable!("rtt has its own path"),
        };
        let route_start = self.trace_clock.now_ns();
        let mut tracer = self.start_trace(trace);
        let route_span = tracer.as_mut().map(ActiveTrace::reserve).unwrap_or(0);
        // Backends continue the trace as children of the route span; a
        // backend that sheds with Busy force-samples the retried context,
        // and the flag surfaces back here through the pooled client.
        let child = tracer.as_ref().map(|t| t.ctx().child(route_span));
        let mut upgraded = false;
        let slices = epochs(from, to, self.config.epoch_ns);
        let mut contacted = BTreeSet::new();
        let mut partials = Vec::with_capacity(slices.len());
        let mut failed: Option<(usize, ClientError)> = None;
        for (si, slice) in slices.iter().enumerate() {
            let sub_req = match replay_d {
                None => Request::TimeWindows {
                    port,
                    from: slice.from,
                    to: slice.to,
                },
                Some(d) => Request::Replay {
                    port,
                    from: slice.from,
                    to: slice.to,
                    d,
                },
            };
            let mut attempt = 0u32;
            let got = self.shard_call(port, slice.epoch, &mut contacted, |shared, bi| {
                let attempt_start = shared.trace_clock.now_ns();
                let failed_over = attempt > 0;
                attempt += 1;
                let out = shared.sub_call(bi, |client| {
                    client.set_trace_context(child);
                    let r = client.query_retry(sub_req, &shared.config.retry);
                    if let Some(c) = client.trace_context() {
                        upgraded |= c.sampled;
                    }
                    client.set_trace_context(None);
                    r
                });
                if failed_over {
                    if let Some(t) = tracer.as_mut() {
                        t.record(
                            names::SPAN_FAILOVER,
                            route_span,
                            attempt_start,
                            shared.trace_clock.now_ns(),
                            &shared.backends[bi].spec.name,
                        );
                    }
                }
                out
            });
            match got {
                Ok(partial) => partials.push(partial),
                Err(e) => {
                    failed = Some((si, e));
                    break;
                }
            }
        }
        self.instruments.fanout.record(contacted.len() as u64);
        let frames = match failed {
            Some((si, e)) => {
                self.instruments.errors.inc();
                vec![error_frame(id, &slices[si], e)]
            }
            None => {
                let merge_start = self.trace_clock.now_ns();
                let merged = merge_results(partials).expect("epochs() never returns zero slices");
                if let Some(t) = tracer.as_mut() {
                    t.record(
                        names::SPAN_MERGE,
                        route_span,
                        merge_start,
                        self.trace_clock.now_ns(),
                        &slices.len().to_string(),
                    );
                }
                self.instruments.completed(if replay_d.is_some() {
                    "replay"
                } else {
                    "time_windows"
                });
                result_frames(
                    id,
                    merged.checkpoints,
                    merged.estimates.ranked(),
                    merged.gaps,
                    merged.degraded,
                    trace,
                )
            }
        };
        let errored = matches!(frames.first(), Some(Frame::Error { .. }));
        self.finish_trace(tracer, route_span, route_start, upgraded, errored);
        frames
    }

    /// Route a queue-monitor query: a single instant lives in a single
    /// epoch, so this is pure failover with passthrough.
    fn route_monitor(
        &self,
        id: u64,
        port: u16,
        at: u64,
        trace: Option<TraceContext>,
    ) -> Vec<Frame> {
        let route_start = self.trace_clock.now_ns();
        let mut tracer = self.start_trace(trace);
        let route_span = tracer.as_mut().map(ActiveTrace::reserve).unwrap_or(0);
        let child = tracer.as_ref().map(|t| t.ctx().child(route_span));
        let mut upgraded = false;
        let epoch = epoch_of(at, self.config.epoch_ns);
        let mut contacted = BTreeSet::new();
        let mut attempt = 0u32;
        let got = self.shard_call(port, epoch, &mut contacted, |shared, bi| {
            let attempt_start = shared.trace_clock.now_ns();
            let failed_over = attempt > 0;
            attempt += 1;
            let out = shared.sub_call(bi, |client| {
                client.set_trace_context(child);
                let r = client.queue_monitor_retry(port, at, &shared.config.retry);
                if let Some(c) = client.trace_context() {
                    upgraded |= c.sampled;
                }
                client.set_trace_context(None);
                r
            });
            if failed_over {
                if let Some(t) = tracer.as_mut() {
                    t.record(
                        names::SPAN_FAILOVER,
                        route_span,
                        attempt_start,
                        shared.trace_clock.now_ns(),
                        &shared.backends[bi].spec.name,
                    );
                }
            }
            out
        });
        self.instruments.fanout.record(contacted.len() as u64);
        let frames = match got {
            Ok(mon) => {
                self.instruments.completed("queue_monitor");
                let mut frames = vec![Frame::MonitorHeader {
                    id,
                    degraded: mon.degraded,
                    frozen_at: mon.frozen_at,
                    staleness: mon.staleness,
                    counts: mon.counts.len() as u32,
                    gaps: mon.gaps.len() as u32,
                    trace,
                }];
                frames.extend(chunk_counts(id, &mon.counts));
                frames.extend(chunk_gaps(id, &mon.gaps));
                frames.push(Frame::ResultEnd { id });
                frames
            }
            Err(e) => {
                self.instruments.errors.inc();
                let slice = EpochSlice {
                    epoch,
                    from: at,
                    to: at,
                };
                vec![error_frame(id, &slice, e)]
            }
        };
        let errored = matches!(frames.first(), Some(Frame::Error { .. }));
        self.finish_trace(tracer, route_span, route_start, upgraded, errored);
        frames
    }

    /// Route an RTT query: slice, scatter, merge. Backends are asked for
    /// *untruncated* reports (`max_flows: 0`) so the per-flow cap is
    /// applied exactly once, here, after the merge — otherwise a flow
    /// that is slow in aggregate but below the cut on every individual
    /// shard would vanish from the routed answer. The canonical,
    /// order-independent [`RttReport::merge`] keeps the single-partial
    /// path bit-identical to the backend's own encoding.
    fn route_rtt(
        &self,
        id: u64,
        port: u16,
        from: u64,
        to: u64,
        max_flows: u32,
        trace: Option<TraceContext>,
    ) -> Vec<Frame> {
        let route_start = self.trace_clock.now_ns();
        let mut tracer = self.start_trace(trace);
        let route_span = tracer.as_mut().map(ActiveTrace::reserve).unwrap_or(0);
        let child = tracer.as_ref().map(|t| t.ctx().child(route_span));
        let mut upgraded = false;
        let slices = epochs(from, to, self.config.epoch_ns);
        let mut contacted = BTreeSet::new();
        let mut partials = Vec::with_capacity(slices.len());
        let mut failed: Option<(usize, ClientError)> = None;
        for (si, slice) in slices.iter().enumerate() {
            let (sub_from, sub_to) = (slice.from, slice.to);
            let mut attempt = 0u32;
            let got = self.shard_call(port, slice.epoch, &mut contacted, |shared, bi| {
                let attempt_start = shared.trace_clock.now_ns();
                let failed_over = attempt > 0;
                attempt += 1;
                let out = shared.sub_call(bi, |client| {
                    client.set_trace_context(child);
                    let r = client.rtt_retry(port, sub_from, sub_to, 0, &shared.config.retry);
                    if let Some(c) = client.trace_context() {
                        upgraded |= c.sampled;
                    }
                    client.set_trace_context(None);
                    r
                });
                if failed_over {
                    if let Some(t) = tracer.as_mut() {
                        t.record(
                            names::SPAN_FAILOVER,
                            route_span,
                            attempt_start,
                            shared.trace_clock.now_ns(),
                            &shared.backends[bi].spec.name,
                        );
                    }
                }
                out
            });
            match got {
                Ok(partial) => partials.push(partial),
                Err(e) => {
                    failed = Some((si, e));
                    break;
                }
            }
        }
        self.instruments.fanout.record(contacted.len() as u64);
        let frames = match failed {
            Some((si, e)) => {
                self.instruments.errors.inc();
                vec![error_frame(id, &slices[si], e)]
            }
            None => {
                let merge_start = self.trace_clock.now_ns();
                let mut merged = RttReport::empty(port);
                for p in &partials {
                    merged.merge(&p.report);
                }
                self.instruments.rtt_merges.inc();
                let dropped = merged.truncate_flows(max_flows as usize);
                let degraded = merged.degraded() || dropped > 0;
                if let Some(t) = tracer.as_mut() {
                    t.record(
                        names::SPAN_RTT_MERGE,
                        route_span,
                        merge_start,
                        self.trace_clock.now_ns(),
                        &partials.len().to_string(),
                    );
                }
                self.instruments.completed("rtt");
                wire::rtt_result_frames(id, degraded, &merged.encode(), trace)
            }
        };
        let errored = matches!(frames.first(), Some(Frame::Error { .. }));
        self.finish_trace(tracer, route_span, route_start, upgraded, errored);
        frames
    }

    /// Route a profile dump: fan to **every** live backend in parallel,
    /// decode each dump, and merge. `ProfileReport::merge` is
    /// associative and commutative and `encode` is canonical, so the
    /// routed bytes equal a client-side merge of the per-backend dumps
    /// folded in any order. The router's own profile is deliberately
    /// excluded — ask the router address with `pqsim prof` for fleet
    /// numbers and a backend address for per-process ones; mixing the
    /// two in one report would make the identity above unfalsifiable.
    /// Quarantined backends are skipped, and a reachable backend
    /// failing mid-dump is dropped from the merge; the request errors
    /// only when *no* backend answered.
    fn route_profile_dump(&self, id: u64) -> Vec<Frame> {
        let results: Vec<Result<pq_prof::ProfileReport, ClientError>> = thread::scope(|s| {
            let handles: Vec<_> = (0..self.backends.len())
                .filter(|&bi| !self.backends[bi].quarantined.load(Ordering::SeqCst))
                .map(|bi| s.spawn(move || self.sub_call(bi, |client| client.profile_dump())))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("prof fan thread panicked"))
                .collect()
        });
        self.instruments.fanout.record(results.len() as u64);
        let mut merged = pq_prof::ProfileReport::default();
        let mut answered = 0usize;
        let mut last_err: Option<ClientError> = None;
        for r in results {
            match r {
                Ok(p) => {
                    merged.merge(&p);
                    answered += 1;
                }
                Err(e) => last_err = Some(e),
            }
        }
        if answered == 0 {
            self.instruments.errors.inc();
            let msg = match last_err {
                Some(e) => format!("no backend answered the profile dump: {e}"),
                None => "no live backend to profile".to_string(),
            };
            return vec![protocol_error(id, ErrorCode::Io, &msg)];
        }
        wire::prof_result_frames(id, &merged.encode())
    }

    /// Route a standing query: fan a *stripped* copy (no predicate, no
    /// top-k) to **every** backend, merge each window's partials
    /// associatively, and evaluate the predicate on the merged
    /// aggregate. Stripping is what makes the answer correct — a
    /// shard-local predicate would miss hotspots only the union crosses
    /// the threshold on. And unlike one-shot queries there is no
    /// replica dedupe: live register state is per-daemon, so every
    /// backend is an independent data owner whose partial the merge
    /// needs.
    #[allow(clippy::too_many_arguments)]
    fn route_standing(
        &self,
        conn: &Arc<Conn>,
        id: u64,
        cap: u32,
        max_windows: u32,
        stop_after_seal: bool,
        query: &str,
        trace: Option<TraceContext>,
    ) {
        let parsed = match pq_stream::parse(query) {
            Ok(q) => q,
            Err(e) => {
                let _ = conn.send(&[protocol_error(id, ErrorCode::BadQuery, &e.to_string())]);
                return;
            }
        };
        let cap = cap.clamp(1, ENTRIES_PER_FRAME as u32);
        if conn
            .send(&[Frame::StandingQueryAck {
                id,
                cap,
                query: parsed.to_string(),
                trace,
            }])
            .is_err()
        {
            return;
        }
        self.instruments.req_standing.inc();
        let route_start = self.trace_clock.now_ns();
        let mut tracer = self.start_trace(trace);
        let route_span = tracer.as_mut().map(ActiveTrace::reserve).unwrap_or(0);
        let child = tracer.as_ref().map(|t| t.ctx().child(route_span));
        let mut stripped = parsed.clone();
        stripped.predicate = None;
        stripped.top_k = None;
        let stripped_text = stripped.to_string();
        let stripped_text = stripped_text.as_str();
        let partials: Vec<StandingPartial> = thread::scope(|s| {
            let handles: Vec<_> = (0..self.backends.len())
                .map(|bi| s.spawn(move || self.fan_standing(bi, stripped_text, child)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_default())
                .collect()
        });
        self.instruments.fanout.record(self.backends.len() as u64);
        let merge_start = self.trace_clock.now_ns();
        let any_dead = partials.iter().any(|p| p.dead);
        if any_dead {
            self.instruments.errors.inc();
        }
        // Watermark gate: a merged window may be emitted only once every
        // live backend's watermark has passed its end — the routed
        // mirror of the single-node close rule. Backends seal their
        // bounded source, so the gate is terminal in practice; dead
        // backends are excluded (their windows emit degraded instead of
        // never).
        let gate = partials
            .iter()
            .filter(|p| !p.dead)
            .map(|p| p.watermark)
            .min()
            .unwrap_or(0);
        let summary_cap = match (parsed.emit, parsed.top_k) {
            (Emit::Depth, _) => 1,
            (Emit::Flows, Some(k)) => (k as usize).min(cap as usize).max(1),
            (Emit::Flows, None) => cap as usize,
        };
        let mut keys: Vec<(u16, u64, u64)> = partials
            .iter()
            .filter(|p| !p.dead)
            .flat_map(|p| p.windows.keys().copied())
            .collect();
        keys.sort_by_key(|&(port, from, to)| (to, from, port));
        keys.dedup();
        let mut frames = Vec::new();
        let mut seq = 0u64;
        let mut fired_left = (max_windows > 0).then(|| u64::from(max_windows));
        let mut ended = false;
        for key in keys {
            let (port, from, to) = key;
            if to > gate {
                continue;
            }
            let mut agg = DepthAgg::default();
            let mut rtt = RttAgg::default();
            let mut summary = TopKSummary::new(summary_cap);
            let mut evictions = 0u64;
            let mut evicted_weight = 0.0f64;
            let mut gaps = Vec::new();
            let mut degraded = any_dead;
            let mut forced = false;
            for p in partials.iter().filter(|p| !p.dead) {
                let Some(w) = p.windows.get(&key) else {
                    continue;
                };
                agg.merge(&DepthAgg {
                    max: w.max,
                    min: w.min,
                    sum: w.sum,
                    count: w.count,
                    last_t: w.last_t,
                    last_depth: w.last_depth,
                });
                rtt.merge(&w.rtt);
                let mut part = TopKSummary::new(summary_cap);
                for (f, c) in &w.flows {
                    part.offer(f.0, *c);
                }
                summary.merge(&part);
                evictions += w.evictions + part.evictions;
                evicted_weight += w.evicted_weight + part.evicted_weight;
                degraded |= w.degraded;
                forced |= w.forced;
                gaps.extend(w.gaps.iter().cloned());
            }
            evictions += summary.evictions;
            evicted_weight += summary.evicted_weight;
            if evictions > 0 {
                degraded = true;
            }
            let fired = match &parsed.predicate {
                None => true,
                // Same dispatch the single-node evaluator runs: the
                // predicate reads the merged aggregate for its target.
                Some(p) => {
                    let lhs = match p.target {
                        Target::Depth => agg.stat(p.stat),
                        Target::Rtt => rtt.stat(p.stat),
                    };
                    p.cmp.eval(lhs, p.value)
                }
            };
            let flows: Vec<(FlowId, f64)> = if fired && parsed.emit == Emit::Flows {
                summary
                    .ranked(parsed.top_k)
                    .into_iter()
                    .map(|(f, c)| (FlowId(f), c))
                    .collect()
            } else {
                Vec::new()
            };
            seq += 1;
            let mut result = StreamResult {
                seq,
                watermark_ns: gate,
                port,
                from,
                to,
                fired,
                forced,
                degraded,
                last: false,
                max: agg.max,
                min: agg.min,
                sum: agg.sum,
                count: agg.count,
                last_t: agg.last_t,
                last_depth: agg.last_depth,
                flows,
                evictions,
                evicted_weight,
                gaps: normalize_gaps(gaps),
                rtt,
            };
            if fired {
                if let Some(r) = &mut fired_left {
                    *r -= 1;
                    if *r == 0 {
                        result.last = true;
                        ended = true;
                    }
                }
            }
            frames.push(Frame::StandingQueryResult {
                id,
                result: Box::new(result),
            });
            if ended {
                break;
            }
        }
        if !ended && stop_after_seal {
            seq += 1;
            frames.push(Frame::StandingQueryResult {
                id,
                result: Box::new(standing_progress(id, seq, gate, true).1),
            });
            ended = true;
        }
        if let Some(t) = tracer.as_mut() {
            t.record(
                names::SPAN_MERGE,
                route_span,
                merge_start,
                self.trace_clock.now_ns(),
                &frames.len().to_string(),
            );
        }
        self.finish_trace(tracer, route_span, route_start, false, any_dead);
        if conn.send(&frames).is_err() || ended {
            return;
        }
        // Keep the subscription addressable for a later cancel; dead
        // entries (dropped connections) are purged opportunistically.
        let mut standing = self.standing.lock().unwrap();
        standing.retain(|e| e.conn.strong_count() > 0);
        standing.push(StandingEntry {
            conn: Arc::downgrade(conn),
            id,
            seq,
            watermark: gate,
        });
    }

    /// One backend's leg of a routed standing query: a dedicated
    /// connection (subscriptions are stateful, so the pool is not
    /// used), registered with `stop_after_seal` so the stream ends once
    /// the backend's bounded source is exhausted. The io timeout bounds
    /// every read, so a wedged backend surfaces as a dead partial
    /// instead of hanging the fan-in.
    fn fan_standing(&self, bi: usize, query: &str, trace: Option<TraceContext>) -> StandingPartial {
        let mut partial = StandingPartial::default();
        let backend = &self.backends[bi];
        let run = |partial: &mut StandingPartial| -> Result<(), ClientError> {
            let addr: SocketAddr =
                backend.spec.addr.to_socket_addrs()?.next().ok_or_else(|| {
                    ClientError::Io(io::Error::new(
                        io::ErrorKind::AddrNotAvailable,
                        format!(
                            "backend address {:?} resolves to nothing",
                            backend.spec.addr
                        ),
                    ))
                })?;
            let mut client = Client::connect_timeout(
                &addr,
                self.config.connect_timeout,
                self.config.io_timeout,
            )?;
            client.set_trace_context(trace);
            let ack = client.standing(query, ENTRIES_PER_FRAME as u32, 0, true)?;
            loop {
                let r = client.next_stream_result(ack.sub)?;
                partial.watermark = partial.watermark.max(r.watermark_ns);
                let last = r.last;
                if r.to != 0 {
                    partial.windows.insert((r.port, r.from, r.to), r);
                }
                if last {
                    return Ok(());
                }
            }
        };
        match run(&mut partial) {
            Ok(()) => self.note_success(bi),
            Err(e) => {
                partial.dead = true;
                if transient(&e) {
                    self.note_failure(bi);
                }
            }
        }
        partial
    }

    /// Answer a standing-subscription cancel: emit the final `last`
    /// frame if the subscription is known on this connection.
    fn cancel_standing(&self, conn: &Arc<Conn>, id: u64, sub: u64) {
        let mut standing = self.standing.lock().unwrap();
        let Some(pos) = standing
            .iter()
            .position(|e| e.id == sub && e.conn.upgrade().is_some_and(|c| Arc::ptr_eq(&c, conn)))
        else {
            drop(standing);
            let _ = conn.send(&[protocol_error(
                id,
                ErrorCode::Protocol,
                "unknown standing subscription",
            )]);
            return;
        };
        let entry = standing.remove(pos);
        drop(standing);
        let (sub_id, result) = standing_progress(entry.id, entry.seq + 1, entry.watermark, true);
        let _ = conn.send(&[Frame::StandingQueryResult {
            id: sub_id,
            result: Box::new(result),
        }]);
    }

    /// The router's own health. `workers` is repurposed as the backend
    /// count and `busy_workers` as the quarantined count — the two
    /// numbers an operator watching a router actually needs.
    fn health_info(&self) -> HealthInfo {
        let snap = self.instruments.plane.snapshot();
        let (version, commit) = provenance::build_info(&snap)
            .unwrap_or_else(|| ("unknown".to_string(), "unknown".to_string()));
        let quarantined = self
            .backends
            .iter()
            .filter(|b| b.quarantined.load(Ordering::SeqCst))
            .count();
        HealthInfo {
            uptime_ns: self.now_ns(),
            workers: self.backends.len() as u32,
            busy_workers: quarantined as u32,
            queue_depth: 0,
            queue_cap: 0,
            active_conns: self.active_conns.load(Ordering::SeqCst) as u32,
            max_conns: self.config.max_conns as u32,
            subscribers: 0,
            draining: self.shutdown.load(Ordering::SeqCst),
            version,
            commit,
            shard: "router".to_string(),
        }
    }

    fn shard_map(&self) -> ShardMap {
        ShardMap {
            generation: self.generation.load(Ordering::SeqCst),
            replication: self.config.replication,
            epoch_ns: self.config.epoch_ns,
            backends: self
                .backends
                .iter()
                .map(|b| ShardMapEntry {
                    shard: b.spec.name.clone(),
                    addr: b.spec.addr.clone(),
                    healthy: !b.quarantined.load(Ordering::SeqCst),
                })
                .collect(),
        }
    }
}

/// Assemble a streamed time-window answer (same shape as the serve
/// daemon's, so clients cannot tell a router from a backend).
fn result_frames(
    id: u64,
    checkpoints: u64,
    flows: Vec<(pq_packet::FlowId, f64)>,
    gaps: Vec<CoverageGap>,
    degraded: bool,
    trace: Option<TraceContext>,
) -> Vec<Frame> {
    let mut frames = vec![Frame::ResultHeader {
        id,
        degraded,
        checkpoints,
        flows: flows.len() as u32,
        gaps: gaps.len() as u32,
        trace,
    }];
    frames.extend(chunk_flows(id, &flows));
    frames.extend(chunk_gaps(id, &gaps));
    frames.push(Frame::ResultEnd { id });
    frames
}

/// A window-less progress result (`to == 0`): watermark only, optionally
/// marking the end of the stream. Mirrors the serve daemon's shape.
fn standing_progress(id: u64, seq: u64, watermark: u64, last: bool) -> (u64, StreamResult) {
    (
        id,
        StreamResult {
            seq,
            watermark_ns: watermark,
            port: 0,
            from: 0,
            to: 0,
            fired: false,
            forced: false,
            degraded: false,
            last,
            max: 0,
            min: u64::MAX,
            sum: 0,
            count: 0,
            last_t: 0,
            last_depth: 0,
            flows: Vec::new(),
            evictions: 0,
            evicted_weight: 0.0,
            gaps: Vec::new(),
            rtt: RttAgg::default(),
        },
    )
}

fn protocol_error(id: u64, code: ErrorCode, message: &str) -> Frame {
    Frame::Error {
        id,
        code,
        gaps: Vec::new(),
        message: message.to_string(),
    }
}

/// A bound, not-yet-running router.
pub struct Router {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// A handle to a router running on a background thread.
pub struct RouterHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    join: thread::JoinHandle<io::Result<()>>,
}

impl RouterHandle {
    /// The bound address (useful with `:0` ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the router, blocking until it has exited.
    pub fn shutdown(self) -> io::Result<()> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for conn in self.shared.conns.lock().unwrap().drain(..) {
            if let Some(conn) = conn.upgrade() {
                let _ = conn.stream.shutdown(Shutdown::Both);
            }
        }
        self.join.join().expect("router thread panicked")
    }
}

impl Router {
    /// Bind `addr` in front of `backends`. Fails fast on an empty or
    /// duplicate-named fleet — rendezvous scores hash names, so
    /// duplicates would silently halve the replica set.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        backends: Vec<BackendSpec>,
        config: RouterConfig,
        plane: &Telemetry,
    ) -> io::Result<Router> {
        if backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a router needs at least one backend",
            ));
        }
        let mut names: Vec<&str> = backends.iter().map(|b| b.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != backends.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "backend names must be unique (they are the shard identities)",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let instruments = Instruments::resolve(plane);
        let reg = plane.registry();
        let backends = backends
            .into_iter()
            .map(|spec| Backend {
                latency: reg.histogram(names::ROUTER_BACKEND_NS, &[("backend", &spec.name)]),
                spec,
                failures: AtomicU32::new(0),
                quarantined: AtomicBool::new(false),
                pool: Mutex::new(Vec::new()),
            })
            .collect();
        Ok(Router {
            listener,
            shared: Arc::new(Shared {
                config,
                backends,
                generation: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
                active_conns: AtomicUsize::new(0),
                conns: Mutex::new(Vec::new()),
                standing: Mutex::new(Vec::new()),
                instruments,
                started: Instant::now(),
                trace_clock: TraceClock::new(),
            }),
        })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Run the accept loop on this thread until shutdown.
    pub fn run(self) -> io::Result<()> {
        let shared = self.shared;
        let prober = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("pq-router-probe".into())
                .spawn(move || probe_loop(&shared))?
        };
        while !shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => accept_connection(&shared, stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        let _ = prober.join();
        for conn in shared.conns.lock().unwrap().drain(..) {
            if let Some(conn) = conn.upgrade() {
                let _ = conn.stream.shutdown(Shutdown::Both);
            }
        }
        Ok(())
    }

    /// Run on a background thread, returning a shutdown handle.
    pub fn spawn(self) -> io::Result<RouterHandle> {
        let addr = self.local_addr()?;
        let shared = Arc::clone(&self.shared);
        let join = thread::Builder::new()
            .name("pq-router-acceptor".into())
            .spawn(move || self.run())?;
        Ok(RouterHandle { shared, addr, join })
    }
}

/// The probe loop: health-check quarantined backends and readmit the
/// ones that answer again. Uses the same inline `HealthReq` the serve
/// daemon guarantees to answer even under full load, so a merely-busy
/// backend comes back as soon as it can speak.
fn probe_loop(shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        thread::sleep(shared.config.probe_interval);
        for backend in &shared.backends {
            if !backend.quarantined.load(Ordering::SeqCst) || shared.shutdown.load(Ordering::SeqCst)
            {
                continue;
            }
            let alive = probe(shared, backend);
            if alive && backend.quarantined.swap(false, Ordering::SeqCst) {
                backend.failures.store(0, Ordering::SeqCst);
                shared.instruments.readmissions.inc();
                shared.refresh_quarantined_gauge();
                shared.generation.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
}

fn probe(shared: &Arc<Shared>, backend: &Backend) -> bool {
    let Ok(addr) = backend.spec.addr.to_socket_addrs().map(|mut a| a.next()) else {
        return false;
    };
    let Some(addr) = addr else { return false };
    let Ok(mut client) = Client::connect_timeout(
        &addr,
        shared.config.connect_timeout,
        shared.config.io_timeout,
    ) else {
        return false;
    };
    match client.health() {
        Ok(health) => !health.draining,
        Err(_) => false,
    }
}

/// Admit a fresh client connection (connection cap, then a reader
/// thread that handles requests synchronously — the scatter-gather for
/// one query runs on its connection's thread).
fn accept_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let conn = Arc::new(Conn {
        stream,
        write: Mutex::new(()),
    });
    if shared.active_conns.load(Ordering::SeqCst) >= shared.config.max_conns {
        let _ = conn.send(&[Frame::Busy {
            id: 0,
            retry_after_ms: shared.config.retry_after_ms,
        }]);
        let _ = conn.stream.shutdown(Shutdown::Both);
        return;
    }
    shared.active_conns.fetch_add(1, Ordering::SeqCst);
    shared.conns.lock().unwrap().push(Arc::downgrade(&conn));
    let shared = Arc::clone(shared);
    let _ = thread::Builder::new()
        .name("pq-router-conn".into())
        .spawn(move || {
            let _ = connection_loop(&shared, &conn);
            let _ = conn.stream.shutdown(Shutdown::Both);
            shared.active_conns.fetch_sub(1, Ordering::SeqCst);
        });
}

fn connection_loop(shared: &Arc<Shared>, conn: &Arc<Conn>) -> io::Result<()> {
    conn.stream.set_nonblocking(false)?;
    let mut read = (&conn.stream).take(u64::MAX);
    let max_frame = match wire::read_frame(&mut read, MAX_FRAME_LEN) {
        Ok(Frame::Hello { version, max_frame }) => {
            if version == 0 {
                let _ = conn.send(&[protocol_error(0, ErrorCode::Unsupported, "version 0")]);
                return Ok(());
            }
            let version = version.min(PROTOCOL_VERSION);
            let max_frame = max_frame.clamp(1024, MAX_FRAME_LEN);
            conn.send(&[Frame::HelloAck { version, max_frame }])?;
            max_frame
        }
        Ok(_) => {
            let _ = conn.send(&[protocol_error(
                0,
                ErrorCode::Protocol,
                "expected Hello as the first frame",
            )]);
            return Ok(());
        }
        Err(e) => {
            let _ = conn.send(&[protocol_error(0, ErrorCode::Protocol, &e.to_string())]);
            return Ok(());
        }
    };
    use std::io::Read as _;
    loop {
        let frame = match wire::read_frame(&mut read, max_frame) {
            Ok(f) => f,
            Err(WireError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(WireError::Io(e)) => return Err(e),
            Err(e) => {
                let _ = conn.send(&[protocol_error(0, ErrorCode::Protocol, &e.to_string())]);
                return Ok(());
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            let _ = conn.send(&[protocol_error(
                0,
                ErrorCode::ShuttingDown,
                "router stopping",
            )]);
            return Ok(());
        }
        match frame {
            Frame::Request { id, req, trace } => {
                let frames = match req {
                    Request::QueueMonitor { port, at } => shared.route_monitor(id, port, at, trace),
                    Request::Rtt {
                        port,
                        from,
                        to,
                        max_flows,
                    } => shared.route_rtt(id, port, from, to, max_flows, trace),
                    other => shared.route_query(id, other, trace),
                };
                let _ = conn.send(&frames);
            }
            Frame::TraceDumpReq { id, max, slow_only } => {
                // The router's own committed traces (route/failover/merge
                // spans); stitch with each backend's dump for the full
                // cross-process timeline.
                let traces = shared.instruments.plane.traces();
                let max = (max as usize).clamp(1, wire::MAX_TRACES_PER_DUMP);
                let mut out: Vec<Trace> = if slow_only {
                    traces.slowest(max)
                } else {
                    let mut recent = traces.recent();
                    recent.reverse();
                    recent.truncate(max);
                    recent
                };
                for t in &mut out {
                    t.spans.truncate(wire::MAX_SPANS_PER_TRACE);
                }
                let _ = conn.send(&[Frame::TraceDumpAck { id, traces: out }]);
            }
            Frame::ProfileDumpReq { id } => {
                let frames = shared.route_profile_dump(id);
                let _ = conn.send(&frames);
            }
            Frame::HealthReq { id } => {
                let health = shared.health_info();
                let _ = conn.send(&[Frame::HealthAck { id, health }]);
            }
            Frame::ShardMapReq { id } => {
                let map = shared.shard_map();
                let _ = conn.send(&[Frame::ShardMapAck { id, map }]);
            }
            Frame::MetricsReq { id } => {
                let text = to_prometheus(&shared.instruments.plane.snapshot());
                let _ = conn.send(&[Frame::MetricsText { id, text }]);
            }
            Frame::MetricsGet { id } => {
                let snap = shared.instruments.plane.snapshot();
                let frames = metrics_update_frames(
                    id,
                    0,
                    shared.now_ns(),
                    true,
                    &snapshot_to_samples(&snap),
                );
                let _ = conn.send(&frames);
            }
            Frame::MetricsSubscribe {
                id,
                interval_ms,
                max_updates,
            } => {
                // The router has no publisher thread; a subscription is
                // acked (echoing the clamp the serve daemon applies) and
                // answered with one full snapshot marked `last`, which
                // the protocol allows (`max_updates == 1` semantics).
                let _ = conn.send(&[Frame::SubscribeAck {
                    id,
                    interval_ms: interval_ms.clamp(10, 60_000),
                    max_updates,
                }]);
                let snap = shared.instruments.plane.snapshot();
                let frames = metrics_update_frames(
                    id,
                    0,
                    shared.now_ns(),
                    true,
                    &snapshot_to_samples(&snap),
                );
                let _ = conn.send(&frames);
            }
            Frame::StandingQueryReq {
                id,
                cap,
                max_windows,
                stop_after_seal,
                query,
                trace,
            } => shared.route_standing(conn, id, cap, max_windows, stop_after_seal, &query, trace),
            Frame::StandingQueryCancel { id, sub } => shared.cancel_standing(conn, id, sub),
            Frame::ShutdownReq { id } => {
                let _ = conn.send(&[Frame::ShutdownAck { id }]);
                shared.shutdown.store(true, Ordering::SeqCst);
            }
            Frame::Hello { .. } => {
                let _ = conn.send(&[protocol_error(0, ErrorCode::Protocol, "duplicate Hello")]);
                return Ok(());
            }
            _ => {
                let _ = conn.send(&[protocol_error(
                    0,
                    ErrorCode::Protocol,
                    "server-to-client frame received from client",
                )]);
                return Ok(());
            }
        }
    }
}
