//! # pq-router — the sharded, replicated query tier
//!
//! One `pq-serve` daemon answers diagnosis queries for one switch's
//! archive; a fleet needs a front door. This crate is that door: a
//! thin scatter-gather router that speaks the *same* wire protocol as
//! the backends, so every existing client points at it unchanged.
//!
//! * [`shard`] — rendezvous (highest-random-weight) hashing assigns
//!   every `(port, epoch)` shard to `replication` backends by hashing
//!   their *names*; removing a backend moves only its own shards, and
//!   readdressing one moves nothing.
//! * [`merge`] — order-independent rollup of per-shard partials
//!   (gap union + canonicalization, degraded OR, per-flow sums,
//!   checkpoint max), with a single-partial passthrough that keeps
//!   routed answers bit-identical to a lone backend's.
//! * [`router`] — the daemon: sequential per-shard failover on
//!   transient errors (timeouts, resets, exhausted `Busy` budgets,
//!   draining backends), quarantine after repeated failures, and a
//!   `HealthReq` probe loop that readmits a backend once it answers
//!   again. Authoritative errors are forwarded, never failed over.
//!
//! Everything observable exports under the `pq_router_*` telemetry
//! namespace: fan-out width, per-backend latency, failovers, retries,
//! quarantines and readmissions, and shard-unavailable terminal
//! failures.

pub mod merge;
pub mod router;
pub mod shard;

pub use merge::{merge_results, normalize_gaps};
pub use router::{Router, RouterConfig, RouterHandle};
pub use shard::{epoch_of, epochs, rendezvous_rank, shard_score, BackendSpec, EpochSlice};
