//! Rendezvous sharding: which backends own a `(port, epoch)` shard.
//!
//! The router partitions the query space along two axes: the egress
//! port a query names, and — when `epoch_ns > 0` — coarse time epochs
//! of the queried interval. Each `(port, epoch)` key is assigned to
//! `replication` backends by highest-random-weight (rendezvous)
//! hashing: every backend's score for a key is a deterministic hash of
//! its *name* mixed with the key, and the top-R scorers own the shard.
//! Rendezvous hashing needs no coordination and has minimal disruption:
//! removing one backend reassigns only the shards it owned.
//!
//! Scores hash the backend **name**, not its address, so a backend can
//! restart on a new port (or move hosts) without reshuffling ownership.

/// One backend a router can route to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendSpec {
    /// Stable identity: the shard scores hash this, so renaming a
    /// backend reassigns its shards while readdressing it does not.
    pub name: String,
    /// `host:port` the backend's `pq-serve` daemon listens on.
    pub addr: String,
}

/// Hard cap on how many epoch slices one query may fan out to. An
/// interval spanning more epochs than this is routed coarsely as a
/// single slice keyed by its first epoch — bounded fan-out beats
/// precise placement for pathological interval widths.
pub const MAX_EPOCHS_PER_QUERY: usize = 64;

/// One per-epoch slice of a queried interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochSlice {
    /// The shard key's time component.
    pub epoch: u64,
    /// Slice start (inclusive, nanoseconds).
    pub from: u64,
    /// Slice end (inclusive, nanoseconds).
    pub to: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A backend's rendezvous score for the `(port, epoch)` shard key.
pub fn shard_score(backend_name: &str, port: u16, epoch: u64) -> u64 {
    let key = splitmix64(u64::from(port) ^ epoch.rotate_left(17));
    splitmix64(fnv1a(backend_name.as_bytes()) ^ key)
}

/// Backend indices ranked by descending rendezvous score for
/// `(port, epoch)`. The first `replication` entries are the shard's
/// owners; the rest are the deterministic spill-over order. Ties (only
/// possible with duplicate names) break by index for determinism.
pub fn rendezvous_rank(backends: &[BackendSpec], port: u16, epoch: u64) -> Vec<usize> {
    let mut ranked: Vec<(u64, usize)> = backends
        .iter()
        .enumerate()
        .map(|(i, b)| (shard_score(&b.name, port, epoch), i))
        .collect();
    ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    ranked.into_iter().map(|(_, i)| i).collect()
}

/// The epoch containing instant `t`. `epoch_ns == 0` means time is not
/// sharded: everything is epoch 0.
pub fn epoch_of(t: u64, epoch_ns: u64) -> u64 {
    t.checked_div(epoch_ns).unwrap_or(0)
}

/// Split `[from, to]` into per-epoch slices.
///
/// With `epoch_ns == 0` (the default) the interval is returned as a
/// single epoch-0 slice, **unmodified** — not even endpoint
/// normalization — so a single-owner sub-query is byte-for-byte the
/// query a client would have sent to a lone backend (bit-identical
/// answers, including error-frame gap summaries). Slicing only happens
/// when time sharding is on.
pub fn epochs(from: u64, to: u64, epoch_ns: u64) -> Vec<EpochSlice> {
    if epoch_ns == 0 {
        return vec![EpochSlice { epoch: 0, from, to }];
    }
    let (lo, hi) = if from <= to { (from, to) } else { (to, from) };
    let first = lo / epoch_ns;
    let last = hi / epoch_ns;
    if last - first >= MAX_EPOCHS_PER_QUERY as u64 {
        return vec![EpochSlice {
            epoch: first,
            from: lo,
            to: hi,
        }];
    }
    (first..=last)
        .map(|epoch| EpochSlice {
            epoch,
            from: (epoch * epoch_ns).max(lo),
            to: (epoch + 1)
                .saturating_mul(epoch_ns)
                .saturating_sub(1)
                .min(hi),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: usize) -> Vec<BackendSpec> {
        (0..n)
            .map(|i| BackendSpec {
                name: format!("shard-{i}"),
                addr: format!("127.0.0.1:{}", 9000 + i),
            })
            .collect()
    }

    #[test]
    fn ranking_is_a_permutation_and_deterministic() {
        let backends = fleet(5);
        for port in [0u16, 3, 80, 443, 65535] {
            for epoch in [0u64, 1, 7, u64::MAX] {
                let a = rendezvous_rank(&backends, port, epoch);
                let b = rendezvous_rank(&backends, port, epoch);
                assert_eq!(a, b);
                let mut sorted = a.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..5).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn removing_a_backend_only_moves_its_own_shards() {
        let full = fleet(4);
        let reduced = fleet(3); // shard-3 removed
        for port in 0..64u16 {
            let owner_full = rendezvous_rank(&full, port, 0)[0];
            let owner_reduced = rendezvous_rank(&reduced, port, 0)[0];
            if owner_full != 3 {
                assert_eq!(
                    owner_full, owner_reduced,
                    "port {port}: losing shard-3 must not move other shards"
                );
            }
        }
    }

    #[test]
    fn scores_follow_names_not_addresses() {
        let a = rendezvous_rank(&fleet(3), 42, 9);
        let mut moved = fleet(3);
        for b in &mut moved {
            b.addr = format!("10.0.0.1:{}", b.addr.rsplit(':').next().unwrap());
        }
        assert_eq!(a, rendezvous_rank(&moved, 42, 9));
    }

    #[test]
    fn placement_spreads_across_backends() {
        let backends = fleet(4);
        let mut owned = [0usize; 4];
        for port in 0..256u16 {
            owned[rendezvous_rank(&backends, port, 0)[0]] += 1;
        }
        for (i, &n) in owned.iter().enumerate() {
            assert!(n > 0, "backend {i} owns no ports out of 256");
        }
    }

    #[test]
    fn zero_epoch_ns_passes_the_interval_through_untouched() {
        // Including a reversed interval: normalization is the backend's
        // job when it is the sole slice.
        assert_eq!(
            epochs(900, 100, 0),
            vec![EpochSlice {
                epoch: 0,
                from: 900,
                to: 100
            }]
        );
    }

    #[test]
    fn slices_partition_the_interval_exactly() {
        let slices = epochs(150, 999, 250);
        assert_eq!(slices.len(), 4);
        assert_eq!(
            slices[0],
            EpochSlice {
                epoch: 0,
                from: 150,
                to: 249
            }
        );
        assert_eq!(
            slices[3],
            EpochSlice {
                epoch: 3,
                from: 750,
                to: 999
            }
        );
        for w in slices.windows(2) {
            assert_eq!(w[0].to + 1, w[1].from, "slices must tile with no gap");
        }
    }

    #[test]
    fn pathological_width_falls_back_to_one_coarse_slice() {
        let slices = epochs(0, u64::MAX, 1);
        assert_eq!(slices.len(), 1);
        assert_eq!(slices[0].from, 0);
        assert_eq!(slices[0].to, u64::MAX);
    }
}
