//! Property tests for the scatter-gather merge: the fold over partial
//! answers must be associative and commutative, or answers would
//! depend on which replica responded first and in what order the
//! epoch-slice sub-queries completed.
//!
//! Flow estimates are summed f64s, which are only associative when the
//! values are exactly representable — the generators therefore use
//! small-integer-valued counts, where IEEE addition *is* exact. The
//! wire carries raw f64 bits either way, so exactness there is the
//! backends' contract, not the merge's.

use pq_core::control::CoverageGap;
use pq_core::snapshot::FlowEstimates;
use pq_packet::FlowId;
use pq_router::{merge_results, normalize_gaps};
use pq_serve::RemoteResult;
use proptest::collection::vec;
use proptest::prelude::*;

fn arb_gap() -> impl Strategy<Value = CoverageGap> {
    (0u64..500, 0u64..60).prop_map(|(from, len)| CoverageGap {
        from,
        to: from + len,
    })
}

fn arb_gaps() -> impl Strategy<Value = Vec<CoverageGap>> {
    vec(arb_gap(), 0..8)
}

fn arb_partial() -> impl Strategy<Value = RemoteResult> {
    (
        vec((0u32..16, 0u16..200), 0..8),
        arb_gaps(),
        any::<bool>(),
        0u64..100,
    )
        .prop_map(|(flows, gaps, degraded, checkpoints)| {
            let mut estimates = FlowEstimates::default();
            for (flow, count) in flows {
                // Integer-valued f64s: summation is exact, so the
                // associativity assertion below is legitimate.
                *estimates.counts.entry(FlowId(flow)).or_insert(0.0) += f64::from(count);
            }
            RemoteResult {
                estimates,
                gaps,
                degraded,
                checkpoints,
                trace: None,
            }
        })
}

/// Canonical instants covered by a gap list — the semantic content the
/// canonical form must preserve.
fn covered(gaps: &[CoverageGap]) -> Vec<u64> {
    let mut points: Vec<u64> = gaps.iter().flat_map(|g| g.from..=g.to).collect();
    points.sort_unstable();
    points.dedup();
    points
}

fn merge2(a: RemoteResult, b: RemoteResult) -> RemoteResult {
    merge_results(vec![a, b]).unwrap()
}

/// Field-wise equality; `FlowEstimates` holds a HashMap, so no derived
/// `PartialEq` on `RemoteResult` itself.
fn same(a: &RemoteResult, b: &RemoteResult) -> bool {
    a.estimates.counts == b.estimates.counts
        && a.gaps == b.gaps
        && a.degraded == b.degraded
        && a.checkpoints == b.checkpoints
}

proptest! {
    /// normalize(a ∪ b) is order-independent.
    #[test]
    fn gap_union_is_commutative(a in arb_gaps(), b in arb_gaps()) {
        let mut ab = a.clone();
        ab.extend(b.clone());
        let mut ba = b;
        ba.extend(a);
        prop_assert_eq!(normalize_gaps(ab), normalize_gaps(ba));
    }

    /// Grouping does not matter: normalizing an intermediate union and
    /// unioning again lands on the same canonical list.
    #[test]
    fn gap_union_is_associative(a in arb_gaps(), b in arb_gaps(), c in arb_gaps()) {
        let left = {
            let mut ab = a.clone();
            ab.extend(b.clone());
            let mut abc = normalize_gaps(ab);
            abc.extend(c.clone());
            normalize_gaps(abc)
        };
        let right = {
            let mut bc = b;
            bc.extend(c);
            let mut abc = a;
            abc.extend(normalize_gaps(bc));
            normalize_gaps(abc)
        };
        prop_assert_eq!(left, right);
    }

    /// Canonicalization is lossless (same covered instants), idempotent,
    /// and emits sorted, disjoint, non-touching runs.
    #[test]
    fn normalization_is_canonical(a in arb_gaps()) {
        let norm = normalize_gaps(a.clone());
        prop_assert_eq!(covered(&norm), covered(&a));
        prop_assert_eq!(normalize_gaps(norm.clone()), norm.clone());
        for w in norm.windows(2) {
            prop_assert!(w[0].to.saturating_add(1) < w[1].from,
                "adjacent canonical gaps must not touch: {:?}", w);
        }
    }

    /// The full answer merge commutes: flows, gaps, the degraded flag,
    /// and the checkpoint count all land identically either way round.
    #[test]
    fn answer_merge_is_commutative(a in arb_partial(), b in arb_partial()) {
        prop_assert!(same(&merge2(a.clone(), b.clone()), &merge2(b, a)));
    }

    /// And associates: merging pairwise in any grouping equals merging
    /// the whole batch at once.
    #[test]
    fn answer_merge_is_associative(
        a in arb_partial(),
        b in arb_partial(),
        c in arb_partial(),
    ) {
        let left = merge2(merge2(a.clone(), b.clone()), c.clone());
        let right = merge2(a.clone(), merge2(b.clone(), c.clone()));
        let batch = merge_results(vec![a, b, c]).unwrap();
        prop_assert!(same(&left, &right));
        prop_assert!(same(&left, &batch));
    }

    /// The degraded flag is a pure OR over partials.
    #[test]
    fn degraded_flag_is_an_or(parts in vec(arb_partial(), 2..6)) {
        let want = parts.iter().any(|p| p.degraded);
        let merged = merge_results(parts).unwrap();
        prop_assert_eq!(merged.degraded, want);
    }
}
