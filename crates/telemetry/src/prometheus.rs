//! Prometheus text exposition (version 0.0.4) for registry snapshots,
//! plus a small parser used by tests and the CI smoke step to verify the
//! exposition round-trips.
//!
//! Counters and gauges render as `name{labels} value`. Histograms render
//! in the standard cumulative form: one `name_bucket{le="..."}` series per
//! occupied log2 bucket plus `le="+Inf"`, then `name_sum` and
//! `name_count`. `# HELP` (from the [`crate::names`] schema) and `# TYPE`
//! comment lines are emitted once per metric name;
//! [`parse_exposition`] round-trips them alongside the samples.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::histogram::{bucket_upper_bound, HistogramSnapshot};
use crate::names;
use crate::registry::{MetricValue, RegistrySnapshot};

fn render_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{v}\"");
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
}

fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    h: &HistogramSnapshot,
) {
    let mut cumulative = 0u64;
    for (i, &n) in h.buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        cumulative += n;
        let le = bucket_upper_bound(i).to_string();
        let _ = write!(out, "{name}_bucket");
        render_labels(out, labels, Some(("le", &le)));
        // OpenMetrics-style exemplar: the last trace that landed in this
        // bucket, linking an alert on the series to a concrete trace.
        match h.exemplar(i) {
            Some(e) => {
                let _ = writeln!(
                    out,
                    " {cumulative} # {{trace_id=\"{:032x}\"}} {}",
                    e.trace_id, e.value
                );
            }
            None => {
                let _ = writeln!(out, " {cumulative}");
            }
        }
    }
    let _ = write!(out, "{name}_bucket");
    render_labels(out, labels, Some(("le", "+Inf")));
    let _ = writeln!(out, " {}", h.count);
    let _ = write!(out, "{name}_sum");
    render_labels(out, labels, None);
    let _ = writeln!(out, " {}", h.sum);
    let _ = write!(out, "{name}_count");
    render_labels(out, labels, None);
    let _ = writeln!(out, " {}", h.count);
}

/// Render a snapshot as Prometheus text exposition.
pub fn to_prometheus(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    let mut last_typed: Option<String> = None;
    for (key, value) in snapshot.iter() {
        // Keys iterate in name order, so one HELP/TYPE pair per name
        // suffices.
        if last_typed.as_deref() != Some(key.name.as_str()) {
            let kind = match value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# HELP {} {}", key.name, names::help(&key.name));
            let _ = writeln!(out, "# TYPE {} {kind}", key.name);
            last_typed = Some(key.name.clone());
        }
        match value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                out.push_str(&key.name);
                render_labels(&mut out, &key.labels, None);
                let _ = writeln!(out, " {v}");
            }
            MetricValue::Histogram(h) => render_histogram(&mut out, &key.name, &key.labels, h),
        }
    }
    out
}

/// One sample line parsed back out of an exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedMetric {
    /// Sample name as written (histogram series keep their `_bucket` /
    /// `_sum` / `_count` suffixes).
    pub name: String,
    /// Label pairs in written order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
    /// OpenMetrics-style exemplar suffix, if present: the exemplar's
    /// `trace_id` label and observed value.
    pub exemplar: Option<(String, f64)>,
}

/// Per-metric-name metadata parsed from `# HELP` / `# TYPE` lines.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricMeta {
    /// Declared kind (`counter`, `gauge`, `histogram`), empty if no
    /// `# TYPE` line was seen.
    pub kind: String,
    /// Declared help text, empty if no `# HELP` line was seen.
    pub help: String,
}

/// A fully parsed exposition: sample lines plus the HELP/TYPE metadata,
/// so tests can verify the comment lines round-trip, not just the values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedExposition {
    /// Sample lines in written order.
    pub samples: Vec<ParsedMetric>,
    /// Metadata keyed by base metric name.
    pub meta: BTreeMap<String, MetricMeta>,
}

/// Parse a Prometheus text exposition back into its sample lines.
///
/// Comment (`#`) and blank lines are skipped. Returns an error describing
/// the first malformed line, making this usable as a smoke check that
/// [`to_prometheus`] emitted something well-formed. Use
/// [`parse_exposition`] to also recover the `# HELP`/`# TYPE` metadata.
pub fn parse_prometheus(text: &str) -> Result<Vec<ParsedMetric>, String> {
    parse_exposition(text).map(|e| e.samples)
}

/// Parse an exposition including its `# HELP` and `# TYPE` comment lines.
///
/// A malformed `HELP`/`TYPE` line (missing metric name, unknown kind) is
/// an error — the whole point of round-tripping metadata is catching an
/// exporter that emits broken comments.
pub fn parse_exposition(text: &str) -> Result<ParsedExposition, String> {
    let mut out = ParsedExposition::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(spec) = rest.strip_prefix("HELP ") {
                let (name, help) = spec
                    .trim()
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| format!("line {}: HELP without text: {line:?}", lineno + 1))?;
                out.meta.entry(name.to_string()).or_default().help = help.trim().to_string();
            } else if let Some(spec) = rest.strip_prefix("TYPE ") {
                let (name, kind) = spec
                    .trim()
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| format!("line {}: TYPE without kind: {line:?}", lineno + 1))?;
                let kind = kind.trim();
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {}: unknown TYPE {kind:?}", lineno + 1));
                }
                out.meta.entry(name.to_string()).or_default().kind = kind.to_string();
            }
            // Other comments are free text; skip.
            continue;
        }
        let parsed = parse_line(line).map_err(|e| format!("line {}: {e}: {line:?}", lineno + 1))?;
        out.samples.push(parsed);
    }
    Ok(out)
}

fn parse_line(line: &str) -> Result<ParsedMetric, String> {
    // Split off an OpenMetrics exemplar suffix (` # {labels} value`)
    // before looking for the label-set close brace, or the exemplar's own
    // brace would be mistaken for it.
    let (line, exemplar) = match line.find(" # ") {
        Some(at) => {
            let (head, tail) = line.split_at(at);
            (head.trim_end(), Some(parse_exemplar(tail[3..].trim())?))
        }
        None => (line, None),
    };
    let (series, value_str) = match line.rfind('}') {
        Some(close) => {
            let (series, rest) = line.split_at(close + 1);
            (series, rest.trim())
        }
        None => {
            let mut parts = line.splitn(2, char::is_whitespace);
            let name = parts.next().unwrap_or("");
            (name, parts.next().unwrap_or("").trim())
        }
    };
    let value: f64 = if value_str == "+Inf" {
        f64::INFINITY
    } else {
        value_str
            .parse()
            .map_err(|_| format!("bad value {value_str:?}"))?
    };

    let (name, labels) = match series.find('{') {
        None => (series.to_string(), Vec::new()),
        Some(open) => {
            let name = series[..open].to_string();
            let body = series[open + 1..]
                .strip_suffix('}')
                .ok_or("unterminated label set")?;
            let mut labels = Vec::new();
            for pair in body.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair.split_once('=').ok_or("label without '='")?;
                let v = v
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or("unquoted label value")?;
                labels.push((k.to_string(), v.to_string()));
            }
            (name, labels)
        }
    };
    if name.is_empty() {
        return Err("empty metric name".to_string());
    }
    Ok(ParsedMetric {
        name,
        labels,
        value,
        exemplar,
    })
}

/// Parse the `{trace_id="..."} value` tail of an exemplar suffix.
fn parse_exemplar(tail: &str) -> Result<(String, f64), String> {
    let body = tail.strip_prefix('{').ok_or("exemplar without label set")?;
    let (labels, value_str) = body.split_once('}').ok_or("unterminated exemplar labels")?;
    let (k, v) = labels.split_once('=').ok_or("exemplar label without '='")?;
    if k != "trace_id" {
        return Err(format!("unexpected exemplar label {k:?}"));
    }
    let v = v
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or("unquoted exemplar value")?;
    let value: f64 = value_str
        .trim()
        .parse()
        .map_err(|_| format!("bad exemplar value {value_str:?}"))?;
    Ok((v.to_string(), value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = Registry::new();
        reg.counter("pq_test_hits_total", &[("port", "3")]).add(7);
        reg.gauge("pq_test_depth", &[]).set(12);
        let text = to_prometheus(&reg.snapshot());
        assert!(text.contains("# TYPE pq_test_depth gauge"));
        assert!(text.contains("# TYPE pq_test_hits_total counter"));
        assert!(text.contains("pq_test_hits_total{port=\"3\"} 7"));

        let parsed = parse_prometheus(&text).unwrap();
        let hit = parsed
            .iter()
            .find(|m| m.name == "pq_test_hits_total")
            .unwrap();
        assert_eq!(hit.labels, vec![("port".to_string(), "3".to_string())]);
        assert_eq!(hit.value, 7.0);
    }

    #[test]
    fn histogram_exposition_is_cumulative() {
        let reg = Registry::new();
        let h = reg.histogram("pq_test_ns", &[]);
        h.record(1);
        h.record(1);
        h.record(100);
        let text = to_prometheus(&reg.snapshot());
        assert!(text.contains("# TYPE pq_test_ns histogram"));
        assert!(text.contains("pq_test_ns_bucket{le=\"1\"} 2"));
        assert!(text.contains("pq_test_ns_bucket{le=\"127\"} 3"));
        assert!(text.contains("pq_test_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("pq_test_ns_sum 102"));
        assert!(text.contains("pq_test_ns_count 3"));

        let parsed = parse_prometheus(&text).unwrap();
        let inf = parsed
            .iter()
            .find(|m| {
                m.name == "pq_test_ns_bucket"
                    && m.labels.iter().any(|(k, v)| k == "le" && v == "+Inf")
            })
            .unwrap();
        assert_eq!(inf.value, 3.0);
    }

    #[test]
    fn help_and_type_lines_round_trip() {
        use crate::names;
        let reg = Registry::new();
        reg.counter(names::SERVE_SHED, &[]).add(2);
        reg.gauge(names::SERVE_QUEUE_DEPTH, &[]).set(3);
        reg.histogram(names::SERVE_REQUEST_NS, &[]).record(100);
        let text = to_prometheus(&reg.snapshot());
        let parsed = parse_exposition(&text).unwrap();
        // Every emitted metric name carries both HELP and TYPE, and they
        // survive the parse intact.
        for (name, kind) in [
            (names::SERVE_SHED, "counter"),
            (names::SERVE_QUEUE_DEPTH, "gauge"),
            (names::SERVE_REQUEST_NS, "histogram"),
        ] {
            let meta = parsed
                .meta
                .get(name)
                .unwrap_or_else(|| panic!("no meta for {name}"));
            assert_eq!(meta.kind, kind, "{name}");
            assert_eq!(meta.help, names::help(name), "{name}");
            assert!(!meta.help.is_empty());
        }
        // The sample lines still parse identically through the old entry
        // point (HELP must not perturb value parsing).
        assert_eq!(parse_prometheus(&text).unwrap(), parsed.samples);
    }

    #[test]
    fn bucket_exemplars_render_and_parse() {
        let reg = Registry::new();
        let h = reg.histogram("pq_test_ns", &[]);
        h.record(1);
        h.record_exemplar(100, 0xabc);
        let text = to_prometheus(&reg.snapshot());
        let suffix = format!("# {{trace_id=\"{:032x}\"}} 100", 0xabcu128);
        assert!(text.contains(&suffix), "no exemplar in: {text}");

        let parsed = parse_prometheus(&text).unwrap();
        let with_ex = parsed
            .iter()
            .find(|m| m.name == "pq_test_ns_bucket" && m.exemplar.is_some())
            .expect("one bucket line carries the exemplar");
        let (trace_id, value) = with_ex.exemplar.clone().unwrap();
        assert_eq!(trace_id, format!("{:032x}", 0xabcu128));
        assert_eq!(value, 100.0);
        // The bucket without an exemplar parses with none.
        assert!(parsed
            .iter()
            .any(|m| m.name == "pq_test_ns_bucket" && m.exemplar.is_none()));
    }

    #[test]
    fn broken_metadata_lines_are_errors() {
        assert!(parse_exposition("# HELP lonely_name").is_err());
        assert!(parse_exposition("# TYPE x flute").is_err());
        // Free-text comments stay legal.
        assert!(parse_exposition("# a plain comment")
            .unwrap()
            .samples
            .is_empty());
    }

    #[test]
    fn malformed_lines_are_reported() {
        assert!(parse_prometheus("just_a_name_no_value").is_err());
        assert!(parse_prometheus("name{unclosed 3").is_err());
        assert!(parse_prometheus("name notanumber").is_err());
        assert!(parse_prometheus("# a comment\n\n").unwrap().is_empty());
    }
}
