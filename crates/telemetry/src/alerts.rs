//! A declarative alert-rule engine over registry snapshots.
//!
//! Rules are data, not code: each names a `pq_*` metric (optionally
//! narrowed by labels), a statistic to extract, and one of three
//! predicate kinds —
//!
//! * **threshold** — compare the statistic against a constant;
//! * **rate** — compare the reset-safe per-second rate of a counter
//!   (derived between consecutive evaluations via [`mod@crate::delta`])
//!   against a constant;
//! * **absence** — fire when no matching series exists at all, the
//!   "is the thing even reporting?" rule.
//!
//! The engine is a per-rule state machine with two operational guards
//! borrowed from production alerting:
//!
//! * **`for`-duration debouncing** — a breach must persist across
//!   evaluations for `for_ns` before the rule fires, so a one-tick blip
//!   never pages;
//! * **hysteresis** — a firing rule only resolves once the value has
//!   crossed back past the threshold by a configurable fraction, so a
//!   value oscillating at the threshold cannot flap fire/resolve on
//!   every tick.
//!
//! [`AlertEngine::evaluate`] consumes timestamped snapshots and returns
//! the *transitions* ([`AlertEvent`]: firing / resolved, each carrying a
//! structured reason); [`AlertEngine::statuses`] reports current state
//! for dashboards. Rules parse from a small TOML-subset file format
//! ([`parse_rules`]), documented in DESIGN.md §11.

use crate::registry::{MetricValue, RegistrySnapshot};

/// Comparison direction for threshold and rate predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Breach when the observed value is strictly greater.
    Gt,
    /// Breach when the observed value is strictly smaller.
    Lt,
}

impl Op {
    fn breached(self, value: f64, threshold: f64) -> bool {
        match self {
            Op::Gt => value > threshold,
            Op::Lt => value < threshold,
        }
    }

    /// With the rule firing, is the value still inside the hysteresis
    /// band (i.e. not yet resolved)?
    fn holds(self, value: f64, threshold: f64, hysteresis: f64) -> bool {
        let h = hysteresis.clamp(0.0, 1.0);
        match self {
            Op::Gt => value > threshold * (1.0 - h),
            Op::Lt => value < threshold * (1.0 + h),
        }
    }

    fn symbol(self) -> &'static str {
        match self {
            Op::Gt => ">",
            Op::Lt => "<",
        }
    }
}

/// The statistic a rule extracts from its matching series.
///
/// For counters and gauges every statistic reduces to the value (summed
/// across matching series). For histograms the matching series are merged
/// bucket-wise first, then the statistic is taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stat {
    /// Counter/gauge value; histogram sample count.
    Value,
    /// Histogram sample count.
    Count,
    /// Histogram sum (counter/gauge value).
    Sum,
    /// Histogram mean.
    Mean,
    /// Histogram median estimate.
    P50,
    /// Histogram 90th-percentile estimate.
    P90,
    /// Histogram 99th-percentile estimate.
    P99,
    /// Histogram maximum.
    Max,
}

impl Stat {
    fn name(self) -> &'static str {
        match self {
            Stat::Value => "value",
            Stat::Count => "count",
            Stat::Sum => "sum",
            Stat::Mean => "mean",
            Stat::P50 => "p50",
            Stat::P90 => "p90",
            Stat::P99 => "p99",
            Stat::Max => "max",
        }
    }
}

/// What makes the rule breach.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// The extracted statistic compared against a constant.
    Threshold {
        /// Comparison direction.
        op: Op,
        /// The constant to compare against.
        value: f64,
    },
    /// The reset-safe per-second rate of the metric (counters and
    /// histogram counts) compared against a constant.
    Rate {
        /// Comparison direction.
        op: Op,
        /// Threshold in events per second.
        per_second: f64,
    },
    /// Breach when no matching series exists in the snapshot.
    Absence,
}

/// One declarative alert rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Rule name, unique within an engine.
    pub name: String,
    /// Metric name the rule watches.
    pub metric: String,
    /// Label pairs a series must carry to match (subset match; empty
    /// matches every series of the metric).
    pub labels: Vec<(String, String)>,
    /// Statistic extracted from the matching series.
    pub stat: Stat,
    /// The breach predicate.
    pub predicate: Predicate,
    /// How long a breach must persist before the rule fires (0 = fire on
    /// the first breaching evaluation).
    pub for_ns: u64,
    /// Fractional resolve hysteresis (0.1 = the value must retreat 10%
    /// past the threshold before the rule resolves).
    pub hysteresis: f64,
}

impl AlertRule {
    /// A threshold rule with no debounce and no hysteresis; builder-style
    /// setters below refine it.
    pub fn threshold(name: &str, metric: &str, op: Op, value: f64) -> AlertRule {
        AlertRule {
            name: name.to_string(),
            metric: metric.to_string(),
            labels: Vec::new(),
            stat: Stat::Value,
            predicate: Predicate::Threshold { op, value },
            for_ns: 0,
            hysteresis: 0.0,
        }
    }

    /// A rate rule (events per second, reset-safe).
    pub fn rate(name: &str, metric: &str, op: Op, per_second: f64) -> AlertRule {
        AlertRule {
            predicate: Predicate::Rate { op, per_second },
            ..AlertRule::threshold(name, metric, op, per_second)
        }
    }

    /// An absence rule: fires when the metric has no matching series.
    pub fn absence(name: &str, metric: &str) -> AlertRule {
        AlertRule {
            predicate: Predicate::Absence,
            ..AlertRule::threshold(name, metric, Op::Gt, 0.0)
        }
    }

    /// Require a label pair on matching series.
    pub fn with_label(mut self, key: &str, value: &str) -> AlertRule {
        self.labels.push((key.to_string(), value.to_string()));
        self
    }

    /// Set the statistic to extract.
    pub fn with_stat(mut self, stat: Stat) -> AlertRule {
        self.stat = stat;
        self
    }

    /// Set the `for`-duration debounce.
    pub fn with_for_ns(mut self, for_ns: u64) -> AlertRule {
        self.for_ns = for_ns;
        self
    }

    /// Set the resolve hysteresis fraction.
    pub fn with_hysteresis(mut self, hysteresis: f64) -> AlertRule {
        self.hysteresis = hysteresis;
        self
    }

    fn matches(&self, key: &crate::registry::MetricKey) -> bool {
        key.name == self.metric
            && self
                .labels
                .iter()
                .all(|(k, v)| key.labels.iter().any(|(lk, lv)| lk == k && lv == v))
    }

    /// Extract the observed value from a snapshot: `None` when no series
    /// matches. Counters and gauges sum across matching series;
    /// histograms merge bucket-wise first.
    fn observe(&self, snap: &RegistrySnapshot) -> Option<f64> {
        let mut scalar: Option<u64> = None;
        let mut hist: Option<crate::histogram::HistogramSnapshot> = None;
        for (key, value) in snap.iter() {
            if !self.matches(key) {
                continue;
            }
            match value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    scalar = Some(scalar.unwrap_or(0).saturating_add(*v));
                }
                MetricValue::Histogram(h) => match &mut hist {
                    Some(acc) => acc.merge(h),
                    None => hist = Some((**h).clone()),
                },
            }
        }
        if let Some(h) = hist {
            let v = match self.stat {
                Stat::Value | Stat::Count => h.count as f64,
                Stat::Sum => h.sum as f64,
                Stat::Mean => h.mean(),
                Stat::P50 => h.p50() as f64,
                Stat::P90 => h.p90() as f64,
                Stat::P99 => h.p99() as f64,
                Stat::Max => {
                    if h.is_empty() {
                        0.0
                    } else {
                        h.max as f64
                    }
                }
            };
            return Some(v);
        }
        scalar.map(|v| v as f64)
    }

    fn describe_target(&self) -> String {
        let mut s = self.metric.clone();
        if !self.labels.is_empty() {
            s.push('{');
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!("{k}=\"{v}\""));
            }
            s.push('}');
        }
        s
    }
}

/// An alert transition emitted by [`AlertEngine::evaluate`].
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    /// The rule's name.
    pub rule: String,
    /// Transition direction.
    pub kind: AlertKind,
    /// Evaluation timestamp the transition happened at.
    pub at_ns: u64,
    /// The observed value at the transition (`None` for absence).
    pub value: Option<f64>,
    /// The rule's threshold (0 for absence).
    pub threshold: f64,
    /// Human-readable structured reason, e.g.
    /// `rate(pq_serve_shed_total) 12.50/s > 10/s for 5.0s`.
    pub reason: String,
}

/// Transition direction of an [`AlertEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// The rule began firing.
    Firing,
    /// The rule stopped firing.
    Resolved,
}

/// Current state of one rule, for dashboards and `--once` reports.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertStatus {
    /// The rule's name.
    pub rule: String,
    /// `"ok"`, `"pending"`, or `"firing"`.
    pub state: &'static str,
    /// Last observed value (`None` before the first evaluation or when
    /// no series matched).
    pub value: Option<f64>,
    /// The rule's threshold (0 for absence rules).
    pub threshold: f64,
    /// Reason line for the current state (empty while ok).
    pub reason: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Ok,
    Pending { since_ns: u64 },
    Firing,
}

struct Runtime {
    rule: AlertRule,
    state: State,
    last_value: Option<f64>,
    last_reason: String,
}

/// Evaluates a rule set against a stream of timestamped snapshots.
pub struct AlertEngine {
    rules: Vec<Runtime>,
    prev: Option<(u64, RegistrySnapshot)>,
}

impl AlertEngine {
    /// An engine over `rules`, all starting in the ok state.
    pub fn new(rules: Vec<AlertRule>) -> AlertEngine {
        AlertEngine {
            rules: rules
                .into_iter()
                .map(|rule| Runtime {
                    rule,
                    state: State::Ok,
                    last_value: None,
                    last_reason: String::new(),
                })
                .collect(),
            prev: None,
        }
    }

    /// The configured rules.
    pub fn rules(&self) -> impl Iterator<Item = &AlertRule> {
        self.rules.iter().map(|r| &r.rule)
    }

    /// Evaluate every rule against `snap` taken at `t_ns`, returning the
    /// transitions (newly firing / newly resolved). Rate predicates need
    /// two evaluations before they can breach — the first call only
    /// primes the previous snapshot.
    pub fn evaluate(&mut self, t_ns: u64, snap: &RegistrySnapshot) -> Vec<AlertEvent> {
        let mut events = Vec::new();
        for rt in &mut self.rules {
            let (observed, breached, threshold, describe) =
                judge(&rt.rule, snap, self.prev.as_ref(), t_ns);
            rt.last_value = observed;
            let still_holds = match (&rt.rule.predicate, observed) {
                // Absence "holds" while still absent; any appearance resolves.
                (Predicate::Absence, _) => breached,
                (_, Some(v)) => {
                    let op = match rt.rule.predicate {
                        Predicate::Threshold { op, .. } | Predicate::Rate { op, .. } => op,
                        Predicate::Absence => unreachable!(),
                    };
                    breached || op.holds(v, threshold, rt.rule.hysteresis)
                }
                // No observation (series vanished): a firing
                // threshold/rate rule resolves.
                (_, None) => false,
            };
            match rt.state {
                State::Ok if breached => {
                    if rt.rule.for_ns == 0 {
                        rt.state = State::Firing;
                        rt.last_reason = describe.clone();
                        events.push(AlertEvent {
                            rule: rt.rule.name.clone(),
                            kind: AlertKind::Firing,
                            at_ns: t_ns,
                            value: observed,
                            threshold,
                            reason: describe,
                        });
                    } else {
                        rt.state = State::Pending { since_ns: t_ns };
                        rt.last_reason = format!("{describe} (pending)");
                    }
                }
                State::Pending { since_ns } if breached => {
                    if t_ns.saturating_sub(since_ns) >= rt.rule.for_ns {
                        rt.state = State::Firing;
                        let reason = format!(
                            "{describe} for {:.1}s",
                            t_ns.saturating_sub(since_ns) as f64 / 1e9
                        );
                        rt.last_reason = reason.clone();
                        events.push(AlertEvent {
                            rule: rt.rule.name.clone(),
                            kind: AlertKind::Firing,
                            at_ns: t_ns,
                            value: observed,
                            threshold,
                            reason,
                        });
                    } else {
                        rt.last_reason = format!("{describe} (pending)");
                    }
                }
                State::Pending { .. } => {
                    // Breach did not persist: back to ok, no event (the
                    // rule never fired).
                    rt.state = State::Ok;
                    rt.last_reason = String::new();
                }
                State::Firing if !still_holds => {
                    rt.state = State::Ok;
                    let reason = format!("{describe} (resolved)");
                    rt.last_reason = String::new();
                    events.push(AlertEvent {
                        rule: rt.rule.name.clone(),
                        kind: AlertKind::Resolved,
                        at_ns: t_ns,
                        value: observed,
                        threshold,
                        reason,
                    });
                }
                State::Firing => {
                    rt.last_reason = describe;
                }
                State::Ok => {
                    rt.last_reason = String::new();
                }
            }
        }
        self.prev = Some((t_ns, snap.clone()));
        events
    }

    /// Current per-rule state, in rule order.
    pub fn statuses(&self) -> Vec<AlertStatus> {
        self.rules
            .iter()
            .map(|rt| AlertStatus {
                rule: rt.rule.name.clone(),
                state: match rt.state {
                    State::Ok => "ok",
                    State::Pending { .. } => "pending",
                    State::Firing => "firing",
                },
                value: rt.last_value,
                threshold: match rt.rule.predicate {
                    Predicate::Threshold { value, .. } => value,
                    Predicate::Rate { per_second, .. } => per_second,
                    Predicate::Absence => 0.0,
                },
                reason: rt.last_reason.clone(),
            })
            .collect()
    }

    /// Names of the rules currently firing.
    pub fn firing(&self) -> Vec<String> {
        self.rules
            .iter()
            .filter(|rt| rt.state == State::Firing)
            .map(|rt| rt.rule.name.clone())
            .collect()
    }
}

/// One rule's verdict against one snapshot: observed value, whether the
/// predicate breached, the threshold, and the reason line.
fn judge(
    rule: &AlertRule,
    snap: &RegistrySnapshot,
    prev: Option<&(u64, RegistrySnapshot)>,
    t_ns: u64,
) -> (Option<f64>, bool, f64, String) {
    let target = rule.describe_target();
    match &rule.predicate {
        Predicate::Absence => {
            let observed = rule.observe(snap);
            let breached = observed.is_none();
            let reason = if breached {
                format!("{target} absent from snapshot")
            } else {
                format!("{target} present")
            };
            (observed, breached, 0.0, reason)
        }
        Predicate::Threshold { op, value } => {
            let observed = rule.observe(snap);
            let breached = observed.is_some_and(|v| op.breached(v, *value));
            let reason = format!(
                "{stat}({target}) {observed} {op} {value}",
                stat = rule.stat.name(),
                observed = observed.map_or("n/a".to_string(), |v| format!("{v:.2}")),
                op = op.symbol(),
            );
            (observed, breached, *value, reason)
        }
        Predicate::Rate { op, per_second } => {
            let rate = prev.and_then(|(prev_t, prev_snap)| {
                let elapsed = t_ns.saturating_sub(*prev_t);
                if elapsed == 0 {
                    return None;
                }
                let (a, b) = (rule.observe(prev_snap), rule.observe(snap));
                match (a, b) {
                    (Some(a), Some(b)) => {
                        Some(crate::delta::rate_per_sec(a as u64, b as u64, elapsed))
                    }
                    (None, Some(b)) => Some(b * 1e9 / elapsed as f64),
                    _ => None,
                }
            });
            let breached = rate.is_some_and(|r| op.breached(r, *per_second));
            let reason = format!(
                "rate({target}) {rate}/s {op} {per_second}/s",
                rate = rate.map_or("n/a".to_string(), |v| format!("{v:.2}")),
                op = op.symbol(),
            );
            (rate, breached, *per_second, reason)
        }
    }
}

// -- rule-file parsing ------------------------------------------------------

/// Parse a rules file (TOML subset): `[[rule]]` blocks of `key = value`
/// lines.
///
/// ```toml
/// [[rule]]
/// name = "shed-storm"
/// metric = "pq_serve_shed_total"
/// kind = "rate"           # threshold | rate | absence (default threshold)
/// op = ">"                # ">" | "<" (default ">")
/// value = 10.0            # threshold, or events/s for rate
/// stat = "value"          # value|count|sum|mean|p50|p90|p99|max
/// labels = "kind=replay"  # optional, comma-separated k=v pairs
/// for = "5s"              # optional debounce: ns/us/ms/s/m suffix
/// hysteresis = 0.1        # optional resolve fraction
/// ```
///
/// Comments (`#`) and blank lines are skipped; unknown keys are errors so
/// typos cannot silently disable a rule.
pub fn parse_rules(text: &str) -> Result<Vec<AlertRule>, String> {
    #[derive(Default)]
    struct Block {
        lineno: usize,
        fields: Vec<(String, String)>,
    }
    let mut blocks: Vec<Block> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = match raw.find('#') {
            // An even number of quotes before the '#' means it sits
            // outside any quoted value and starts a comment.
            Some(cut) if raw[..cut].matches('"').count() % 2 == 0 => raw[..cut].trim(),
            _ => raw.trim(),
        };
        if line.is_empty() {
            continue;
        }
        if line == "[[rule]]" {
            blocks.push(Block {
                lineno,
                fields: Vec::new(),
            });
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("line {lineno}: unknown section {line:?}"));
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected key = value, got {line:?}"))?;
        let block = blocks
            .last_mut()
            .ok_or_else(|| format!("line {lineno}: field before the first [[rule]]"))?;
        block
            .fields
            .push((key.trim().to_string(), unquote(value.trim())));
    }

    let mut rules = Vec::with_capacity(blocks.len());
    for block in blocks {
        rules.push(rule_from_fields(block.lineno, &block.fields)?);
    }
    Ok(rules)
}

fn unquote(v: &str) -> String {
    v.strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .unwrap_or(v)
        .to_string()
}

fn parse_duration_ns(s: &str) -> Result<u64, String> {
    let (num, mult) = if let Some(n) = s.strip_suffix("ns") {
        (n, 1u64)
    } else if let Some(n) = s.strip_suffix("us") {
        (n, 1_000)
    } else if let Some(n) = s.strip_suffix("ms") {
        (n, 1_000_000)
    } else if let Some(n) = s.strip_suffix('m') {
        (n, 60_000_000_000)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1_000_000_000)
    } else {
        (s, 1_000_000_000) // bare numbers are seconds
    };
    let num: f64 = num
        .trim()
        .parse()
        .map_err(|_| format!("bad duration {s:?}"))?;
    if num < 0.0 {
        return Err(format!("negative duration {s:?}"));
    }
    Ok((num * mult as f64) as u64)
}

fn rule_from_fields(lineno: usize, fields: &[(String, String)]) -> Result<AlertRule, String> {
    let get = |want: &str| {
        fields
            .iter()
            .find(|(k, _)| k == want)
            .map(|(_, v)| v.as_str())
    };
    let ctx = |msg: String| format!("rule at line {lineno}: {msg}");
    let name = get("name").ok_or_else(|| ctx("missing name".into()))?;
    let metric = get("metric").ok_or_else(|| ctx("missing metric".into()))?;
    let kind = get("kind").unwrap_or("threshold");
    let op = match get("op").unwrap_or(">") {
        ">" | "gt" => Op::Gt,
        "<" | "lt" => Op::Lt,
        other => return Err(ctx(format!("unknown op {other:?}"))),
    };
    let value = match get("value") {
        Some(v) => Some(
            v.parse::<f64>()
                .map_err(|_| ctx(format!("bad value {v:?}")))?,
        ),
        None => None,
    };
    let predicate = match kind {
        "threshold" => Predicate::Threshold {
            op,
            value: value.ok_or_else(|| ctx("threshold rule needs value".into()))?,
        },
        "rate" => Predicate::Rate {
            op,
            per_second: value.ok_or_else(|| ctx("rate rule needs value".into()))?,
        },
        "absence" => Predicate::Absence,
        other => return Err(ctx(format!("unknown kind {other:?}"))),
    };
    let stat = match get("stat").unwrap_or("value") {
        "value" => Stat::Value,
        "count" => Stat::Count,
        "sum" => Stat::Sum,
        "mean" => Stat::Mean,
        "p50" => Stat::P50,
        "p90" => Stat::P90,
        "p99" => Stat::P99,
        "max" => Stat::Max,
        other => return Err(ctx(format!("unknown stat {other:?}"))),
    };
    let mut labels = Vec::new();
    if let Some(spec) = get("labels") {
        for pair in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| ctx(format!("label without '=': {pair:?}")))?;
            labels.push((k.trim().to_string(), v.trim().to_string()));
        }
    }
    let for_ns = match get("for") {
        Some(d) => parse_duration_ns(d).map_err(ctx)?,
        None => 0,
    };
    let hysteresis = match get("hysteresis") {
        Some(h) => h
            .parse::<f64>()
            .map_err(|_| ctx(format!("bad hysteresis {h:?}")))?,
        None => 0.0,
    };
    for (key, _) in fields {
        if !matches!(
            key.as_str(),
            "name" | "metric" | "kind" | "op" | "value" | "stat" | "labels" | "for" | "hysteresis"
        ) {
            return Err(ctx(format!("unknown key {key:?}")));
        }
    }
    Ok(AlertRule {
        name: name.to_string(),
        metric: metric.to_string(),
        labels,
        stat,
        predicate,
        for_ns,
        hysteresis,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn threshold_fires_and_resolves() {
        let reg = Registry::new();
        let g = reg.gauge("pq_serve_queue_depth", &[]);
        let mut eng = AlertEngine::new(vec![AlertRule::threshold(
            "deep-queue",
            "pq_serve_queue_depth",
            Op::Gt,
            10.0,
        )]);
        g.set(5);
        assert!(eng.evaluate(0, &reg.snapshot()).is_empty());
        g.set(20);
        let events = eng.evaluate(1, &reg.snapshot());
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, AlertKind::Firing);
        assert!(events[0].reason.contains("pq_serve_queue_depth"));
        assert_eq!(eng.firing(), vec!["deep-queue".to_string()]);
        g.set(3);
        let events = eng.evaluate(2, &reg.snapshot());
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, AlertKind::Resolved);
        assert!(eng.firing().is_empty());
    }

    #[test]
    fn for_duration_debounces() {
        let reg = Registry::new();
        let g = reg.gauge("g", &[]);
        let mut eng = AlertEngine::new(vec![
            AlertRule::threshold("blip", "g", Op::Gt, 10.0).with_for_ns(5)
        ]);
        g.set(20);
        assert!(eng.evaluate(0, &reg.snapshot()).is_empty()); // pending
        assert_eq!(eng.statuses()[0].state, "pending");
        g.set(1);
        assert!(eng.evaluate(2, &reg.snapshot()).is_empty()); // blip: back to ok
        assert_eq!(eng.statuses()[0].state, "ok");
        g.set(20);
        assert!(eng.evaluate(3, &reg.snapshot()).is_empty()); // pending again
        let events = eng.evaluate(9, &reg.snapshot()); // persisted >= 5ns
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, AlertKind::Firing);
        assert!(events[0].reason.contains("for"));
    }

    #[test]
    fn hysteresis_prevents_flapping() {
        let reg = Registry::new();
        let g = reg.gauge("g", &[]);
        let mut eng = AlertEngine::new(vec![
            AlertRule::threshold("h", "g", Op::Gt, 100.0).with_hysteresis(0.2)
        ]);
        g.set(150);
        assert_eq!(eng.evaluate(0, &reg.snapshot()).len(), 1);
        // Dips below the threshold but inside the hysteresis band: holds.
        g.set(90);
        assert!(eng.evaluate(1, &reg.snapshot()).is_empty());
        assert_eq!(eng.statuses()[0].state, "firing");
        // Retreats past threshold*(1-h): resolves.
        g.set(79);
        let events = eng.evaluate(2, &reg.snapshot());
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, AlertKind::Resolved);
    }

    #[test]
    fn rate_rule_is_reset_safe() {
        let reg = Registry::new();
        let c = reg.counter("c", &[]);
        let mut eng = AlertEngine::new(vec![AlertRule::rate("fast", "c", Op::Gt, 5.0)]);
        c.add(3);
        // First evaluation only primes the previous snapshot.
        assert!(eng.evaluate(0, &reg.snapshot()).is_empty());
        c.add(20);
        // 20 events over 1s = 20/s > 5/s.
        let events = eng.evaluate(1_000_000_000, &reg.snapshot());
        assert_eq!(events.len(), 1);
        assert!(events[0].reason.contains("rate(c)"));
        // A counter reset must not produce a negative (or huge) rate: a
        // fresh registry restarts the counter at 2 → rate 2/s, resolves.
        let fresh = Registry::new();
        fresh.counter("c", &[]).add(2);
        let events = eng.evaluate(2_000_000_000, &fresh.snapshot());
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, AlertKind::Resolved);
    }

    #[test]
    fn absence_rule_fires_until_series_appears() {
        let reg = Registry::new();
        let mut eng = AlertEngine::new(vec![AlertRule::absence("silent", "pq_thing_total")]);
        let events = eng.evaluate(0, &reg.snapshot());
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, AlertKind::Firing);
        assert!(events[0].reason.contains("absent"));
        reg.counter("pq_thing_total", &[]).inc();
        let events = eng.evaluate(1, &reg.snapshot());
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, AlertKind::Resolved);
    }

    #[test]
    fn histogram_stats_and_label_narrowing() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[("kind", "replay")]);
        for _ in 0..100 {
            h.record(1000);
        }
        let rule = AlertRule::threshold("p99", "lat", Op::Gt, 100.0)
            .with_stat(Stat::P99)
            .with_label("kind", "replay");
        let mut eng = AlertEngine::new(vec![rule]);
        let events = eng.evaluate(0, &reg.snapshot());
        assert_eq!(events.len(), 1, "p99 ~1000 > 100 must fire");
        // A rule narrowed to a label no series carries sees nothing.
        let other = AlertRule::threshold("none", "lat", Op::Gt, 0.0).with_label("kind", "live");
        let mut eng = AlertEngine::new(vec![other]);
        assert!(eng.evaluate(0, &reg.snapshot()).is_empty());
    }

    #[test]
    fn rules_file_parses() {
        let text = r#"
# watch rules
[[rule]]
name = "shed-storm"
metric = "pq_serve_shed_total"
kind = "rate"
op = ">"
value = 10.5
for = "5s"
hysteresis = 0.1

[[rule]]
name = "no-requests"
metric = "pq_serve_requests_total"
kind = "absence"
labels = "kind=replay"

[[rule]]
name = "slow-p99"
metric = "pq_serve_request_ns"
stat = "p99"
value = 50000000
"#;
        let rules = parse_rules(text).unwrap();
        assert_eq!(rules.len(), 3);
        assert_eq!(
            rules[0].predicate,
            Predicate::Rate {
                op: Op::Gt,
                per_second: 10.5
            }
        );
        assert_eq!(rules[0].for_ns, 5_000_000_000);
        assert_eq!(rules[0].hysteresis, 0.1);
        assert_eq!(rules[1].predicate, Predicate::Absence);
        assert_eq!(
            rules[1].labels,
            vec![("kind".to_string(), "replay".to_string())]
        );
        assert_eq!(rules[2].stat, Stat::P99);
        assert!(matches!(
            rules[2].predicate,
            Predicate::Threshold { op: Op::Gt, .. }
        ));
    }

    #[test]
    fn rules_file_rejects_typos() {
        assert!(parse_rules("[[rule]]\nname = \"x\"\nmetrics = \"y\"").is_err());
        assert!(parse_rules("[[rule]]\nname = \"x\"\nmetric = \"y\"\nkind = \"ratio\"").is_err());
        assert!(parse_rules("name = \"orphan\"").is_err());
        assert!(parse_rules("[[rule]]\nname = \"x\"\nmetric = \"y\"\nfor = \"-1s\"").is_err());
        // Threshold without a value is an error, not a silent 0.
        assert!(parse_rules("[[rule]]\nname = \"x\"\nmetric = \"y\"").is_err());
    }

    #[test]
    fn durations_parse_with_suffixes() {
        assert_eq!(parse_duration_ns("250ms").unwrap(), 250_000_000);
        assert_eq!(parse_duration_ns("5s").unwrap(), 5_000_000_000);
        assert_eq!(parse_duration_ns("2m").unwrap(), 120_000_000_000);
        assert_eq!(parse_duration_ns("100ns").unwrap(), 100);
        assert_eq!(parse_duration_ns("3").unwrap(), 3_000_000_000);
        assert!(parse_duration_ns("fast").is_err());
    }
}
