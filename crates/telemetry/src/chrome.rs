//! Chrome trace-event JSON export for recorded spans.
//!
//! Emits the JSON-array form of the trace-event format: one complete
//! (`"ph":"X"`) event per span, loadable directly in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`. The format wants
//! microsecond timestamps; the sim clock is nanoseconds, so `ts` and
//! `dur` are written as fractional microseconds with nanosecond precision
//! preserved (`1234 ns` → `1.234`). Each span's `track` becomes its `tid`,
//! laying per-port work out on separate rows.

use std::fmt::Write as _;

use crate::spans::SpanEvent;

/// Render spans as a Chrome trace-event JSON array, sorted by start time.
///
/// The output is valid JSON even for an empty span list (`[]`), and events
/// are emitted in non-decreasing `ts` order — viewers do not require this,
/// but it makes the file diff-stable and simple to assert on in tests.
pub fn to_chrome_trace(spans: &[SpanEvent]) -> String {
    let mut sorted: Vec<&SpanEvent> = spans.iter().collect();
    sorted.sort_by_key(|s| (s.start, s.end, s.track));

    let mut out = String::from("[");
    for (i, span) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n  {{\"name\": \"{}\", \"cat\": \"pq\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": {}}}",
            escape(span.name),
            micros(span.start),
            micros(span.duration()),
            span.track
        );
    }
    if !sorted.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out.push('\n');
    out
}

/// Stitch request traces — possibly collected from several processes —
/// into one Chrome trace-event JSON timeline.
///
/// Each distinct span `process` becomes a Chrome `pid` (with a
/// `process_name` metadata event so viewers label the row group), and
/// within a process, overlapping spans are laid out greedily on separate
/// `tid` lanes. Timestamps are the spans' Unix-epoch nanoseconds rebased
/// to the earliest span in the input, so the timeline starts at zero and
/// cross-process causality reads left to right.
pub fn traces_to_chrome(traces: &[crate::trace::Trace]) -> String {
    let mut spans: Vec<(u128, &crate::trace::TraceSpan)> = traces
        .iter()
        .flat_map(|t| t.spans.iter().map(move |s| (t.trace_id, s)))
        .collect();
    spans.sort_by(|(_, a), (_, b)| {
        (a.start_ns, a.end_ns, a.process.as_str(), a.span_id).cmp(&(
            b.start_ns,
            b.end_ns,
            b.process.as_str(),
            b.span_id,
        ))
    });
    let base = spans.first().map_or(0, |(_, s)| s.start_ns);

    let mut processes: Vec<&str> = spans.iter().map(|(_, s)| s.process.as_str()).collect();
    processes.sort_unstable();
    processes.dedup();
    let pid_of = |p: &str| processes.iter().position(|q| *q == p).unwrap_or(0) as u32 + 1;

    // Greedy lane assignment per process: a span takes the first lane
    // whose previous occupant has already ended.
    let mut lanes: std::collections::HashMap<&str, Vec<u64>> = std::collections::HashMap::new();

    let mut out = String::from("[");
    let mut first = true;
    for p in &processes {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\n  {{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {}, \"tid\": 0, \"args\": {{\"name\": \"{}\"}}}}",
            pid_of(p),
            escape(p)
        );
    }
    for (trace_id, span) in &spans {
        let ends = lanes.entry(span.process.as_str()).or_default();
        let lane = match ends.iter().position(|&end| end <= span.start_ns) {
            Some(i) => {
                ends[i] = span.end_ns;
                i
            }
            None => {
                ends.push(span.end_ns);
                ends.len() - 1
            }
        };
        if !first {
            out.push(',');
        }
        first = false;
        let label = if span.tag.is_empty() {
            escape(&span.name)
        } else {
            format!("{} [{}]", escape(&span.name), escape(&span.tag))
        };
        let _ = write!(
            out,
            "\n  {{\"name\": \"{}\", \"cat\": \"pq-trace\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": {}, \"tid\": {}, \"args\": {{\"trace_id\": \"{:032x}\", \"span_id\": \"{:016x}\", \"parent_span\": \"{:016x}\"}}}}",
            label,
            micros(span.start_ns - base),
            micros(span.duration_ns()),
            pid_of(&span.process),
            lane + 1,
            trace_id,
            span.span_id,
            span.parent_span,
        );
    }
    if !first {
        out.push('\n');
    }
    out.push(']');
    out.push('\n');
    out
}

/// Nanoseconds as fractional microseconds, with trailing zeros trimmed so
/// whole-microsecond values print as integers.
fn micros(ns: u64) -> String {
    let whole = ns / 1_000;
    let frac = ns % 1_000;
    if frac == 0 {
        format!("{whole}")
    } else {
        let s = format!("{whole}.{frac:03}");
        s.trim_end_matches('0').to_string()
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, start: u64, end: u64, track: u32) -> SpanEvent {
        SpanEvent {
            name,
            start,
            end,
            track,
        }
    }

    #[test]
    fn empty_trace_is_valid_json() {
        assert_eq!(to_chrome_trace(&[]).trim(), "[]");
    }

    #[test]
    fn events_are_sorted_and_in_microseconds() {
        let spans = vec![
            span("late", 5_000, 9_000, 1),
            span("early", 1_500, 2_000, 0),
        ];
        let text = to_chrome_trace(&spans);
        let early = text.find("early").unwrap();
        let late = text.find("late").unwrap();
        assert!(early < late);
        assert!(text.contains("\"ts\": 1.5"));
        assert!(text.contains("\"dur\": 0.5"));
        assert!(text.contains("\"ts\": 5"));
        assert!(text.contains("\"dur\": 4"));
        assert!(text.contains("\"tid\": 1"));
        assert!(text.contains("\"ph\": \"X\""));
    }

    #[test]
    fn output_parses_as_json() {
        let spans = vec![span("a", 0, 10, 0), span("b", 3, 7, 2)];
        let text = to_chrome_trace(&spans);
        let value = serde_json_parse_smoke(&text);
        assert!(value, "trace output must be parseable JSON: {text}");
    }

    // A tiny structural JSON validity check (balanced brackets/quotes and
    // no trailing garbage) — the full parser-based check lives in
    // tests/telemetry.rs where serde_json is available.
    fn serde_json_parse_smoke(text: &str) -> bool {
        let t = text.trim();
        t.starts_with('[') && t.ends_with(']') && t.matches('{').count() == t.matches('}').count()
    }

    #[test]
    fn stitched_traces_get_per_process_pids_and_lanes() {
        use crate::trace::{Trace, TraceSpan};
        let ts = |name: &str, process: &str, start: u64, end: u64| TraceSpan {
            span_id: start + 1,
            parent_span: 0,
            name: name.to_string(),
            process: process.to_string(),
            tag: String::new(),
            start_ns: start,
            end_ns: end,
        };
        let traces = vec![Trace {
            trace_id: 0xabc,
            root_span: 1,
            duration_ns: 100,
            slow: false,
            spans: vec![
                ts("route", "router", 1_000, 1_100),
                // Two overlapping serve spans: must land on distinct lanes.
                ts("worker_exec", "serve:a", 1_010, 1_090),
                ts("segment_decode", "serve:a", 1_020, 1_080),
            ],
        }];
        let text = traces_to_chrome(&traces);
        // Two processes → two process_name metadata events + pids 1 and 2.
        assert_eq!(text.matches("process_name").count(), 2);
        assert!(text.contains("\"name\": \"router\""));
        assert!(text.contains("\"name\": \"serve:a\""));
        // Overlap within serve:a forces lane 2.
        assert!(text.contains("\"tid\": 2"));
        // Timeline is rebased to the earliest span.
        assert!(text.contains("\"ts\": 0,"));
        // The trace id rides along for alert → trace linkage.
        assert!(text.contains(&format!("{:032x}", 0xabcu128)));
        assert!(serde_json_parse_smoke(&text));
    }

    #[test]
    fn stitching_no_traces_is_valid_json() {
        assert_eq!(traces_to_chrome(&[]).trim(), "[]");
    }

    #[test]
    fn micros_preserves_ns_precision() {
        assert_eq!(micros(0), "0");
        assert_eq!(micros(1_000), "1");
        assert_eq!(micros(1_234), "1.234");
        assert_eq!(micros(1_230), "1.23");
        assert_eq!(micros(999), "0.999");
    }
}
