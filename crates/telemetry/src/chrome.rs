//! Chrome trace-event JSON export for recorded spans.
//!
//! Emits the JSON-array form of the trace-event format: one complete
//! (`"ph":"X"`) event per span, loadable directly in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`. The format wants
//! microsecond timestamps; the sim clock is nanoseconds, so `ts` and
//! `dur` are written as fractional microseconds with nanosecond precision
//! preserved (`1234 ns` → `1.234`). Each span's `track` becomes its `tid`,
//! laying per-port work out on separate rows.

use std::fmt::Write as _;

use crate::spans::SpanEvent;

/// Render spans as a Chrome trace-event JSON array, sorted by start time.
///
/// The output is valid JSON even for an empty span list (`[]`), and events
/// are emitted in non-decreasing `ts` order — viewers do not require this,
/// but it makes the file diff-stable and simple to assert on in tests.
pub fn to_chrome_trace(spans: &[SpanEvent]) -> String {
    let mut sorted: Vec<&SpanEvent> = spans.iter().collect();
    sorted.sort_by_key(|s| (s.start, s.end, s.track));

    let mut out = String::from("[");
    for (i, span) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n  {{\"name\": \"{}\", \"cat\": \"pq\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": {}}}",
            escape(span.name),
            micros(span.start),
            micros(span.duration()),
            span.track
        );
    }
    if !sorted.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out.push('\n');
    out
}

/// Nanoseconds as fractional microseconds, with trailing zeros trimmed so
/// whole-microsecond values print as integers.
fn micros(ns: u64) -> String {
    let whole = ns / 1_000;
    let frac = ns % 1_000;
    if frac == 0 {
        format!("{whole}")
    } else {
        let s = format!("{whole}.{frac:03}");
        s.trim_end_matches('0').to_string()
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, start: u64, end: u64, track: u32) -> SpanEvent {
        SpanEvent {
            name,
            start,
            end,
            track,
        }
    }

    #[test]
    fn empty_trace_is_valid_json() {
        assert_eq!(to_chrome_trace(&[]).trim(), "[]");
    }

    #[test]
    fn events_are_sorted_and_in_microseconds() {
        let spans = vec![
            span("late", 5_000, 9_000, 1),
            span("early", 1_500, 2_000, 0),
        ];
        let text = to_chrome_trace(&spans);
        let early = text.find("early").unwrap();
        let late = text.find("late").unwrap();
        assert!(early < late);
        assert!(text.contains("\"ts\": 1.5"));
        assert!(text.contains("\"dur\": 0.5"));
        assert!(text.contains("\"ts\": 5"));
        assert!(text.contains("\"dur\": 4"));
        assert!(text.contains("\"tid\": 1"));
        assert!(text.contains("\"ph\": \"X\""));
    }

    #[test]
    fn output_parses_as_json() {
        let spans = vec![span("a", 0, 10, 0), span("b", 3, 7, 2)];
        let text = to_chrome_trace(&spans);
        let value = serde_json_parse_smoke(&text);
        assert!(value, "trace output must be parseable JSON: {text}");
    }

    // A tiny structural JSON validity check (balanced brackets/quotes and
    // no trailing garbage) — the full parser-based check lives in
    // tests/telemetry.rs where serde_json is available.
    fn serde_json_parse_smoke(text: &str) -> bool {
        let t = text.trim();
        t.starts_with('[') && t.ends_with(']') && t.matches('{').count() == t.matches('}').count()
    }

    #[test]
    fn micros_preserves_ns_precision() {
        assert_eq!(micros(0), "0");
        assert_eq!(micros(1_000), "1");
        assert_eq!(micros(1_234), "1.234");
        assert_eq!(micros(1_230), "1.23");
        assert_eq!(micros(999), "0.999");
    }
}
