//! pq-telemetry: the reproduction's own observability plane.
//!
//! PrintQueue diagnoses *other* systems' queues; this crate lets the
//! reproduction diagnose itself. The design follows the shape of in-switch
//! histogram monitoring (P4TG-style log-bucketed RTT histograms) and
//! Rust-native runtime control planes with first-class metrics (RBFRT):
//! keep the hot path to a handful of relaxed atomic operations, and expose
//! everything through one uniform registry.
//!
//! Three layers:
//!
//! * [`registry`] — named counters, gauges, and log2-bucketed histograms.
//!   Handles are `Arc`-backed atomics: recording never locks, never
//!   allocates, and is safe from any thread. Registration (cold path)
//!   takes a mutex. Snapshots are plain data with an **associative**
//!   [`RegistrySnapshot::merge`], so fleet-level rollups are just folds.
//! * [`spans`] — nanosecond sim-clock span tracing (enqueue→dequeue
//!   residence, freeze-and-read, window rotation, segment flush, replay
//!   query) into a bounded ring buffer. Off by default: a disabled tracer
//!   costs one relaxed atomic load per call site. Toggle at runtime with
//!   [`Telemetry::set_tracing`].
//! * exporters — [`prometheus`] text exposition (plus a parser for
//!   smoke-testing it) and [`chrome`] trace-event JSON loadable in
//!   Perfetto or `chrome://tracing`.
//!
//! The [`Telemetry`] handle bundles a registry and a tracer and clones
//! cheaply (it is internally `Arc`-shared), so the switch, the control
//! plane, and the store can all record into the same namespace. Every
//! metric name this workspace emits is a constant in [`names`] — one
//! place to grep, one schema to document (DESIGN.md §9).

pub mod alerts;
pub mod chrome;
pub mod delta;
pub mod histogram;
pub mod prometheus;
pub mod provenance;
pub mod registry;
pub mod spans;
pub mod trace;

pub use alerts::{
    parse_rules, AlertEngine, AlertEvent, AlertKind, AlertRule, AlertStatus, Op, Predicate, Stat,
};
pub use chrome::{to_chrome_trace, traces_to_chrome};
pub use delta::{changed, counter_delta, delta, rate_per_sec, GaugeHistory};
pub use histogram::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, BucketExemplar, Histogram,
    HistogramSnapshot, NUM_BUCKETS,
};
pub use prometheus::{
    parse_exposition, parse_prometheus, to_prometheus, MetricMeta, ParsedExposition, ParsedMetric,
};
pub use registry::{Counter, Gauge, MetricKey, MetricValue, Registry, RegistrySnapshot};
pub use spans::{SpanEvent, SpanTracer};
pub use trace::{
    new_trace_id, trace_from_json, trace_to_json, traces_from_jsonl, ActiveTrace, Trace,
    TraceClock, TraceContext, TraceSink, TraceSpan, TraceStore, SAMPLE_ALWAYS_PPM,
};

use std::sync::Arc;

/// Canonical metric and span names — the telemetry schema.
///
/// Conventions: every metric is prefixed `pq_<crate>_`; counters end in
/// `_total`; histograms carry their unit as a suffix (`_ns`, `_bytes`);
/// per-port series use a `port` label. Span names are verbs describing the
/// unit of work the span covers.
pub mod names {
    // -- pq-switch ---------------------------------------------------------
    /// Packets admitted to a port's queue (counter, label `port`).
    pub const SWITCH_ENQUEUED: &str = "pq_switch_enqueued_total";
    /// Packets transmitted from a port (counter, label `port`).
    pub const SWITCH_DEQUEUED: &str = "pq_switch_dequeued_total";
    /// Packets tail-dropped at a port (counter, label `port`).
    pub const SWITCH_DROPPED: &str = "pq_switch_dropped_total";
    /// Bytes transmitted from a port (counter, label `port`).
    pub const SWITCH_TX_BYTES: &str = "pq_switch_tx_bytes_total";
    /// Per-packet queue residence, enqueue→dequeue (histogram, ns,
    /// label `port`).
    pub const SWITCH_RESIDENCE_NS: &str = "pq_switch_residence_ns";
    /// Highest queue depth observed (gauge, cells, label `port`).
    pub const SWITCH_MAX_DEPTH_CELLS: &str = "pq_switch_max_depth_cells";

    // -- pq-core control plane --------------------------------------------
    /// Freeze-and-read attempts, first tries and retries alike (counter).
    pub const CONTROL_POLLS_ATTEMPTED: &str = "pq_control_polls_attempted_total";
    /// Attempts that failed outright (counter).
    pub const CONTROL_POLLS_FAILED: &str = "pq_control_polls_failed_total";
    /// Attempts that were retries of earlier failures (counter).
    pub const CONTROL_POLLS_RETRIED: &str = "pq_control_polls_retried_total";
    /// Attempts rejected inside an injected stall window (counter).
    pub const CONTROL_POLLS_STALLED: &str = "pq_control_polls_stalled_total";
    /// Checkpoints successfully stored (counter).
    pub const CONTROL_CHECKPOINTS_STORED: &str = "pq_control_checkpoints_stored_total";
    /// Checkpoints read but lost before storage (counter).
    pub const CONTROL_CHECKPOINTS_DROPPED: &str = "pq_control_checkpoints_dropped_total";
    /// Coverage gaps recorded (counter).
    pub const CONTROL_COVERAGE_GAPS: &str = "pq_control_coverage_gaps_total";
    /// Nanoseconds covered by recorded gaps (counter).
    pub const CONTROL_GAP_NS: &str = "pq_control_gap_ns_total";
    /// Failures whose backoff had reached the policy ceiling (counter).
    pub const CONTROL_BACKOFF_CEILING: &str = "pq_control_backoff_ceiling_total";
    /// Data-plane triggers rejected while a special read was out (counter).
    pub const CONTROL_DP_REJECTED: &str = "pq_control_dp_triggers_rejected_total";
    /// Checkpoint-spill sink writes that failed (counter).
    pub const CONTROL_SPILL_ERRORS: &str = "pq_control_spill_errors_total";
    /// Register entries read across PCIe (counter).
    pub const CONTROL_ENTRIES_READ: &str = "pq_control_entries_read_total";
    /// Bytes read across PCIe (counter).
    pub const CONTROL_BYTES_READ: &str = "pq_control_bytes_read_total";
    /// Freeze-and-read sim-time duration (histogram, ns).
    pub const CONTROL_READ_NS: &str = "pq_control_read_ns";

    // -- pq-store ----------------------------------------------------------
    /// Checkpoints appended to a store (counter).
    pub const STORE_CHECKPOINTS_WRITTEN: &str = "pq_store_checkpoints_written_total";
    /// Segments sealed to disk (counter).
    pub const STORE_SEGMENTS_SEALED: &str = "pq_store_segments_sealed_total";
    /// Encoded segment bytes written, framing included (counter).
    pub const STORE_BYTES_WRITTEN: &str = "pq_store_bytes_written_total";
    /// Sealed segment size (histogram, bytes).
    pub const STORE_SEGMENT_BYTES: &str = "pq_store_segment_bytes";
    /// Segments decoded by a reader (counter).
    pub const STORE_SEGMENTS_DECODED: &str = "pq_store_segments_decoded_total";
    /// Checkpoints decoded by a reader (counter).
    pub const STORE_CHECKPOINTS_DECODED: &str = "pq_store_checkpoints_decoded_total";
    /// Replay-query wall-clock latency (histogram, ns).
    pub const STORE_REPLAY_QUERY_NS: &str = "pq_store_replay_query_ns";

    // -- pq-serve ----------------------------------------------------------
    /// Query requests executed to completion, label `kind` ∈
    /// {`time_windows`, `queue_monitor`, `replay`, `metrics`} (counter).
    pub const SERVE_REQUESTS: &str = "pq_serve_requests_total";
    /// Requests that ended in a typed error frame (counter, label `kind`).
    pub const SERVE_ERRORS: &str = "pq_serve_errors_total";
    /// Requests shed with a `Busy` frame — admission-queue overflow,
    /// per-connection in-flight cap, or accept-time connection cap
    /// (counter).
    pub const SERVE_SHED: &str = "pq_serve_shed_total";
    /// Wall-clock latency from admission to response flush (histogram, ns).
    pub const SERVE_REQUEST_NS: &str = "pq_serve_request_ns";
    /// Current admission-queue depth (gauge).
    pub const SERVE_QUEUE_DEPTH: &str = "pq_serve_queue_depth";
    /// Connections accepted (counter).
    pub const SERVE_CONNECTIONS: &str = "pq_serve_connections_total";
    /// Segment-decode cache hits (counter).
    pub const SERVE_CACHE_HIT: &str = "pq_serve_cache_hit_total";
    /// Segment-decode cache misses (counter).
    pub const SERVE_CACHE_MISS: &str = "pq_serve_cache_miss_total";
    /// Segments evicted from the decode cache (counter).
    pub const SERVE_CACHE_EVICTIONS: &str = "pq_serve_cache_evictions_total";
    /// Approximate bytes of decoded checkpoints held by the cache (gauge).
    pub const SERVE_CACHE_BYTES: &str = "pq_serve_cache_bytes";
    /// Seconds since the serve daemon started (gauge).
    pub const SERVE_UPTIME: &str = "pq_serve_uptime_seconds";
    /// Metrics subscriptions currently attached to the daemon (gauge).
    pub const SERVE_SUBSCRIBERS: &str = "pq_serve_subscribers";
    /// Subscription snapshot updates pushed to watchers (counter).
    pub const SERVE_METRIC_UPDATES: &str = "pq_serve_metric_updates_total";

    // -- pq-router ---------------------------------------------------------
    /// Queries routed to completion, label `kind` ∈ {`time_windows`,
    /// `queue_monitor`, `replay`} (counter).
    pub const ROUTER_REQUESTS: &str = "pq_router_requests_total";
    /// Routed queries that ended in an error frame to the caller (counter).
    pub const ROUTER_ERRORS: &str = "pq_router_errors_total";
    /// Backends a routed query fanned out to (histogram, count).
    pub const ROUTER_FANOUT: &str = "pq_router_fanout_backends";
    /// Per-backend sub-query wall-clock latency (histogram, ns, label
    /// `backend`).
    pub const ROUTER_BACKEND_NS: &str = "pq_router_backend_ns";
    /// Sub-queries that failed on one owner and were retried on a replica
    /// (counter).
    pub const ROUTER_FAILOVERS: &str = "pq_router_failovers_total";
    /// Sub-query retries against the same backend after `Busy` or a
    /// transient error (counter).
    pub const ROUTER_RETRIES: &str = "pq_router_retries_total";
    /// Backends moved into quarantine after repeated failures (counter).
    pub const ROUTER_QUARANTINES: &str = "pq_router_quarantines_total";
    /// Backends readmitted from quarantine by a health probe (counter).
    pub const ROUTER_READMISSIONS: &str = "pq_router_readmissions_total";
    /// Backends currently quarantined (gauge).
    pub const ROUTER_QUARANTINED: &str = "pq_router_quarantined_backends";
    /// Routed queries answered degraded because every owner of some shard
    /// was down (counter).
    pub const ROUTER_SHARD_UNAVAILABLE: &str = "pq_router_shard_unavailable_total";

    // -- pq-stream (standing-query evaluator, serve & router side) ---------
    /// Standing-query subscriptions currently registered (gauge).
    pub const STREAM_SUBSCRIPTIONS: &str = "pq_stream_subscriptions";
    /// Windows closed across all standing subscriptions (counter).
    pub const STREAM_WINDOWS_CLOSED: &str = "pq_stream_windows_closed_total";
    /// Records that arrived behind the watermark and were dropped
    /// (counter).
    pub const STREAM_LATE_RECORDS: &str = "pq_stream_late_records_total";
    /// Bounded-state evictions (counter, label `kind` ∈ {`topk`,
    /// `window`}).
    pub const STREAM_EVICTIONS: &str = "pq_stream_evictions_total";
    /// Fired window results pushed to standing-query clients (counter).
    pub const STREAM_RESULTS: &str = "pq_stream_results_total";

    // -- pq-rtt (passive RTT diagnosis) ------------------------------------
    /// RTT samples measured, seq-match and spin-bit combined (counter,
    /// label `port`).
    pub const RTT_SAMPLES: &str = "pq_rtt_samples_total";
    /// Measured round-trip times; each sample's exemplar carries the flow
    /// id (histogram, ns, label `port`).
    pub const RTT_SAMPLE_NS: &str = "pq_rtt_sample_ns";
    /// Packets lost to a flow slot owned by another live flow (gauge,
    /// label `port`).
    pub const RTT_COLLISIONS: &str = "pq_rtt_collisions";
    /// Idle flows displaced from their slot (gauge, label `port`).
    pub const RTT_EVICTIONS: &str = "pq_rtt_evictions";
    /// Samples or timestamps dropped to bounded state (gauge, label
    /// `port`).
    pub const RTT_SAMPLE_DROPS: &str = "pq_rtt_sample_drops";
    /// RTT queries answered by a serve daemon (counter).
    pub const RTT_QUERIES: &str = "pq_rtt_queries_total";
    /// RTT report merges performed while answering queries (counter).
    pub const RTT_MERGES: &str = "pq_rtt_merges_total";

    // -- pq-trace (request-scoped distributed tracing) ---------------------
    /// Anonymous ring-buffer spans overwritten because the ring was full
    /// (counter; surfaces silent span loss so it is `--require`-gateable).
    pub const TRACE_SPANS_DROPPED: &str = "pq_trace_spans_dropped_total";
    /// Request traces committed to the per-process trace store (counter).
    pub const TRACE_COMMITTED: &str = "pq_trace_committed_total";
    /// Committed traces evicted from the recent ring (counter).
    pub const TRACE_DROPPED: &str = "pq_trace_dropped_total";

    // -- pq-prof (continuous profiler) --------------------------------------
    /// Scope-stack samples captured by the profiling ticker (counter).
    pub const PROF_SAMPLES: &str = "pq_prof_samples_total";
    /// Stack samples dropped because the collapsed-stack map was full
    /// (counter; CI-gated so silent sample loss fails loudly).
    pub const PROF_SAMPLES_DROPPED: &str = "pq_prof_samples_dropped_total";
    /// Exact per-scope self wall time, total minus named children
    /// (counter, ns, label `scope`).
    pub const PROF_SCOPE_SELF_NS: &str = "pq_prof_scope_self_ns_total";
    /// Exact per-scope entry count (counter, label `scope`).
    pub const PROF_SCOPE_CALLS: &str = "pq_prof_scope_calls_total";
    /// Time from requesting a named lock to holding it (histogram, ns,
    /// label `lock`) — the regression gate for the ROADMAP lock-removal
    /// refactors.
    pub const LOCK_WAIT_NS: &str = "pq_lock_wait_ns";
    /// Time a named lock was held (histogram, ns, label `lock`).
    pub const LOCK_HOLD_NS: &str = "pq_lock_hold_ns";
    /// Acquisitions of a named lock (counter, label `lock`).
    pub const LOCK_ACQUISITIONS: &str = "pq_lock_acquisitions_total";
    /// Acquisitions that found the lock already held (counter, label
    /// `lock`).
    pub const LOCK_CONTENDED: &str = "pq_lock_contended_total";
    /// Acquisitions that recovered a poisoned lock (counter, label
    /// `lock`).
    pub const LOCK_POISONED: &str = "pq_lock_poisoned_total";

    // -- cross-crate -------------------------------------------------------
    /// Build provenance carrier: constant 1, labels `version`, `commit`.
    pub const BUILD_INFO: &str = "pq_build_info";

    // -- pqsim watch (client side) -----------------------------------------
    /// Subscription updates applied by a watch client (counter).
    pub const WATCH_UPDATES: &str = "pq_watch_updates_total";
    /// Metric series changed across applied updates (counter).
    pub const WATCH_SERIES_CHANGED: &str = "pq_watch_series_changed_total";
    /// Alert rules currently firing as seen by the watch client (gauge).
    pub const WATCH_ALERTS_FIRING: &str = "pq_watch_alerts_firing";
    /// Alert transitions observed (counter, label `kind` ∈ {`firing`,
    /// `resolved`}).
    pub const WATCH_ALERT_EVENTS: &str = "pq_watch_alert_events_total";

    /// One-line `# HELP` text for a metric name; a generic line for
    /// names outside the schema (exposition must never lack HELP).
    pub fn help(name: &str) -> &'static str {
        match name {
            SWITCH_ENQUEUED => "Packets admitted to a port's queue.",
            SWITCH_DEQUEUED => "Packets transmitted from a port.",
            SWITCH_DROPPED => "Packets tail-dropped at a port.",
            SWITCH_TX_BYTES => "Bytes transmitted from a port.",
            SWITCH_RESIDENCE_NS => "Per-packet queue residence, enqueue to dequeue, in ns.",
            SWITCH_MAX_DEPTH_CELLS => "Highest queue depth observed, in cells.",
            CONTROL_POLLS_ATTEMPTED => "Freeze-and-read attempts, first tries and retries alike.",
            CONTROL_POLLS_FAILED => "Freeze-and-read attempts that failed outright.",
            CONTROL_POLLS_RETRIED => "Attempts that were retries of earlier failures.",
            CONTROL_POLLS_STALLED => "Attempts rejected inside an injected stall window.",
            CONTROL_CHECKPOINTS_STORED => "Checkpoints successfully stored.",
            CONTROL_CHECKPOINTS_DROPPED => "Checkpoints read but lost before storage.",
            CONTROL_COVERAGE_GAPS => "Coverage gaps recorded.",
            CONTROL_GAP_NS => "Nanoseconds covered by recorded gaps.",
            CONTROL_BACKOFF_CEILING => "Failures whose backoff had reached the policy ceiling.",
            CONTROL_DP_REJECTED => "Data-plane triggers rejected while a special read was out.",
            CONTROL_SPILL_ERRORS => "Checkpoint-spill sink writes that failed.",
            CONTROL_ENTRIES_READ => "Register entries read across PCIe.",
            CONTROL_BYTES_READ => "Bytes read across PCIe.",
            CONTROL_READ_NS => "Freeze-and-read sim-time duration in ns.",
            STORE_CHECKPOINTS_WRITTEN => "Checkpoints appended to a store.",
            STORE_SEGMENTS_SEALED => "Segments sealed to disk.",
            STORE_BYTES_WRITTEN => "Encoded segment bytes written, framing included.",
            STORE_SEGMENT_BYTES => "Sealed segment size in bytes.",
            STORE_SEGMENTS_DECODED => "Segments decoded by a reader.",
            STORE_CHECKPOINTS_DECODED => "Checkpoints decoded by a reader.",
            STORE_REPLAY_QUERY_NS => "Replay-query wall-clock latency in ns.",
            SERVE_REQUESTS => "Query requests executed to completion, by kind.",
            SERVE_ERRORS => "Requests that ended in a typed error frame, by kind.",
            SERVE_SHED => "Requests shed with a Busy frame.",
            SERVE_REQUEST_NS => "Wall-clock latency from admission to response flush, in ns.",
            SERVE_QUEUE_DEPTH => "Current admission-queue depth.",
            SERVE_CONNECTIONS => "Connections accepted.",
            SERVE_CACHE_HIT => "Segment-decode cache hits.",
            SERVE_CACHE_MISS => "Segment-decode cache misses.",
            SERVE_CACHE_EVICTIONS => "Segments evicted from the decode cache.",
            SERVE_CACHE_BYTES => "Approximate bytes of decoded checkpoints held by the cache.",
            SERVE_UPTIME => "Seconds since the serve daemon started.",
            SERVE_SUBSCRIBERS => "Metrics subscriptions currently attached.",
            SERVE_METRIC_UPDATES => "Subscription snapshot updates pushed to watchers.",
            ROUTER_REQUESTS => "Queries routed to completion, by kind.",
            ROUTER_ERRORS => "Routed queries that ended in an error frame to the caller.",
            ROUTER_FANOUT => "Backends a routed query fanned out to.",
            ROUTER_BACKEND_NS => "Per-backend sub-query wall-clock latency in ns.",
            ROUTER_FAILOVERS => "Sub-queries retried on a replica after an owner failed.",
            ROUTER_RETRIES => "Sub-query retries against the same backend.",
            ROUTER_QUARANTINES => "Backends moved into quarantine after repeated failures.",
            ROUTER_READMISSIONS => "Backends readmitted from quarantine by a health probe.",
            ROUTER_QUARANTINED => "Backends currently quarantined.",
            ROUTER_SHARD_UNAVAILABLE => {
                "Routed queries degraded because every owner of a shard was down."
            }
            STREAM_SUBSCRIPTIONS => "Standing-query subscriptions currently registered.",
            STREAM_WINDOWS_CLOSED => "Windows closed across all standing subscriptions.",
            STREAM_LATE_RECORDS => "Stream records dropped for arriving behind the watermark.",
            STREAM_EVICTIONS => "Bounded-state evictions in standing subscriptions, by kind.",
            STREAM_RESULTS => "Fired window results pushed to standing-query clients.",
            RTT_SAMPLES => "RTT samples measured, seq-match and spin-bit combined.",
            RTT_SAMPLE_NS => "Measured round-trip times in ns; exemplars carry the flow id.",
            RTT_COLLISIONS => "Packets lost to a flow slot owned by another live flow.",
            RTT_EVICTIONS => "Idle flows displaced from their RTT table slot.",
            RTT_SAMPLE_DROPS => "RTT samples or timestamps dropped to bounded state.",
            RTT_QUERIES => "RTT queries answered by a serve daemon.",
            RTT_MERGES => "RTT report merges performed while answering queries.",
            PROF_SAMPLES => "Scope-stack samples captured by the profiling ticker.",
            PROF_SAMPLES_DROPPED => {
                "Stack samples dropped because the collapsed-stack map was full."
            }
            PROF_SCOPE_SELF_NS => {
                "Exact per-scope self wall time in ns, total minus named children."
            }
            PROF_SCOPE_CALLS => "Exact per-scope entry count.",
            LOCK_WAIT_NS => "Time from requesting a named lock to holding it, in ns.",
            LOCK_HOLD_NS => "Time a named lock was held, in ns.",
            LOCK_ACQUISITIONS => "Acquisitions of a named lock.",
            LOCK_CONTENDED => "Acquisitions that found the lock already held.",
            LOCK_POISONED => "Acquisitions that recovered a poisoned lock.",
            TRACE_SPANS_DROPPED => "Ring-buffer spans overwritten because the ring was full.",
            TRACE_COMMITTED => "Request traces committed to the per-process trace store.",
            TRACE_DROPPED => "Committed traces evicted from the recent-trace ring.",
            BUILD_INFO => "Build provenance: constant 1 with version and commit labels.",
            WATCH_UPDATES => "Subscription updates applied by this watch client.",
            WATCH_SERIES_CHANGED => "Metric series changed across applied updates.",
            WATCH_ALERTS_FIRING => "Alert rules currently firing.",
            WATCH_ALERT_EVENTS => "Alert transitions observed, by kind.",
            _ => "PrintQueue reproduction metric.",
        }
    }

    // -- span names --------------------------------------------------------
    /// One packet's enqueue→dequeue residence in a queue.
    pub const SPAN_RESIDENCE: &str = "enqueue_dequeue_residence";
    /// One control-plane freeze-and-read of a port's registers.
    pub const SPAN_FREEZE_READ: &str = "freeze_and_read";
    /// One set-period rotation of a port's time-window rings.
    pub const SPAN_WINDOW_ROTATION: &str = "window_rotation";
    /// One store segment sealed and flushed (covers the sim-time span of
    /// the checkpoints inside it).
    pub const SPAN_SEGMENT_FLUSH: &str = "segment_flush";
    /// One offline replay query (covers the queried sim-time interval).
    pub const SPAN_REPLAY_QUERY: &str = "replay_query";
    /// One served query, admission to response flush (wall-clock ns since
    /// server start — the serving plane has no sim clock).
    pub const SPAN_SERVE_REQUEST: &str = "serve_request";

    // -- distributed-trace span names (request-scoped, Unix-epoch ns) ------
    /// Router: one routed query end to end.
    pub const SPAN_ROUTE: &str = "route";
    /// Router: one failover retry of a shard sub-query on a replica.
    pub const SPAN_FAILOVER: &str = "failover";
    /// Router: merging per-shard partial results into the answer.
    pub const SPAN_MERGE: &str = "merge";
    /// Serve: time a request sat in the admission queue before a worker
    /// picked it up.
    pub const SPAN_ADMISSION_WAIT: &str = "admission_wait";
    /// Serve: worker execution, dequeue to response flush.
    pub const SPAN_WORKER_EXEC: &str = "worker_exec";
    /// Serve/store: decoding (or cache-fetching) the segments a replay
    /// query needs; tagged `cache=hit|miss|mixed`.
    pub const SPAN_SEGMENT_DECODE: &str = "segment_decode";
    /// Stream evaluator: closing fired windows for one subscription tick.
    pub const SPAN_WINDOW_CLOSE: &str = "window_close";
    /// Stream evaluator: pushing fired-window results to the subscriber.
    pub const SPAN_EMIT: &str = "emit";
    /// Serve: gathering and decoding the RTT reports one query needs.
    pub const SPAN_RTT_MEASURE: &str = "rtt_measure";
    /// Serve/router: folding partial RTT reports into one answer.
    pub const SPAN_RTT_MERGE: &str = "rtt_merge";
}

/// The shared observability handle: one registry, one span tracer, and
/// one request-trace store.
///
/// Cloning is cheap (all three halves are `Arc`-shared) and every clone
/// records into the same storage, so a single `Telemetry` can be handed to
/// the switch, the analysis program, and the store writer of one
/// simulation.
#[derive(Clone, Default)]
pub struct Telemetry {
    registry: Registry,
    spans: Arc<SpanTracer>,
    traces: Arc<trace::TraceStore>,
    /// When set, [`Telemetry::snapshot`] folds the process-global
    /// pq-prof state (scope self times, lock wait/hold histograms,
    /// sample counters) into the snapshot. Opt-in per plane: only the
    /// plane that *owns* the process view (a serve daemon, a router, a
    /// `pqsim` run) should set it — per-port fleet planes must not, or
    /// a fleet-level merge would count the process profile once per
    /// member.
    export_prof: Arc<std::sync::atomic::AtomicBool>,
}

impl Telemetry {
    /// A fresh, empty telemetry plane with tracing disabled.
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The span tracer.
    pub fn spans(&self) -> &SpanTracer {
        &self.spans
    }

    /// The request-scoped distributed-trace store.
    pub fn traces(&self) -> &trace::TraceStore {
        &self.traces
    }

    /// Enable or disable span tracing at runtime. Disabled tracing costs
    /// one relaxed atomic load per instrumentation site.
    pub fn set_tracing(&self, enabled: bool) {
        self.spans.set_enabled(enabled);
    }

    /// Is span tracing currently enabled?
    pub fn tracing_enabled(&self) -> bool {
        self.spans.is_enabled()
    }

    /// Fold the process-global profiler series (`pq_prof_*`,
    /// `pq_lock_*`) into every future [`Telemetry::snapshot`] of this
    /// plane. Set by the plane that owns the process view so lock-wait
    /// p99s and scope hotspots are queryable through every existing
    /// exposition path — the metrics wire, Prometheus text, `pqsim
    /// telemetry --require`, and `pqsim watch`.
    pub fn set_export_prof(&self, on: bool) {
        self.export_prof
            .store(on, std::sync::atomic::Ordering::Relaxed);
    }

    /// Does this plane's snapshot carry the profiler series?
    pub fn export_prof(&self) -> bool {
        self.export_prof.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Snapshot every metric (plain data; mergeable, exportable).
    ///
    /// The snapshot also carries the tracing loss counters
    /// (`pq_trace_spans_dropped_total`, `pq_trace_committed_total`,
    /// `pq_trace_dropped_total`) derived from the span ring and trace
    /// store, so silent span loss is visible in every exposition path —
    /// wire, Prometheus text, and `pqsim telemetry --require` alike.
    /// Counters merge by addition, so fleet rollups stay correct.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut snap = self.registry.snapshot();
        snap.insert(
            MetricKey::new(names::TRACE_SPANS_DROPPED, &[]),
            MetricValue::Counter(self.spans.dropped()),
        );
        snap.insert(
            MetricKey::new(names::TRACE_COMMITTED, &[]),
            MetricValue::Counter(self.traces.committed()),
        );
        snap.insert(
            MetricKey::new(names::TRACE_DROPPED, &[]),
            MetricValue::Counter(self.traces.dropped()),
        );
        if self.export_prof() {
            inject_prof(&mut snap);
        }
        snap
    }
}

/// Fold the process-global pq-prof state into a snapshot as ordinary
/// registry series. Lock histograms convert losslessly — pq-prof uses
/// the same 65-bucket log2 scheme — so `pq_lock_wait_ns{lock="freeze"}`
/// quantiles computed downstream match the profiler's own.
fn inject_prof(snap: &mut RegistrySnapshot) {
    let prof = pq_prof::ProfileReport::capture();
    snap.insert(
        MetricKey::new(names::PROF_SAMPLES, &[]),
        MetricValue::Counter(prof.samples_total),
    );
    snap.insert(
        MetricKey::new(names::PROF_SAMPLES_DROPPED, &[]),
        MetricValue::Counter(prof.samples_dropped),
    );
    for scope in &prof.scopes {
        let labels = [("scope", scope.name.as_str())];
        snap.insert(
            MetricKey::new(names::PROF_SCOPE_SELF_NS, &labels),
            MetricValue::Counter(scope.self_ns()),
        );
        snap.insert(
            MetricKey::new(names::PROF_SCOPE_CALLS, &labels),
            MetricValue::Counter(scope.calls),
        );
    }
    for lock in &prof.locks {
        let labels = [("lock", lock.name.as_str())];
        snap.insert(
            MetricKey::new(names::LOCK_ACQUISITIONS, &labels),
            MetricValue::Counter(lock.acquisitions),
        );
        snap.insert(
            MetricKey::new(names::LOCK_CONTENDED, &labels),
            MetricValue::Counter(lock.contended),
        );
        snap.insert(
            MetricKey::new(names::LOCK_POISONED, &labels),
            MetricValue::Counter(lock.poisoned),
        );
        snap.insert(
            MetricKey::new(names::LOCK_WAIT_NS, &labels),
            MetricValue::Histogram(Box::new(prof_hist(&lock.wait))),
        );
        snap.insert(
            MetricKey::new(names::LOCK_HOLD_NS, &labels),
            MetricValue::Histogram(Box::new(prof_hist(&lock.hold))),
        );
    }
}

/// Lossless pq-prof → pq-telemetry histogram conversion (identical
/// bucketing; prof histograms carry no exemplars).
fn prof_hist(h: &pq_prof::HistSnapshot) -> HistogramSnapshot {
    HistogramSnapshot {
        buckets: h.buckets,
        count: h.count,
        sum: h.sum,
        min: h.min,
        max: h.max,
        exemplars: Vec::new(),
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("metrics", &self.registry.len())
            .field("tracing", &self.tracing_enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let tel = Telemetry::new();
        let other = tel.clone();
        tel.registry().counter(names::SWITCH_ENQUEUED, &[]).inc();
        other.registry().counter(names::SWITCH_ENQUEUED, &[]).inc();
        let snap = tel.snapshot();
        assert_eq!(snap.counter(names::SWITCH_ENQUEUED, &[]), Some(2));
    }

    #[test]
    fn snapshot_carries_trace_loss_counters() {
        let tel = Telemetry::new();
        let snap = tel.snapshot();
        assert_eq!(snap.counter(names::TRACE_SPANS_DROPPED, &[]), Some(0));
        assert_eq!(snap.counter(names::TRACE_COMMITTED, &[]), Some(0));
        // Ring overwrites surface in the next snapshot.
        let small = SpanTracer::with_capacity(1);
        small.set_enabled(true);
        small.record("a", 0, 1, 0);
        small.record("b", 1, 2, 0);
        assert_eq!(small.dropped(), 1);
        // And trace commits do too, through any clone.
        tel.traces().commit(trace::Trace {
            trace_id: 1,
            root_span: 1,
            duration_ns: 5,
            slow: false,
            spans: Vec::new(),
        });
        let snap = tel.clone().snapshot();
        assert_eq!(snap.counter(names::TRACE_COMMITTED, &[]), Some(1));
    }

    #[test]
    fn export_prof_injects_lock_series() {
        let _g = pq_prof::test_lock();
        pq_prof::reset();
        let m = pq_prof::PqMutex::new("telemetry_test_lock", 0u32);
        *m.lock() += 1;
        let tel = Telemetry::new();
        // Off by default: no profiler series in the snapshot.
        assert!(tel
            .snapshot()
            .counter(names::LOCK_ACQUISITIONS, &[("lock", "telemetry_test_lock")])
            .is_none());
        tel.set_export_prof(true);
        let snap = tel.clone().snapshot();
        assert_eq!(
            snap.counter(names::LOCK_ACQUISITIONS, &[("lock", "telemetry_test_lock")]),
            Some(1)
        );
        let wait = snap
            .histogram(names::LOCK_WAIT_NS, &[("lock", "telemetry_test_lock")])
            .expect("wait histogram exported");
        assert_eq!(wait.count, 1);
        pq_prof::reset();
    }

    #[test]
    fn tracing_toggles_through_any_clone() {
        let tel = Telemetry::new();
        let other = tel.clone();
        assert!(!tel.tracing_enabled());
        other.set_tracing(true);
        assert!(tel.tracing_enabled());
        tel.spans().record(names::SPAN_FREEZE_READ, 10, 20, 0);
        assert_eq!(other.spans().snapshot().len(), 1);
    }
}
