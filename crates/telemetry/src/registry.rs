//! The metrics registry: named counters, gauges, and histograms.
//!
//! Registration is the cold path and takes a mutex; the handles it returns
//! ([`Counter`], [`Gauge`], [`crate::Histogram`]) are `Arc`-backed atomics,
//! so the hot path — `inc`, `add`, `set_max`, `record` — is lock-free,
//! alloc-free, and safe from any thread. Instrumented components are
//! expected to resolve their handles once at install time and keep them.
//!
//! Snapshots ([`RegistrySnapshot`]) are plain data ordered by metric key.
//! [`RegistrySnapshot::merge`] is associative and commutative (counters
//! add, gauges take the max, histograms add bucket-wise), which is what
//! makes fleet-level rollups a simple fold over per-switch snapshots.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::{Histogram, HistogramSnapshot};

/// A metric identity: name plus sorted `(label, value)` pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name, e.g. `pq_switch_enqueued_total`.
    pub name: String,
    /// Label pairs, sorted by label name.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Build a key from a name and unsorted label pairs (labels are
    /// canonicalized by sorting, so construction order never matters).
    pub fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

/// A monotonically increasing counter handle. Cloning shares storage.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins (or high-watermark) gauge handle.
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the value to `v` if `v` is larger (high-watermark use).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
        }
    }
}

/// The registry. Clones share the same underlying metric set.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<MetricKey, Slot>>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter `name{labels}`.
    ///
    /// # Panics
    /// If the key is already registered as a different metric kind — that
    /// is a programming error in the instrumentation, not a runtime state.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(key)
            .or_insert_with(|| Slot::Counter(Counter::default()))
        {
            Slot::Counter(c) => c.clone(),
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    /// Get or create the gauge `name{labels}`.
    ///
    /// # Panics
    /// If the key is already registered as a different metric kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(key)
            .or_insert_with(|| Slot::Gauge(Gauge::default()))
        {
            Slot::Gauge(g) => g.clone(),
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    /// Get or create the histogram `name{labels}`.
    ///
    /// # Panics
    /// If the key is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = MetricKey::new(name, labels);
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(key)
            .or_insert_with(|| Slot::Histogram(Histogram::new()))
        {
            Slot::Histogram(h) => h.clone(),
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    /// Number of registered metric series (distinct name+labels keys).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// True when nothing has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A plain-data copy of every metric's current value.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let map = self.inner.lock().unwrap();
        RegistrySnapshot {
            metrics: map
                .iter()
                .map(|(k, slot)| {
                    let value = match slot {
                        Slot::Counter(c) => MetricValue::Counter(c.get()),
                        Slot::Gauge(g) => MetricValue::Gauge(g.get()),
                        Slot::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                    };
                    (k.clone(), value)
                })
                .collect(),
        }
    }
}

/// The value half of a snapshot entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic count.
    Counter(u64),
    /// Point-in-time value.
    Gauge(u64),
    /// Full bucket state (boxed: a snapshot's bucket array dwarfs the
    /// scalar variants, and snapshots are cold-path data).
    Histogram(Box<HistogramSnapshot>),
}

/// A plain-data snapshot of a registry, ordered by metric key.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegistrySnapshot {
    metrics: BTreeMap<MetricKey, MetricValue>,
}

impl RegistrySnapshot {
    /// Iterate `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&MetricKey, &MetricValue)> {
        self.metrics.iter()
    }

    /// The value stored under `key`, if any.
    pub fn get(&self, key: &MetricKey) -> Option<&MetricValue> {
        self.metrics.get(key)
    }

    /// Insert (or overwrite) one series. Snapshots are plain data; this
    /// is how deserializers and delta producers build them.
    pub fn insert(&mut self, key: MetricKey, value: MetricValue) {
        self.metrics.insert(key, value);
    }

    /// Overwrite every series present in `update` with `update`'s value,
    /// leaving other series untouched.
    ///
    /// This is the client-side fold for subscription updates carrying
    /// *absolute* values for changed series: applying the same update
    /// twice is a no-op, and a skipped update is healed by the next one —
    /// which is what makes the wire format safe under reconnects and
    /// counter resets.
    pub fn apply(&mut self, update: &RegistrySnapshot) {
        for (key, value) in &update.metrics {
            self.metrics.insert(key.clone(), value.clone());
        }
    }

    /// Number of metric series in the snapshot.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when the snapshot holds no series.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The counter `name{labels}`, if present as a counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.metrics.get(&MetricKey::new(name, labels)) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The gauge `name{labels}`, if present as a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.metrics.get(&MetricKey::new(name, labels)) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The histogram `name{labels}`, if present as a histogram.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        match self.metrics.get(&MetricKey::new(name, labels)) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Sum of a counter across every label combination (e.g. total
    /// enqueues over all ports).
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|(k, _)| k.name == name)
            .filter_map(|(_, v)| match v {
                MetricValue::Counter(n) => Some(*n),
                _ => None,
            })
            .sum()
    }

    /// Fold another snapshot into this one.
    ///
    /// Counters add, gauges take the max (they are used as high
    /// watermarks), histograms add bucket-wise. All three operations are
    /// associative and commutative, so folding a fleet's snapshots in any
    /// order yields the same rollup — property-tested in
    /// `tests/telemetry.rs`.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (key, value) in &other.metrics {
            match self.metrics.get_mut(key) {
                None => {
                    self.metrics.insert(key.clone(), value.clone());
                }
                Some(mine) => match (mine, value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = (*a).max(*b),
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                    // Kind mismatch across snapshots: keep ours. Snapshots
                    // from the same schema never hit this arm.
                    _ => {}
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip_with_labels() {
        let reg = Registry::new();
        let a = reg.counter("hits_total", &[("port", "0")]);
        let b = reg.counter("hits_total", &[("port", "1")]);
        a.inc();
        a.add(2);
        b.inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("hits_total", &[("port", "0")]), Some(3));
        assert_eq!(snap.counter("hits_total", &[("port", "1")]), Some(1));
        assert_eq!(snap.counter_sum("hits_total"), 4);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn handles_are_shared_not_reset() {
        let reg = Registry::new();
        reg.counter("c", &[]).inc();
        reg.counter("c", &[]).inc();
        assert_eq!(reg.snapshot().counter("c", &[]), Some(2));
    }

    #[test]
    fn gauge_set_max_is_a_watermark() {
        let reg = Registry::new();
        let g = reg.gauge("depth", &[]);
        g.set_max(5);
        g.set_max(3);
        assert_eq!(reg.snapshot().gauge("depth", &[]), Some(5));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let reg = Registry::new();
        reg.counter("x", &[]);
        reg.gauge("x", &[]);
    }

    #[test]
    fn merge_adds_counters_and_maxes_gauges() {
        let r1 = Registry::new();
        r1.counter("c", &[]).add(10);
        r1.gauge("g", &[]).set(7);
        r1.histogram("h", &[]).record(100);
        let r2 = Registry::new();
        r2.counter("c", &[]).add(5);
        r2.gauge("g", &[]).set(9);
        r2.histogram("h", &[]).record(200);
        r2.counter("only2", &[]).inc();

        let mut m = r1.snapshot();
        m.merge(&r2.snapshot());
        assert_eq!(m.counter("c", &[]), Some(15));
        assert_eq!(m.gauge("g", &[]), Some(9));
        assert_eq!(m.histogram("h", &[]).unwrap().count, 2);
        assert_eq!(m.counter("only2", &[]), Some(1));
    }

    #[test]
    fn label_order_does_not_matter() {
        let reg = Registry::new();
        reg.counter("c", &[("a", "1"), ("b", "2")]).inc();
        reg.counter("c", &[("b", "2"), ("a", "1")]).inc();
        assert_eq!(reg.len(), 1);
        assert_eq!(
            reg.snapshot().counter("c", &[("b", "2"), ("a", "1")]),
            Some(2)
        );
    }
}
