//! Request-scoped distributed tracing: wire-propagated trace context,
//! parented spans, head + tail sampling, a slow-query log, and JSON-lines
//! spill for cross-process stitching.
//!
//! The existing [`SpanTracer`](crate::SpanTracer) answers "what did this
//! *process* spend time on" with anonymous sim-clock intervals. This
//! module answers "why was *this query* slow" across processes: a
//! [`TraceContext`] (128-bit trace id, 64-bit parent span, sampling flag)
//! rides the wire from client → router → backend, each tier records
//! parented [`TraceSpan`]s against it, and completed [`Trace`]s land in a
//! bounded per-process [`TraceStore`] from which they can be dumped over
//! the wire, spilled as JSON-lines, and stitched into one Chrome-viewable
//! cross-process timeline.
//!
//! Sampling is head-based and deterministic in the trace id (the same id
//! makes the same decision in every process — no coordination needed),
//! with two tail-capture escapes: a trace whose root duration crosses the
//! slow threshold is always committed (into both the recent ring and the
//! top-N slow log), and a client that got `Busy`-retried upgrades its
//! context to sampled so shed-and-retried requests are never invisible.
//!
//! Timestamps are **Unix-epoch nanoseconds** from a [`TraceClock`]
//! (epoch anchor captured once + monotonic offset), so spans recorded by
//! different processes on one machine land on a shared timeline without a
//! clock-sync protocol.

use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Sampling rate denominator: `sample_ppm` is parts-per-million, so
/// `1_000_000` means "sample every trace".
pub const SAMPLE_ALWAYS_PPM: u32 = 1_000_000;

/// Default bound on the recent-trace ring.
pub const DEFAULT_RECENT_CAP: usize = 256;

/// Default bound on the top-N slow-query log.
pub const DEFAULT_SLOW_CAP: usize = 32;

/// The wire-propagated identity of one end-to-end request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// 128-bit trace identity, shared by every span of the request.
    pub trace_id: u128,
    /// The span id of the caller's enclosing span (0 at the root).
    pub parent_span: u64,
    /// Head-sampling decision, made once at the edge and honored
    /// downstream so a trace is never half-collected.
    pub sampled: bool,
}

impl TraceContext {
    /// A fresh root context: new trace id, no parent, `sampled` as given.
    pub fn root(trace_id: u128, sampled: bool) -> TraceContext {
        TraceContext {
            trace_id,
            parent_span: 0,
            sampled,
        }
    }

    /// The context a tier hands to its callee: same trace, the given span
    /// as parent, same sampling decision.
    pub fn child(&self, parent_span: u64) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            parent_span,
            sampled: self.sampled,
        }
    }
}

/// One parented span on the Unix-epoch nanosecond timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// Id of this span (unique within the trace).
    pub span_id: u64,
    /// Id of the enclosing span (0 for a root span).
    pub parent_span: u64,
    /// Stage name (`route`, `worker_exec`, `segment_decode`, ...).
    pub name: String,
    /// Which process recorded it (`router`, `serve:shard-a`, ...).
    pub process: String,
    /// Free-form annotation (`cache=hit`, `attempt=2`, ...); empty if none.
    pub tag: String,
    /// Span start, Unix-epoch nanoseconds.
    pub start_ns: u64,
    /// Span end, Unix-epoch nanoseconds (`end_ns >= start_ns`).
    pub end_ns: u64,
}

impl TraceSpan {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// One completed, committed trace: the per-process view of a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// The request's trace id.
    pub trace_id: u128,
    /// Span id of this process's root span for the request.
    pub root_span: u64,
    /// Root-span duration in nanoseconds (the per-process wall time).
    pub duration_ns: u64,
    /// True when this trace crossed the slow threshold (or was
    /// tail-captured via a `Busy` retry).
    pub slow: bool,
    /// The recorded spans, in recording order.
    pub spans: Vec<TraceSpan>,
}

/// A 64-bit finalizer with full avalanche (splitmix64). Used for span-id
/// derivation and the deterministic sampling decision.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[inline]
fn fold128(id: u128) -> u64 {
    (id as u64) ^ ((id >> 64) as u64)
}

static TRACE_ID_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh, never-zero 128-bit trace id: wall-clock entropy mixed with a
/// process-wide sequence number, both avalanched. Collisions across
/// processes started in the same nanosecond are broken by the per-process
/// address-space entropy of the sequence cell.
pub fn new_trace_id() -> u128 {
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
        .unwrap_or(0);
    let seq = TRACE_ID_SEQ.fetch_add(1, Ordering::Relaxed);
    let salt = &TRACE_ID_SEQ as *const _ as u64;
    let hi = splitmix64(now ^ salt.rotate_left(32));
    let lo = splitmix64(seq.wrapping_add(now).wrapping_add(salt));
    let id = (u128::from(hi) << 64) | u128::from(lo);
    if id == 0 {
        1
    } else {
        id
    }
}

/// A Unix-epoch-anchored monotonic clock.
///
/// The epoch offset is captured once at construction from the system
/// clock; after that, `now_ns` is the anchor plus a monotonic elapsed
/// time, so it can never run backwards. Two processes on one machine
/// therefore agree on the timeline to within their (sub-millisecond)
/// anchor-capture skew — good enough to stitch their spans into one
/// Chrome timeline, which is all the stitcher promises.
#[derive(Debug)]
pub struct TraceClock {
    epoch_ns: u64,
    started: Instant,
}

impl Default for TraceClock {
    fn default() -> Self {
        TraceClock::new()
    }
}

impl TraceClock {
    /// Anchor a new clock to the current system time.
    pub fn new() -> TraceClock {
        let epoch_ns = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        TraceClock {
            epoch_ns,
            started: Instant::now(),
        }
    }

    /// Monotonic Unix-epoch nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.epoch_ns
            .saturating_add(u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }
}

/// The span collector for one in-flight request in one process.
///
/// Span ids are derived deterministically from `(trace id, process,
/// sequence)` through [`splitmix64`], so concurrent tiers cannot collide
/// and tests can assert exact parentage. Collection is allocation-light
/// (a `Vec` push per span) and lock-free — the `ActiveTrace` is owned by
/// the one worker driving the request.
#[derive(Debug)]
pub struct ActiveTrace {
    ctx: TraceContext,
    process: String,
    process_salt: u64,
    next_seq: u64,
    spans: Vec<TraceSpan>,
}

impl ActiveTrace {
    /// Start collecting spans for `ctx` in the named process.
    pub fn new(ctx: TraceContext, process: &str) -> ActiveTrace {
        let mut salt = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in process.bytes() {
            salt = (salt ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
        }
        ActiveTrace {
            ctx,
            process: process.to_string(),
            process_salt: salt,
            next_seq: 0,
            spans: Vec::new(),
        }
    }

    /// The context this collector was started with.
    pub fn ctx(&self) -> TraceContext {
        self.ctx
    }

    /// Upgrade the sampling decision (tail capture: slow or Busy-retried).
    pub fn set_sampled(&mut self, sampled: bool) {
        self.ctx.sampled = sampled;
    }

    /// Allocate the next span id without recording anything — for spans
    /// whose children are recorded before the span itself closes.
    pub fn reserve(&mut self) -> u64 {
        self.next_seq += 1;
        let mix = fold128(self.ctx.trace_id) ^ self.process_salt ^ self.next_seq;
        let id = splitmix64(mix);
        if id == 0 {
            1
        } else {
            id
        }
    }

    /// Record a completed span under `parent_span`, returning its id.
    pub fn record(
        &mut self,
        name: &str,
        parent_span: u64,
        start_ns: u64,
        end_ns: u64,
        tag: &str,
    ) -> u64 {
        let span_id = self.reserve();
        self.record_with_id(span_id, name, parent_span, start_ns, end_ns, tag);
        span_id
    }

    /// Record a completed span under an id previously handed out by
    /// [`Self::reserve`].
    pub fn record_with_id(
        &mut self,
        span_id: u64,
        name: &str,
        parent_span: u64,
        start_ns: u64,
        end_ns: u64,
        tag: &str,
    ) {
        self.spans.push(TraceSpan {
            span_id,
            parent_span,
            name: name.to_string(),
            process: self.process.clone(),
            tag: tag.to_string(),
            start_ns,
            end_ns: end_ns.max(start_ns),
        });
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Close the collector into a [`Trace`] rooted at `root_span`.
    pub fn finish(self, root_span: u64, duration_ns: u64, slow: bool) -> Trace {
        Trace {
            trace_id: self.ctx.trace_id,
            root_span,
            duration_ns,
            slow,
            spans: self.spans,
        }
    }
}

/// A JSON-lines spill target for committed traces.
///
/// Writes are line-buffered under a mutex (commits are per-request, not
/// per-packet); I/O errors are counted, never propagated into the serving
/// path.
pub struct TraceSink {
    w: Mutex<Box<dyn Write + Send>>,
    errors: AtomicU64,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("errors", &self.errors.load(Ordering::Relaxed))
            .finish()
    }
}

impl TraceSink {
    /// A sink over any writer (tests use `Vec<u8>` behind a pipe; the
    /// daemons use a file).
    pub fn new(w: Box<dyn Write + Send>) -> TraceSink {
        TraceSink {
            w: Mutex::new(w),
            errors: AtomicU64::new(0),
        }
    }

    /// A sink appending JSON-lines to `path` (created if absent).
    pub fn to_file(path: &std::path::Path) -> std::io::Result<TraceSink> {
        let f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(TraceSink::new(Box::new(f)))
    }

    /// Append one trace as a JSON line; errors are counted, not returned.
    pub fn spill(&self, trace: &Trace) {
        let line = trace_to_json(trace);
        let mut w = self.w.lock().unwrap();
        if w.write_all(line.as_bytes())
            .and_then(|()| w.write_all(b"\n"))
            .and_then(|()| w.flush())
            .is_err()
        {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Spill I/O errors swallowed so far.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }
}

struct TraceStoreInner {
    recent: VecDeque<Trace>,
    slow: Vec<Trace>,
    sink: Option<TraceSink>,
}

/// The bounded per-process store of committed traces: a recent ring plus
/// a top-N-by-duration slow-query log, with optional JSON-lines spill.
///
/// Like [`SpanTracer`](crate::SpanTracer), the store is off by default
/// behind one relaxed atomic, and every bound is fixed so a long-running
/// daemon cannot grow memory without bound: overflow evicts the oldest
/// recent trace (counted in [`dropped`](Self::dropped)) or the least-slow
/// log entry.
pub struct TraceStore {
    enabled: AtomicBool,
    sample_ppm: AtomicU32,
    slow_ns: AtomicU64,
    committed: AtomicU64,
    dropped: AtomicU64,
    recent_cap: usize,
    slow_cap: usize,
    inner: Mutex<TraceStoreInner>,
}

impl Default for TraceStore {
    fn default() -> Self {
        TraceStore::with_capacity(DEFAULT_RECENT_CAP, DEFAULT_SLOW_CAP)
    }
}

impl TraceStore {
    /// A disabled store bounded to `recent_cap` recent traces and
    /// `slow_cap` slow-log entries (each at least 1).
    pub fn with_capacity(recent_cap: usize, slow_cap: usize) -> TraceStore {
        TraceStore {
            enabled: AtomicBool::new(false),
            sample_ppm: AtomicU32::new(0),
            slow_ns: AtomicU64::new(u64::MAX),
            committed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            recent_cap: recent_cap.max(1),
            slow_cap: slow_cap.max(1),
            inner: Mutex::new(TraceStoreInner {
                recent: VecDeque::new(),
                slow: Vec::new(),
                sink: None,
            }),
        }
    }

    /// Turn trace collection on or off at runtime.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// The gate every per-request site checks first — one relaxed load.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Set the head-sampling rate in parts-per-million
    /// ([`SAMPLE_ALWAYS_PPM`] = sample everything, 0 = slow-only).
    pub fn set_sample_ppm(&self, ppm: u32) {
        self.sample_ppm
            .store(ppm.min(SAMPLE_ALWAYS_PPM), Ordering::Relaxed);
    }

    /// The configured head-sampling rate, parts-per-million.
    pub fn sample_ppm(&self) -> u32 {
        self.sample_ppm.load(Ordering::Relaxed)
    }

    /// Set the slow threshold: a root span at least this long is always
    /// committed and entered into the slow log.
    pub fn set_slow_ns(&self, ns: u64) {
        self.slow_ns.store(ns, Ordering::Relaxed);
    }

    /// The slow threshold in nanoseconds (`u64::MAX` = never slow).
    pub fn slow_ns(&self) -> u64 {
        self.slow_ns.load(Ordering::Relaxed)
    }

    /// True when `duration_ns` crosses the slow threshold.
    #[inline]
    pub fn is_slow(&self, duration_ns: u64) -> bool {
        duration_ns >= self.slow_ns()
    }

    /// The deterministic head-sampling decision for `trace_id`: the id is
    /// avalanched and compared against the ppm rate, so every process
    /// reaches the same verdict for the same id without coordination.
    pub fn should_sample(&self, trace_id: u128) -> bool {
        let ppm = self.sample_ppm.load(Ordering::Relaxed);
        if ppm == 0 {
            return false;
        }
        if ppm >= SAMPLE_ALWAYS_PPM {
            return true;
        }
        (splitmix64(fold128(trace_id)) % u64::from(SAMPLE_ALWAYS_PPM)) < u64::from(ppm)
    }

    /// Attach (or replace) the JSON-lines spill sink.
    pub fn set_sink(&self, sink: TraceSink) {
        self.inner.lock().unwrap().sink = Some(sink);
    }

    /// Commit a completed trace: into the recent ring (evicting the
    /// oldest on overflow), into the slow log if flagged slow, and out to
    /// the sink if one is attached.
    pub fn commit(&self, trace: Trace) {
        self.committed.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().unwrap();
        if let Some(sink) = &inner.sink {
            sink.spill(&trace);
        }
        if trace.slow {
            let slow = &mut inner.slow;
            let at = slow
                .binary_search_by(|t| trace.duration_ns.cmp(&t.duration_ns))
                .unwrap_or_else(|e| e);
            if at < self.slow_cap {
                slow.insert(at, trace.clone());
                slow.truncate(self.slow_cap);
            }
        }
        if inner.recent.len() >= self.recent_cap {
            inner.recent.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        inner.recent.push_back(trace);
    }

    /// Traces committed so far (including ones since evicted).
    pub fn committed(&self) -> u64 {
        self.committed.load(Ordering::Relaxed)
    }

    /// Recent traces evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The retained recent traces, oldest first.
    pub fn recent(&self) -> Vec<Trace> {
        self.inner.lock().unwrap().recent.iter().cloned().collect()
    }

    /// The slow-query log: up to `n` traces, slowest first.
    pub fn slowest(&self, n: usize) -> Vec<Trace> {
        let inner = self.inner.lock().unwrap();
        inner.slow.iter().take(n).cloned().collect()
    }

    /// Drop all retained traces (configuration is untouched).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.recent.clear();
        inner.slow.clear();
    }
}

impl std::fmt::Debug for TraceStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceStore")
            .field("enabled", &self.is_enabled())
            .field("sample_ppm", &self.sample_ppm())
            .field("committed", &self.committed())
            .field("dropped", &self.dropped())
            .finish()
    }
}

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Serialize one trace as a single JSON object (no trailing newline).
/// Ids are zero-padded hex strings — JSON numbers can't carry 64/128 bits
/// losslessly through double-precision tooling.
pub fn trace_to_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(128 + trace.spans.len() * 160);
    out.push_str("{\"trace_id\":\"");
    out.push_str(&format!("{:032x}", trace.trace_id));
    out.push_str("\",\"root_span\":\"");
    out.push_str(&format!("{:016x}", trace.root_span));
    out.push_str("\",\"duration_ns\":");
    out.push_str(&trace.duration_ns.to_string());
    out.push_str(",\"slow\":");
    out.push_str(if trace.slow { "true" } else { "false" });
    out.push_str(",\"spans\":[");
    for (i, s) in trace.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"span_id\":\"");
        out.push_str(&format!("{:016x}", s.span_id));
        out.push_str("\",\"parent_span\":\"");
        out.push_str(&format!("{:016x}", s.parent_span));
        out.push_str("\",\"name\":\"");
        json_escape_into(&mut out, &s.name);
        out.push_str("\",\"process\":\"");
        json_escape_into(&mut out, &s.process);
        out.push_str("\",\"tag\":\"");
        json_escape_into(&mut out, &s.tag);
        out.push_str("\",\"start_ns\":");
        out.push_str(&s.start_ns.to_string());
        out.push_str(",\"end_ns\":");
        out.push_str(&s.end_ns.to_string());
        out.push('}');
    }
    out.push_str("]}");
    out
}

// ---- minimal JSON reader (just enough for the trace schema) ----------

#[derive(Debug)]
enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    fn get<'a>(&'a self, key: &str) -> Option<&'a JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> JsonParser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.at += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&b) {
            self.at += 1;
            Some(())
        } else {
            None
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.at).copied()
    }

    fn value(&mut self, depth: u32) -> Option<JsonValue> {
        if depth > 32 {
            return None; // bounded recursion: hostile input can't blow the stack
        }
        match self.peek()? {
            b'{' => self.object(depth),
            b'[' => self.array(depth),
            b'"' => self.string().map(JsonValue::Str),
            b't' => self.literal(b"true", JsonValue::Bool(true)),
            b'f' => self.literal(b"false", JsonValue::Bool(false)),
            b'n' => self.literal(b"null", JsonValue::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &[u8], v: JsonValue) -> Option<JsonValue> {
        self.skip_ws();
        if self.bytes[self.at..].starts_with(word) {
            self.at += word.len();
            Some(v)
        } else {
            None
        }
    }

    fn number(&mut self) -> Option<JsonValue> {
        self.skip_ws();
        let start = self.at;
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.at += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.at])
            .ok()?
            .parse::<f64>()
            .ok()
            .map(JsonValue::Num)
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.at).copied()? {
                b'"' => {
                    self.at += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.at += 1;
                    match self.bytes.get(self.at).copied()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self.bytes.get(self.at + 1..self.at + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.at += 4;
                        }
                        _ => return None,
                    }
                    self.at += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar (the input is a &str upstream,
                    // so byte-level continuation handling suffices).
                    let rest = std::str::from_utf8(&self.bytes[self.at..]).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: u32) -> Option<JsonValue> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Some(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            match self.peek()? {
                b',' => self.at += 1,
                b']' => {
                    self.at += 1;
                    return Some(JsonValue::Arr(items));
                }
                _ => return None,
            }
        }
    }

    fn object(&mut self, depth: u32) -> Option<JsonValue> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Some(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            match self.peek()? {
                b',' => self.at += 1,
                b'}' => {
                    self.at += 1;
                    return Some(JsonValue::Obj(fields));
                }
                _ => return None,
            }
        }
    }
}

fn hex_u128(s: &str) -> Option<u128> {
    if s.is_empty() || s.len() > 32 {
        return None;
    }
    u128::from_str_radix(s, 16).ok()
}

fn hex_u64(s: &str) -> Option<u64> {
    if s.is_empty() || s.len() > 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// Parse one JSON line produced by [`trace_to_json`]. Returns `None` on
/// any malformation — a corrupt spill line loses itself, nothing else.
pub fn trace_from_json(line: &str) -> Option<Trace> {
    let mut p = JsonParser {
        bytes: line.as_bytes(),
        at: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return None;
    }
    let spans = match v.get("spans")? {
        JsonValue::Arr(items) => items
            .iter()
            .map(|s| {
                Some(TraceSpan {
                    span_id: hex_u64(s.get("span_id")?.as_str()?)?,
                    parent_span: hex_u64(s.get("parent_span")?.as_str()?)?,
                    name: s.get("name")?.as_str()?.to_string(),
                    process: s.get("process")?.as_str()?.to_string(),
                    tag: s.get("tag")?.as_str()?.to_string(),
                    start_ns: s.get("start_ns")?.as_u64()?,
                    end_ns: s.get("end_ns")?.as_u64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?,
        _ => return None,
    };
    Some(Trace {
        trace_id: hex_u128(v.get("trace_id")?.as_str()?)?,
        root_span: hex_u64(v.get("root_span")?.as_str()?)?,
        duration_ns: v.get("duration_ns")?.as_u64()?,
        slow: v.get("slow")?.as_bool()?,
        spans,
    })
}

/// Parse a whole JSON-lines spill, skipping blank and corrupt lines.
pub fn traces_from_jsonl(text: &str) -> Vec<Trace> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(trace_from_json)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, start: u64, end: u64) -> TraceSpan {
        TraceSpan {
            span_id: 7,
            parent_span: 0,
            name: name.to_string(),
            process: "test".to_string(),
            tag: String::new(),
            start_ns: start,
            end_ns: end,
        }
    }

    fn trace(id: u128, duration: u64, slow: bool) -> Trace {
        Trace {
            trace_id: id,
            root_span: 7,
            duration_ns: duration,
            slow,
            spans: vec![span("route", 10, 10 + duration)],
        }
    }

    #[test]
    fn child_context_keeps_trace_and_sampling() {
        let root = TraceContext::root(42, true);
        let child = root.child(9);
        assert_eq!(child.trace_id, 42);
        assert_eq!(child.parent_span, 9);
        assert!(child.sampled);
    }

    #[test]
    fn span_ids_are_unique_and_nonzero() {
        let mut t = ActiveTrace::new(TraceContext::root(1, true), "serve");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = t.reserve();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "span id collision");
        }
    }

    #[test]
    fn sampling_is_deterministic_and_roughly_calibrated() {
        let store = TraceStore::default();
        store.set_sample_ppm(SAMPLE_ALWAYS_PPM / 100); // 1%
        let hits = (0..100_000u128)
            .filter(|i| store.should_sample(i * 0x9e37_79b9))
            .count();
        // Deterministic: the same ids decide the same way again.
        let hits2 = (0..100_000u128)
            .filter(|i| store.should_sample(i * 0x9e37_79b9))
            .count();
        assert_eq!(hits, hits2);
        // Calibrated within a loose band (avalanched ids ≈ uniform).
        assert!((500..2000).contains(&hits), "1% sampling hit {hits}/100k");
        store.set_sample_ppm(0);
        assert!(!store.should_sample(123));
        store.set_sample_ppm(SAMPLE_ALWAYS_PPM);
        assert!(store.should_sample(123));
    }

    #[test]
    fn recent_ring_is_bounded_and_counts_drops() {
        let store = TraceStore::with_capacity(3, 2);
        for i in 0..5u128 {
            store.commit(trace(i + 1, 100, false));
        }
        let recent = store.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(store.dropped(), 2);
        assert_eq!(store.committed(), 5);
        assert_eq!(
            recent.iter().map(|t| t.trace_id).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
    }

    #[test]
    fn slow_log_keeps_top_n_by_duration() {
        let store = TraceStore::with_capacity(16, 2);
        store.commit(trace(1, 100, true));
        store.commit(trace(2, 300, true));
        store.commit(trace(3, 200, true));
        store.commit(trace(4, 999, false)); // not flagged slow: no log entry
        let slow = store.slowest(10);
        assert_eq!(
            slow.iter().map(|t| t.trace_id).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert_eq!(slow[0].duration_ns, 300);
    }

    #[test]
    fn json_round_trips_exactly() {
        let t = Trace {
            trace_id: u128::MAX - 3,
            root_span: 0xdead_beef,
            duration_ns: 123_456_789,
            slow: true,
            spans: vec![
                TraceSpan {
                    span_id: 1,
                    parent_span: 0,
                    name: "route".to_string(),
                    process: "router".to_string(),
                    tag: String::new(),
                    start_ns: 5,
                    end_ns: 50,
                },
                TraceSpan {
                    span_id: 2,
                    parent_span: 1,
                    name: "worker \"exec\"\n".to_string(),
                    process: "serve:a\\b".to_string(),
                    tag: "cache=hit".to_string(),
                    start_ns: 10,
                    end_ns: 40,
                },
            ],
        };
        let line = trace_to_json(&t);
        let back = trace_from_json(&line).expect("own output must parse");
        assert_eq!(back, t);
    }

    #[test]
    fn corrupt_json_lines_are_skipped_not_fatal() {
        let good = trace_to_json(&trace(9, 10, false));
        let text = format!("\n{{\"truncated\": \n{good}\nnot json at all\n");
        let parsed = traces_from_jsonl(&text);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].trace_id, 9);
    }

    #[test]
    fn sink_spills_commits_as_jsonl() {
        use std::sync::{Arc, Mutex};
        #[derive(Clone)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl Write for Buf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Buf(Arc::new(Mutex::new(Vec::new())));
        let store = TraceStore::default();
        store.set_sink(TraceSink::new(Box::new(buf.clone())));
        store.commit(trace(1, 5, false));
        store.commit(trace(2, 6, true));
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let parsed = traces_from_jsonl(&text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].trace_id, 2);
        assert!(parsed[1].slow);
    }

    #[test]
    fn trace_clock_is_monotonic_and_epoch_anchored() {
        let clock = TraceClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
        // Anchored to the Unix epoch: after 2020, before 2100.
        assert!(a > 1_577_000_000_000_000_000);
        assert!(a < 4_100_000_000_000_000_000);
    }

    #[test]
    fn new_trace_ids_do_not_collide_cheaply() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(new_trace_id()));
        }
    }
}
