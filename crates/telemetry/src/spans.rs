//! Sim-clock span tracing into a bounded ring buffer.
//!
//! A span is a named `[start, end]` interval on the simulation's
//! nanosecond clock, tagged with a `track` (usually a port id) so viewers
//! can lay concurrent work out on separate rows. The tracer is **off by
//! default**: every instrumentation site first calls [`SpanTracer::
//! is_enabled`], which is a single relaxed atomic load, so a disabled
//! tracer adds near-zero per-packet cost (measured by the
//! `ext_telemetry_overhead` bench).
//!
//! Storage is a fixed-capacity ring guarded by a mutex (span recording is
//! orders of magnitude rarer than counter updates — per freeze-and-read or
//! per dequeue at most, never per field access). When the ring is full the
//! oldest span is overwritten and [`SpanTracer::dropped`] counts the loss,
//! so a long simulation cannot grow memory without bound.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Default ring capacity: plenty for a CI-sized sim, bounded for a long one.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// One recorded span: a named interval on the sim clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (one of the `names::SPAN_*` constants).
    pub name: &'static str,
    /// Interval start, sim nanoseconds.
    pub start: u64,
    /// Interval end, sim nanoseconds (`end >= start`).
    pub end: u64,
    /// Display row — per-port spans use the port id, global spans use 0.
    pub track: u32,
}

impl SpanEvent {
    /// Span duration in nanoseconds.
    pub fn duration(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

struct Ring {
    buf: Vec<SpanEvent>,
    head: usize,
    capacity: usize,
}

/// The span tracer: an enable gate plus a bounded ring of [`SpanEvent`]s.
pub struct SpanTracer {
    enabled: AtomicBool,
    dropped: AtomicU64,
    ring: Mutex<Ring>,
}

impl Default for SpanTracer {
    fn default() -> Self {
        SpanTracer::with_capacity(DEFAULT_CAPACITY)
    }
}

impl SpanTracer {
    /// A disabled tracer with a ring of `capacity` spans (min 1).
    pub fn with_capacity(capacity: usize) -> SpanTracer {
        SpanTracer {
            enabled: AtomicBool::new(false),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(Ring {
                buf: Vec::new(),
                head: 0,
                capacity: capacity.max(1),
            }),
        }
    }

    /// Turn tracing on or off at runtime.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// The gate every instrumentation site checks first — one relaxed load.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record a span if tracing is enabled; silently drop it otherwise.
    ///
    /// When the ring is full the oldest span is overwritten and the drop
    /// is counted.
    pub fn record(&self, name: &'static str, start: u64, end: u64, track: u32) {
        if !self.is_enabled() {
            return;
        }
        let event = SpanEvent {
            name,
            start,
            end: end.max(start),
            track,
        };
        let mut ring = self.ring.lock().unwrap();
        if ring.buf.len() < ring.capacity {
            ring.buf.push(event);
        } else {
            let head = ring.head;
            ring.buf[head] = event;
            ring.head = (head + 1) % ring.capacity;
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Spans overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of spans currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().buf.len()
    }

    /// True when no spans are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy the retained spans out, oldest first.
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        let ring = self.ring.lock().unwrap();
        let mut out = Vec::with_capacity(ring.buf.len());
        out.extend_from_slice(&ring.buf[ring.head..]);
        out.extend_from_slice(&ring.buf[..ring.head]);
        out
    }

    /// Drop all retained spans (the enable flag is untouched).
    pub fn clear(&self) {
        let mut ring = self.ring.lock().unwrap();
        ring.buf.clear();
        ring.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = SpanTracer::default();
        t.record("x", 0, 10, 0);
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn enabled_tracer_keeps_order() {
        let t = SpanTracer::default();
        t.set_enabled(true);
        t.record("a", 0, 5, 0);
        t.record("b", 5, 9, 1);
        let spans = t.snapshot();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "a");
        assert_eq!(spans[1].track, 1);
        assert_eq!(spans[1].duration(), 4);
    }

    #[test]
    fn full_ring_overwrites_oldest() {
        let t = SpanTracer::with_capacity(3);
        t.set_enabled(true);
        for i in 0..5u64 {
            t.record("s", i, i + 1, 0);
        }
        let spans = t.snapshot();
        assert_eq!(spans.len(), 3);
        assert_eq!(t.dropped(), 2);
        // Oldest retained first: starts 2, 3, 4.
        assert_eq!(
            spans.iter().map(|s| s.start).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn inverted_interval_is_clamped() {
        let t = SpanTracer::default();
        t.set_enabled(true);
        t.record("x", 10, 5, 0);
        let spans = t.snapshot();
        assert_eq!(spans[0].end, 10);
        assert_eq!(spans[0].duration(), 0);
    }

    #[test]
    fn clear_keeps_enable_flag() {
        let t = SpanTracer::default();
        t.set_enabled(true);
        t.record("x", 0, 1, 0);
        t.clear();
        assert!(t.is_empty());
        assert!(t.is_enabled());
    }
}
