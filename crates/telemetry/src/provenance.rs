//! Build provenance: git-commit discovery and the `pq_build_info` gauge.
//!
//! Every results file the bench harness writes and every health answer
//! the serve daemon gives should say *which build* produced it. The
//! convention is the Prometheus `build_info` idiom: a gauge pinned to 1
//! whose labels carry the interesting strings, so provenance rides the
//! same exposition, snapshot, and subscription machinery as every other
//! metric.

use crate::names;
use crate::registry::{Registry, RegistrySnapshot};

/// Best-effort git commit of the current working tree; `"unknown"`
/// outside a repository (install trees, extracted results tarballs).
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Stamp `pq_build_info{version, commit} = 1` into `registry`.
pub fn set_build_info(registry: &Registry, version: &str, commit: &str) {
    registry
        .gauge(
            names::BUILD_INFO,
            &[("version", version), ("commit", commit)],
        )
        .set(1);
}

/// Read back the `(version, commit)` labels of `pq_build_info`, if a
/// build-info gauge was stamped into the snapshotted registry.
pub fn build_info(snapshot: &RegistrySnapshot) -> Option<(String, String)> {
    snapshot
        .iter()
        .find(|(key, _)| key.name == names::BUILD_INFO)
        .map(|(key, _)| {
            let label = |want: &str| {
                key.labels
                    .iter()
                    .find(|(k, _)| k == want)
                    .map(|(_, v)| v.clone())
                    .unwrap_or_else(|| "unknown".to_string())
            };
            (label("version"), label("commit"))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_info_round_trips_through_a_snapshot() {
        let reg = Registry::new();
        set_build_info(&reg, "0.1.0", "abc123");
        let snap = reg.snapshot();
        assert_eq!(
            build_info(&snap),
            Some(("0.1.0".to_string(), "abc123".to_string()))
        );
        assert_eq!(
            snap.gauge(
                names::BUILD_INFO,
                &[("version", "0.1.0"), ("commit", "abc123")]
            ),
            Some(1)
        );
    }

    #[test]
    fn missing_build_info_is_none() {
        assert_eq!(build_info(&RegistrySnapshot::default()), None);
    }
}
