//! Snapshot deltas, reset-safe rate derivation, and a bounded
//! gauge-history ring.
//!
//! A live watcher sees a *sequence* of [`RegistrySnapshot`]s and wants to
//! answer "what changed, and how fast?". Two hazards make the naive
//! subtraction wrong:
//!
//! * **counter resets** — a restarted process re-registers its counters
//!   at zero, so `next - prev` underflows. [`counter_delta`] treats any
//!   decrease as a reset and counts the post-reset value, which is the
//!   standard Prometheus `rate()` convention: never negative, never a
//!   panic, at worst it under-counts the instant of the reset.
//! * **interval skew** — rates must be derived from the *observed*
//!   interval, not the nominal one; [`rate_per_sec`] takes the elapsed
//!   nanoseconds explicitly.
//!
//! [`delta`] applies the same discipline snapshot-wide (histograms
//! subtract bucket-wise when monotone and fall back to the new state on a
//! reset), and [`changed`] extracts the subset of series whose values
//! differ — the compact form the serve wire streams to subscribers, as
//! absolute values so applying an update is idempotent.
//! Delta-then-merge equals merge-then-delta on monotone inputs
//! (property-tested in `tests/telemetry.rs`).

use std::collections::VecDeque;

use crate::histogram::HistogramSnapshot;
use crate::registry::{MetricValue, RegistrySnapshot};

/// Reset-safe counter difference: `next - prev`, or `next` when the
/// counter went backwards (process restart re-registered it at zero).
#[inline]
pub fn counter_delta(prev: u64, next: u64) -> u64 {
    if next >= prev {
        next - prev
    } else {
        next
    }
}

/// Reset-safe per-second rate of a counter over an observed interval.
/// Never negative; zero when no time has passed.
pub fn rate_per_sec(prev: u64, next: u64, elapsed_ns: u64) -> f64 {
    if elapsed_ns == 0 {
        return 0.0;
    }
    counter_delta(prev, next) as f64 * 1e9 / elapsed_ns as f64
}

fn histogram_delta(prev: &HistogramSnapshot, next: &HistogramSnapshot) -> HistogramSnapshot {
    let monotone = next.count >= prev.count
        && next.sum >= prev.sum
        && prev
            .buckets
            .iter()
            .zip(next.buckets.iter())
            .all(|(p, n)| n >= p);
    if !monotone {
        // Reset: the interval's activity is whatever the fresh histogram
        // accumulated since.
        return next.clone();
    }
    let mut out = next.clone();
    for (o, p) in out.buckets.iter_mut().zip(prev.buckets.iter()) {
        *o -= p;
    }
    out.count -= prev.count;
    out.sum -= prev.sum;
    // min/max describe lifetime extremes, not the interval; keep next's.
    out
}

/// The activity between two snapshots of the same registry.
///
/// Counters become reset-safe differences, gauges take their latest
/// value, histograms subtract bucket-wise (falling back to `next`'s state
/// on a reset). Series absent from `prev` count from zero; series absent
/// from `next` are dropped (a registry never unregisters, so that only
/// happens across a restart).
pub fn delta(prev: &RegistrySnapshot, next: &RegistrySnapshot) -> RegistrySnapshot {
    let mut out = RegistrySnapshot::default();
    for (key, value) in next.iter() {
        let d = match (prev.get(key), value) {
            (Some(MetricValue::Counter(p)), MetricValue::Counter(n)) => {
                MetricValue::Counter(counter_delta(*p, *n))
            }
            (Some(MetricValue::Histogram(p)), MetricValue::Histogram(n)) => {
                MetricValue::Histogram(Box::new(histogram_delta(p, n)))
            }
            // Gauges, new series, and cross-kind conflicts: latest wins.
            _ => value.clone(),
        };
        out.insert(key.clone(), d);
    }
    out
}

/// The subset of `next`'s series whose value differs from `prev`'s (or
/// which `prev` lacks), carried as **absolute** values.
///
/// This is the compact subscription-update payload: small when the
/// registry is quiet, idempotent to apply ([`RegistrySnapshot::apply`]),
/// and self-healing across skipped updates.
pub fn changed(prev: &RegistrySnapshot, next: &RegistrySnapshot) -> RegistrySnapshot {
    let mut out = RegistrySnapshot::default();
    for (key, value) in next.iter() {
        if prev.get(key) != Some(value) {
            out.insert(key.clone(), value.clone());
        }
    }
    out
}

/// A bounded ring of timestamped gauge samples — enough history to draw a
/// sparkline or answer "what was this five minutes ago", with a hard cap
/// so an immortal watcher never grows without bound.
#[derive(Debug, Clone)]
pub struct GaugeHistory {
    cap: usize,
    samples: VecDeque<(u64, f64)>,
}

impl GaugeHistory {
    /// A ring holding at most `cap` samples (minimum 1).
    pub fn new(cap: usize) -> GaugeHistory {
        GaugeHistory {
            cap: cap.max(1),
            samples: VecDeque::new(),
        }
    }

    /// Append a sample, evicting the oldest when full.
    pub fn push(&mut self, t_ns: u64, value: f64) {
        if self.samples.len() == self.cap {
            self.samples.pop_front();
        }
        self.samples.push_back((t_ns, value));
    }

    /// Samples oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.samples.iter().copied()
    }

    /// Number of samples held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been pushed.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The most recent sample, if any.
    pub fn latest(&self) -> Option<(u64, f64)> {
        self.samples.back().copied()
    }

    /// Render the ring as a fixed-width sparkline (most recent sample
    /// rightmost), scaling against the ring's own maximum.
    pub fn sparkline(&self, width: usize) -> String {
        const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        if width == 0 || self.samples.is_empty() {
            return String::new();
        }
        let max = self.samples.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
        let tail: Vec<f64> = self
            .samples
            .iter()
            .rev()
            .take(width)
            .rev()
            .map(|&(_, v)| v)
            .collect();
        tail.iter()
            .map(|&v| {
                if max <= 0.0 || !v.is_finite() {
                    LEVELS[0]
                } else {
                    let idx = ((v / max) * (LEVELS.len() - 1) as f64).round() as usize;
                    LEVELS[idx.min(LEVELS.len() - 1)]
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn counter_delta_handles_resets() {
        assert_eq!(counter_delta(10, 15), 5);
        assert_eq!(counter_delta(10, 10), 0);
        // Reset: went backwards, count the post-reset value.
        assert_eq!(counter_delta(10, 3), 3);
    }

    #[test]
    fn rate_is_never_negative_and_interval_scaled() {
        assert_eq!(rate_per_sec(0, 10, 1_000_000_000), 10.0);
        assert_eq!(rate_per_sec(0, 10, 2_000_000_000), 5.0);
        assert_eq!(rate_per_sec(10, 3, 1_000_000_000), 3.0);
        assert_eq!(rate_per_sec(5, 9, 0), 0.0);
    }

    #[test]
    fn delta_subtracts_counters_and_keeps_latest_gauge() {
        let reg = Registry::new();
        let c = reg.counter("c", &[]);
        let g = reg.gauge("g", &[]);
        let h = reg.histogram("h", &[]);
        c.add(5);
        g.set(7);
        h.record(100);
        let prev = reg.snapshot();
        c.add(3);
        g.set(2);
        h.record(100);
        h.record(3);
        let next = reg.snapshot();
        let d = delta(&prev, &next);
        assert_eq!(d.counter("c", &[]), Some(3));
        assert_eq!(d.gauge("g", &[]), Some(2));
        let hd = d.histogram("h", &[]).unwrap();
        assert_eq!(hd.count, 2);
        assert_eq!(hd.sum, 103);
    }

    #[test]
    fn histogram_reset_falls_back_to_next() {
        let a = Registry::new();
        a.histogram("h", &[]).record(50);
        a.histogram("h", &[]).record(60);
        let prev = a.snapshot();
        let b = Registry::new();
        b.histogram("h", &[]).record(9);
        let next = b.snapshot();
        let d = delta(&prev, &next);
        let hd = d.histogram("h", &[]).unwrap();
        assert_eq!(hd.count, 1);
        assert_eq!(hd.sum, 9);
    }

    #[test]
    fn changed_extracts_only_differing_series() {
        let reg = Registry::new();
        let a = reg.counter("a", &[]);
        reg.counter("b", &[]).add(4);
        let prev = reg.snapshot();
        a.inc();
        let next = reg.snapshot();
        let ch = changed(&prev, &next);
        assert_eq!(ch.len(), 1);
        assert_eq!(ch.counter("a", &[]), Some(1));
        // Applying the changed set to the old snapshot reproduces the new.
        let mut folded = prev.clone();
        folded.apply(&ch);
        assert_eq!(folded, next);
    }

    #[test]
    fn gauge_history_is_bounded_and_ordered() {
        let mut h = GaugeHistory::new(3);
        for i in 0..5u64 {
            h.push(i, i as f64);
        }
        assert_eq!(h.len(), 3);
        let got: Vec<u64> = h.iter().map(|(t, _)| t).collect();
        assert_eq!(got, vec![2, 3, 4]);
        assert_eq!(h.latest(), Some((4, 4.0)));
        assert_eq!(h.sparkline(3).chars().count(), 3);
    }
}
