//! Log2-bucketed, HDR-style histograms with alloc-free atomic recording.
//!
//! Values are `u64` (nanoseconds, bytes, cells — any non-negative unit).
//! Bucket `0` holds exactly the value `0`; bucket `i ≥ 1` holds the range
//! `[2^(i-1), 2^i - 1]`. That gives 65 fixed buckets covering the full
//! `u64` domain with a worst-case quantile error of one power of two —
//! the same trade the in-pipeline histogram monitors make, because a fixed
//! bucket array is what fits in registers (there: SRAM; here: a cache line
//! or two of atomics).
//!
//! Recording is a relaxed `fetch_add` on one bucket plus count/sum updates
//! and a `fetch_max`/`fetch_min` pair: no locks, no allocation, no
//! fallible paths. Quantiles are estimated from a [`HistogramSnapshot`] by
//! walking the cumulative distribution and interpolating linearly inside
//! the target bucket; estimates are exact for the min and max and within
//! one bucket everywhere else (property-tested in `tests/telemetry.rs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of log2 buckets: one for zero plus one per bit of `u64`.
pub const NUM_BUCKETS: usize = 65;

/// An OpenMetrics-style exemplar: the last traced sample observed in one
/// bucket, so an alert on a histogram links straight to a representative
/// request trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketExemplar {
    /// Bucket index (see [`bucket_index`]).
    pub bucket: u8,
    /// Trace id of the request that recorded the sample (never 0).
    pub trace_id: u128,
    /// The observed sample value.
    pub value: u64,
}

/// The bucket a value lands in: 0 for 0, otherwise `floor(log2(v)) + 1`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    match v {
        0 => 0,
        n => 64 - n.leading_zeros() as usize,
    }
}

/// The largest value bucket `i` can hold (`u64::MAX` for the last bucket).
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64.. => u64::MAX,
        n => (1u64 << n) - 1,
    }
}

/// The smallest value bucket `i` can hold.
pub fn bucket_lower_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        n => 1u64 << (n - 1),
    }
}

pub(crate) struct HistogramCore {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    /// Last `(trace_id, value)` observed per bucket; trace_id 0 = none.
    /// Behind a mutex, but only touched by [`Histogram::record_exemplar`]
    /// — the per-sampled-trace path, orders of magnitude rarer than
    /// [`Histogram::record`], which stays lock-free.
    exemplars: Mutex<Box<[(u128, u64); NUM_BUCKETS]>>,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            exemplars: Mutex::new(Box::new([(0, 0); NUM_BUCKETS])),
        }
    }
}

/// A recording handle to a registry histogram. Cloning shares storage.
#[derive(Clone)]
pub struct Histogram(pub(crate) std::sync::Arc<HistogramCore>);

impl Histogram {
    pub(crate) fn new() -> Histogram {
        Histogram(std::sync::Arc::new(HistogramCore::default()))
    }

    /// Record one sample. Lock-free, alloc-free, thread-safe.
    #[inline]
    pub fn record(&self, v: u64) {
        let core = &*self.0;
        core.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(v, Ordering::Relaxed);
        core.min.fetch_min(v, Ordering::Relaxed);
        core.max.fetch_max(v, Ordering::Relaxed);
    }

    /// [`record`](Self::record) a sample and stamp its bucket's exemplar
    /// with the trace id of the request that produced it. A `trace_id` of
    /// 0 (the "no trace" sentinel) records the sample without an exemplar.
    pub fn record_exemplar(&self, v: u64, trace_id: u128) {
        self.record(v);
        if trace_id == 0 {
            return;
        }
        let mut ex = self.0.exemplars.lock().unwrap();
        ex[bucket_index(v)] = (trace_id, v);
    }

    /// A plain-data copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &*self.0;
        let exemplars = {
            let ex = core.exemplars.lock().unwrap();
            ex.iter()
                .enumerate()
                .filter(|(_, (id, _))| *id != 0)
                .map(|(i, (id, v))| BucketExemplar {
                    bucket: i as u8,
                    trace_id: *id,
                    value: *v,
                })
                .collect()
        };
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| core.buckets[i].load(Ordering::Relaxed)),
            count: core.count.load(Ordering::Relaxed),
            sum: core.sum.load(Ordering::Relaxed),
            min: core.min.load(Ordering::Relaxed),
            max: core.max.load(Ordering::Relaxed),
            exemplars,
        }
    }
}

/// Plain-data histogram state: bucket counts plus count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_index`] for the mapping).
    pub buckets: [u64; NUM_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Per-bucket exemplars (sparse, ascending bucket order): the last
    /// traced sample seen in each occupied bucket.
    pub exemplars: Vec<BucketExemplar>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            exemplars: Vec::new(),
        }
    }
}

impl HistogramSnapshot {
    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 ≤ q ≤ 1.0`) by cumulative bucket
    /// walk with linear interpolation inside the target bucket.
    ///
    /// Returns 0 for an empty histogram. The estimate is clamped to
    /// `[min, max]`, so `quantile(0.0) == min` and `quantile(1.0) == max`
    /// exactly; interior quantiles are within one log2 bucket of the true
    /// order statistic.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target order statistic, 1-based: ceil(q * count),
        // at least 1 (the paper-side convention for p0 = min).
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        if target >= self.count {
            return self.max;
        }
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cumulative + n >= target {
                // Interpolate within [lo, hi] by the rank's position in
                // this bucket (uniform-within-bucket assumption).
                let lo = bucket_lower_bound(i);
                let hi = bucket_upper_bound(i);
                let est = if i + 1 == NUM_BUCKETS {
                    // Overflow bucket [2^63, u64::MAX]: its upper bound is
                    // astronomically far from any plausible sample, so
                    // interpolating toward it overestimates by up to 2x.
                    // Clamp to the bucket's lower bound instead — still
                    // within the one-bucket error contract.
                    lo as f64
                } else {
                    let into = (target - cumulative - 1) as f64; // 0-based
                    let frac = if n > 1 { into / (n - 1) as f64 } else { 0.0 };
                    lo as f64 + frac * (hi - lo) as f64
                };
                return (est as u64).clamp(self.min, self.max);
            }
            cumulative += n;
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Accumulate another snapshot (bucket-wise addition — associative and
    /// commutative, so fleet rollups can fold in any order).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        // Exemplars are representatives, not measures: per bucket the
        // incoming side wins (any representative is as good as another,
        // and "latest snapshot folded in" matches operator expectation).
        for ex in &other.exemplars {
            match self
                .exemplars
                .binary_search_by_key(&ex.bucket, |e| e.bucket)
            {
                Ok(i) => self.exemplars[i] = *ex,
                Err(i) => self.exemplars.insert(i, *ex),
            }
        }
    }

    /// The exemplar stamped on bucket `bucket`, if any.
    pub fn exemplar(&self, bucket: usize) -> Option<BucketExemplar> {
        self.exemplars
            .iter()
            .find(|e| usize::from(e.bucket) == bucket)
            .copied()
    }

    /// The exemplar of the highest occupied bucket — the natural "show me
    /// a slow one" pick for alert → trace linkage.
    pub fn worst_exemplar(&self) -> Option<BucketExemplar> {
        self.exemplars.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_lower_bound(i)), i);
            assert_eq!(bucket_index(bucket_upper_bound(i)), i);
        }
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 1000);
        assert_eq!(snap.quantile(0.0), 1);
        assert_eq!(snap.quantile(1.0), 1000);
        // p50's true value is 500 (bucket 9: 256..511); the estimate must
        // land within that bucket.
        let p50 = snap.p50();
        assert_eq!(bucket_index(p50), bucket_index(500));
        // Within one bucket for p99 (true 990, bucket 10).
        let p99 = snap.p99();
        assert!((bucket_index(p99) as i64 - bucket_index(990) as i64).abs() <= 1);
    }

    #[test]
    fn empty_histogram_is_calm() {
        let snap = HistogramSnapshot::default();
        assert!(snap.is_empty());
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn merge_is_bucketwise() {
        let a = Histogram::new();
        a.record(5);
        a.record(100);
        let b = Histogram::new();
        b.record(7);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 112);
        assert_eq!(m.min, 5);
        assert_eq!(m.max, 100);
        // 5 and 7 share the [4, 7] bucket; 100 sits alone in [64, 127].
        assert_eq!(m.buckets[bucket_index(5)], 2);
        assert_eq!(m.buckets[bucket_index(100)], 1);
    }

    #[test]
    fn overflow_bucket_quantiles_clamp_to_lower_bound() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(1u64 << 63);
        }
        h.record(u64::MAX);
        let snap = h.snapshot();
        // All samples sit in the overflow bucket [2^63, u64::MAX]. The
        // true p99 is 2^63; interpolating toward the bucket's upper bound
        // used to report ~1.8e19. The estimate must pin to the bucket's
        // lower bound.
        assert_eq!(snap.p99(), 1u64 << 63);
        assert_eq!(snap.p50(), 1u64 << 63);
        // The exactness contracts survive the clamp.
        assert_eq!(snap.quantile(1.0), u64::MAX);
        assert_eq!(snap.quantile(0.0), 1u64 << 63);
    }

    #[test]
    fn exemplars_stamp_last_trace_per_bucket() {
        let h = Histogram::new();
        h.record(100); // untraced: no exemplar
        h.record_exemplar(5, 0xaa);
        h.record_exemplar(6, 0xbb); // same bucket [4,7]: overwrites
        h.record_exemplar(1000, 0xcc);
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        let ex = snap.exemplar(bucket_index(5)).unwrap();
        assert_eq!((ex.trace_id, ex.value), (0xbb, 6));
        assert!(snap.exemplar(bucket_index(100)).is_none());
        let worst = snap.worst_exemplar().unwrap();
        assert_eq!(worst.trace_id, 0xcc);
        // Zero trace id is the "no trace" sentinel: counted, not stamped.
        h.record_exemplar(7, 0);
        assert_eq!(
            h.snapshot().exemplar(bucket_index(7)).unwrap().trace_id,
            0xbb
        );
    }

    #[test]
    fn merge_prefers_incoming_exemplars() {
        let a = Histogram::new();
        a.record_exemplar(5, 0x1);
        a.record_exemplar(1000, 0x2);
        let b = Histogram::new();
        b.record_exemplar(5, 0x3);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.exemplar(bucket_index(5)).unwrap().trace_id, 0x3);
        assert_eq!(m.exemplar(bucket_index(1000)).unwrap().trace_id, 0x2);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let h = Histogram::new();
        h.record(42);
        let snap = h.snapshot();
        assert_eq!(snap.p50(), 42);
        assert_eq!(snap.p99(), 42);
    }
}
