//! Per-thread scope stacks with exact per-scope aggregation.
//!
//! A `prof::scope!("serve/worker_exec")` call site expands to a static
//! [`Site`] plus a [`ScopeGuard`]. When profiling is disabled the guard
//! costs one relaxed atomic load and a branch — the same "off = near
//! zero" contract as `SpanTracer`. When enabled, entering a scope:
//!
//! * pushes the scope's interned id onto the thread's lock-free stack
//!   (a seqlock-versioned fixed array the sampler can read from another
//!   thread without stopping it),
//! * swaps the thread-local "innermost scope" pointer (used by the
//!   counting allocator to attribute allocations), and
//! * starts a wall clock.
//!
//! Dropping the guard pops the stack and folds the elapsed time into the
//! scope's exact aggregate: `calls`, `total_ns`, and the parent's
//! `child_ns` (so `self = total - child` needs no tree walk). Aggregates
//! live in leaked `&'static` cells — scope names are compile-time
//! literals, so the set is bounded by the code, not the workload.

use std::cell::Cell;
use std::ptr;
use std::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Deepest stack the sampler can observe; deeper nesting still times
/// correctly but the sampler sees a truncated stack.
pub const MAX_DEPTH: usize = 32;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Master switch for scope aggregation and stack maintenance.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Is scope profiling currently enabled? One relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Exact per-scope aggregate. Leaked on interning, so references are
/// `'static` and recording never touches the registry lock.
pub struct ScopeStat {
    pub name: &'static str,
    /// 1-based intern id (0 is the "no scope" sentinel in stack frames).
    pub id: u32,
    calls: AtomicU64,
    total_ns: AtomicU64,
    child_ns: AtomicU64,
    allocs: AtomicU64,
    alloc_bytes: AtomicU64,
}

impl ScopeStat {
    fn new(name: &'static str, id: u32) -> ScopeStat {
        ScopeStat {
            name,
            id,
            calls: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            child_ns: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
            alloc_bytes: AtomicU64::new(0),
        }
    }

    pub(crate) fn note_alloc(&self, bytes: u64) {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.alloc_bytes.fetch_add(bytes, Ordering::Relaxed);
    }
}

/// Interned scopes, id = index + 1. Cold path only (first hit per site).
static SCOPES: Mutex<Vec<&'static ScopeStat>> = Mutex::new(Vec::new());

fn intern(name: &'static str) -> &'static ScopeStat {
    let mut reg = SCOPES.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(stat) = reg.iter().find(|s| s.name == name) {
        return stat;
    }
    let id = reg.len() as u32 + 1;
    let stat: &'static ScopeStat = Box::leak(Box::new(ScopeStat::new(name, id)));
    reg.push(stat);
    stat
}

/// Resolve an intern id back to its stat (sampler/capture path).
pub(crate) fn stat_by_id(id: u32) -> Option<&'static ScopeStat> {
    if id == 0 {
        return None;
    }
    let reg = SCOPES.lock().unwrap_or_else(|p| p.into_inner());
    reg.get(id as usize - 1).copied()
}

/// `(name, calls, total_ns, child_ns, allocs, alloc_bytes)` for every
/// scope that has recorded activity, sorted by name.
pub(crate) fn scopes_snapshot() -> Vec<(&'static str, u64, u64, u64, u64, u64)> {
    let reg = SCOPES.lock().unwrap_or_else(|p| p.into_inner());
    let mut out: Vec<_> = reg
        .iter()
        .map(|s| {
            (
                s.name,
                s.calls.load(Ordering::Relaxed),
                s.total_ns.load(Ordering::Relaxed),
                s.child_ns.load(Ordering::Relaxed),
                s.allocs.load(Ordering::Relaxed),
                s.alloc_bytes.load(Ordering::Relaxed),
            )
        })
        .filter(|&(_, calls, _, _, allocs, _)| calls > 0 || allocs > 0)
        .collect();
    out.sort_by(|a, b| a.0.cmp(b.0));
    out
}

/// Zero every scope aggregate (benches and tests).
pub(crate) fn reset_scopes() {
    let reg = SCOPES.lock().unwrap_or_else(|p| p.into_inner());
    for s in reg.iter() {
        s.calls.store(0, Ordering::Relaxed);
        s.total_ns.store(0, Ordering::Relaxed);
        s.child_ns.store(0, Ordering::Relaxed);
        s.allocs.store(0, Ordering::Relaxed);
        s.alloc_bytes.store(0, Ordering::Relaxed);
    }
}

/// One `scope!` call site: the name plus a once-resolved pointer to the
/// interned stat, so the steady state never takes the registry lock.
pub struct Site {
    name: &'static str,
    stat: AtomicPtr<ScopeStat>,
}

impl Site {
    pub const fn new(name: &'static str) -> Site {
        Site {
            name,
            stat: AtomicPtr::new(ptr::null_mut()),
        }
    }

    #[inline]
    fn resolve(&self) -> &'static ScopeStat {
        let p = self.stat.load(Ordering::Acquire);
        if !p.is_null() {
            // Safety: the pointer was produced from a leaked &'static.
            unsafe { &*p }
        } else {
            self.resolve_slow()
        }
    }

    #[cold]
    fn resolve_slow(&self) -> &'static ScopeStat {
        let stat = intern(self.name);
        self.stat.store(
            stat as *const ScopeStat as *mut ScopeStat,
            Ordering::Release,
        );
        stat
    }
}

/// One thread's observable scope stack. The writer (the thread itself)
/// brackets mutations with seqlock increments; the sampler retries reads
/// that race a mutation. Every field is an atomic, so a racy read is at
/// worst semantically stale — never undefined — and the seq check plus
/// id validation filters those out.
pub struct ThreadStack {
    seq: AtomicU32,
    depth: AtomicU32,
    frames: [AtomicU32; MAX_DEPTH],
    alive: AtomicBool,
}

impl ThreadStack {
    fn new() -> ThreadStack {
        ThreadStack {
            seq: AtomicU32::new(0),
            depth: AtomicU32::new(0),
            frames: std::array::from_fn(|_| AtomicU32::new(0)),
            alive: AtomicBool::new(true),
        }
    }

    pub(crate) fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Seqlock read of the stack's frame ids, innermost last. `None` if
    /// the stack is empty or a consistent read could not be obtained in
    /// a few tries.
    pub(crate) fn sample(&self) -> Option<Vec<u32>> {
        for _ in 0..4 {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let depth = self.depth.load(Ordering::Acquire) as usize;
            if depth == 0 {
                return None;
            }
            let depth = depth.min(MAX_DEPTH);
            let mut frames = Vec::with_capacity(depth);
            for f in &self.frames[..depth] {
                frames.push(f.load(Ordering::Relaxed));
            }
            fence(Ordering::Acquire);
            if self.seq.load(Ordering::Relaxed) == s1 && frames.iter().all(|&id| id != 0) {
                return Some(frames);
            }
        }
        None
    }

    fn push(&self, id: u32) {
        self.seq.fetch_add(1, Ordering::AcqRel);
        let depth = self.depth.load(Ordering::Relaxed) as usize;
        if depth < MAX_DEPTH {
            self.frames[depth].store(id, Ordering::Relaxed);
        }
        self.depth.store(depth as u32 + 1, Ordering::Relaxed);
        self.seq.fetch_add(1, Ordering::Release);
    }

    fn pop(&self) {
        self.seq.fetch_add(1, Ordering::AcqRel);
        let depth = self.depth.load(Ordering::Relaxed);
        self.depth.store(depth.saturating_sub(1), Ordering::Relaxed);
        self.seq.fetch_add(1, Ordering::Release);
    }
}

/// Every thread that ever entered a scope; dead threads keep their entry
/// until the sampler prunes it (the `alive` flag flips in TLS teardown).
static THREADS: Mutex<Vec<Arc<ThreadStack>>> = Mutex::new(Vec::new());

pub(crate) fn live_threads() -> Vec<Arc<ThreadStack>> {
    let mut reg = THREADS.lock().unwrap_or_else(|p| p.into_inner());
    reg.retain(|t| t.is_alive());
    reg.clone()
}

struct Tls {
    stack: Arc<ThreadStack>,
}

impl Drop for Tls {
    fn drop(&mut self) {
        self.stack.alive.store(false, Ordering::Release);
    }
}

fn register_thread() -> Tls {
    let stack = Arc::new(ThreadStack::new());
    THREADS
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .push(Arc::clone(&stack));
    Tls { stack }
}

thread_local! {
    static TLS: Tls = register_thread();
    /// Innermost active scope, for allocator attribution and parent
    /// `child_ns` accounting. Const-init so the allocator can probe it
    /// without triggering a lazy (allocating) TLS init.
    static CURRENT: Cell<*const ScopeStat> = const { Cell::new(ptr::null()) };
}

/// The innermost active scope on this thread, if any (allocator hook).
#[inline]
pub(crate) fn current_stat() -> *const ScopeStat {
    CURRENT.try_with(|c| c.get()).unwrap_or(ptr::null())
}

/// RAII guard produced by [`scope!`](crate::scope!). Inactive (a no-op)
/// when profiling was disabled at entry.
pub struct ScopeGuard {
    stat: Option<&'static ScopeStat>,
    prev: *const ScopeStat,
    pushed: bool,
    start: Instant,
}

impl ScopeGuard {
    #[inline]
    pub fn enter(site: &'static Site) -> ScopeGuard {
        if !enabled() {
            return ScopeGuard {
                stat: None,
                prev: ptr::null(),
                pushed: false,
                start: Instant::now(),
            };
        }
        Self::enter_slow(site)
    }

    fn enter_slow(site: &'static Site) -> ScopeGuard {
        let stat = site.resolve();
        let pushed = TLS.try_with(|t| t.stack.push(stat.id)).is_ok();
        let prev = CURRENT
            .try_with(|c| c.replace(stat as *const ScopeStat))
            .unwrap_or(ptr::null());
        ScopeGuard {
            stat: Some(stat),
            prev,
            pushed,
            start: Instant::now(),
        }
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let Some(stat) = self.stat else { return };
        let elapsed = self.start.elapsed().as_nanos() as u64;
        stat.calls.fetch_add(1, Ordering::Relaxed);
        stat.total_ns.fetch_add(elapsed, Ordering::Relaxed);
        if !self.prev.is_null() {
            // Safety: scope stats are leaked, so the parent pointer a
            // guard saved at entry can never dangle.
            unsafe { &*self.prev }
                .child_ns
                .fetch_add(elapsed, Ordering::Relaxed);
        }
        let _ = CURRENT.try_with(|c| c.set(self.prev));
        if self.pushed {
            let _ = TLS.try_with(|t| t.stack.pop());
        }
    }
}

/// Open a named profiling scope for the rest of the enclosing block.
///
/// ```
/// fn handle() {
///     pq_prof::scope!("serve/worker_exec");
///     // ... work attributed to serve/worker_exec ...
/// }
/// ```
#[macro_export]
macro_rules! scope {
    ($name:literal) => {
        let _pq_prof_scope_guard = {
            static PQ_PROF_SITE: $crate::scope::Site = $crate::scope::Site::new($name);
            $crate::scope::ScopeGuard::enter(&PQ_PROF_SITE)
        };
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_scope_records_nothing() {
        set_enabled(false);
        {
            crate::scope!("prof/test_disabled");
        }
        assert!(!scopes_snapshot()
            .iter()
            .any(|(name, ..)| *name == "prof/test_disabled"));
    }

    #[test]
    fn nested_scopes_attribute_child_time() {
        let _g = crate::test_lock();
        set_enabled(true);
        {
            crate::scope!("prof/test_outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                crate::scope!("prof/test_inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        set_enabled(false);
        let snap = scopes_snapshot();
        let outer = snap
            .iter()
            .find(|(name, ..)| *name == "prof/test_outer")
            .copied()
            .unwrap();
        let inner = snap
            .iter()
            .find(|(name, ..)| *name == "prof/test_inner")
            .copied()
            .unwrap();
        assert_eq!(outer.1, 1);
        assert_eq!(inner.1, 1);
        assert!(outer.2 >= inner.2, "outer total covers inner");
        assert!(outer.3 >= inner.2, "outer child_ns covers inner total");
        assert!(outer.2 >= outer.3, "total >= child");
        reset_scopes();
    }

    #[test]
    fn stack_sampling_sees_active_scope() {
        let _g = crate::test_lock();
        set_enabled(true);
        crate::scope!("prof/test_sampled");
        let stacks = live_threads();
        let me = std::thread::current().id();
        let _ = me;
        let sampled: Vec<_> = stacks.iter().filter_map(|t| t.sample()).collect();
        let hit = sampled.iter().any(|frames| {
            frames
                .iter()
                .filter_map(|&id| stat_by_id(id))
                .any(|s| s.name == "prof/test_sampled")
        });
        assert!(hit, "sampler should see the active scope");
        set_enabled(false);
        reset_scopes();
    }
}
