//! Instrumented mutex facade with named lock statistics.
//!
//! [`PqMutex`] wraps `std::sync::Mutex` and publishes, per lock *name*
//! (not per instance — every `PqMutex::new("store_writer", ..)` shares
//! one stat, so fleet-wide aggregation is just name-keyed merging):
//!
//! * `wait` — log2 histogram of time from requesting the lock to
//!   holding it,
//! * `hold` — log2 histogram of time the lock was held,
//! * `acquisitions` / `contended` — how often, and how often someone
//!   else held it first (detected by a `try_lock` fast path),
//! * `poisoned` — acquisitions that recovered a poisoned mutex.
//!
//! Poisoning is *recovered*, never propagated: a panicked worker must
//! not wedge the freeze-and-read path, so `lock()` hands back the inner
//! data and reports the event through the guard's
//! [`was_poisoned`](PqGuard::was_poisoned) plus the `poisoned` counter,
//! letting callers degrade the way they already degrade on coverage
//! gaps. Recording is on by default ("always-on" lock observability at
//! lock-acquisition granularity, two clock reads per acquisition) and
//! can be switched off for overhead baselines.

use crate::hist::{Hist, HistSnapshot};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, TryLockError};
use std::time::Instant;

static LOCK_STATS_ENABLED: AtomicBool = AtomicBool::new(true);

/// Toggle wait/hold recording (the counters for poisoning stay on —
/// correctness events are never suppressed).
pub fn set_lock_stats(on: bool) {
    LOCK_STATS_ENABLED.store(on, Ordering::Relaxed);
}

/// Is wait/hold recording enabled? One relaxed load.
#[inline]
pub fn lock_stats_enabled() -> bool {
    LOCK_STATS_ENABLED.load(Ordering::Relaxed)
}

/// Aggregate statistics for one lock name.
pub struct LockStat {
    pub name: &'static str,
    pub(crate) wait: Hist,
    pub(crate) hold: Hist,
    acquisitions: AtomicU64,
    contended: AtomicU64,
    poisoned: AtomicU64,
}

impl LockStat {
    fn new(name: &'static str) -> LockStat {
        LockStat {
            name,
            wait: Hist::new(),
            hold: Hist::new(),
            acquisitions: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
        }
    }
}

/// Interned lock stats, one per distinct name, leaked for `'static`.
static LOCKS: Mutex<Vec<&'static LockStat>> = Mutex::new(Vec::new());

fn lock_stat(name: &'static str) -> &'static LockStat {
    let mut reg = LOCKS.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(stat) = reg.iter().find(|s| s.name == name) {
        return stat;
    }
    let stat: &'static LockStat = Box::leak(Box::new(LockStat::new(name)));
    reg.push(stat);
    stat
}

/// Plain-data view of one named lock's statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSnapshot {
    pub name: String,
    pub acquisitions: u64,
    pub contended: u64,
    pub poisoned: u64,
    pub wait: HistSnapshot,
    pub hold: HistSnapshot,
}

/// Every named lock that has seen activity, sorted by name.
pub(crate) fn locks_snapshot() -> Vec<LockSnapshot> {
    let reg = LOCKS.lock().unwrap_or_else(|p| p.into_inner());
    let mut out: Vec<LockSnapshot> = reg
        .iter()
        .map(|s| LockSnapshot {
            name: s.name.to_string(),
            acquisitions: s.acquisitions.load(Ordering::Relaxed),
            contended: s.contended.load(Ordering::Relaxed),
            poisoned: s.poisoned.load(Ordering::Relaxed),
            wait: s.wait.snapshot(),
            hold: s.hold.snapshot(),
        })
        .filter(|s| s.acquisitions > 0 || s.contended > 0 || s.poisoned > 0)
        .collect();
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// Zero every lock stat (benches and tests).
pub(crate) fn reset_locks() {
    let reg = LOCKS.lock().unwrap_or_else(|p| p.into_inner());
    for s in reg.iter() {
        s.acquisitions.store(0, Ordering::Relaxed);
        s.contended.store(0, Ordering::Relaxed);
        s.poisoned.store(0, Ordering::Relaxed);
        s.wait.reset();
        s.hold.reset();
    }
}

/// A named, instrumented mutex. API mirrors `std::sync::Mutex` except
/// that `lock()` cannot fail: poisoning is recovered and reported.
pub struct PqMutex<T> {
    stat: &'static LockStat,
    inner: Mutex<T>,
}

impl<T> PqMutex<T> {
    pub fn new(name: &'static str, value: T) -> PqMutex<T> {
        PqMutex {
            stat: lock_stat(name),
            inner: Mutex::new(value),
        }
    }

    pub fn name(&self) -> &'static str {
        self.stat.name
    }

    /// Acquire the lock, recording wait time and contention. A poisoned
    /// mutex is recovered: the guard carries the fact instead of an
    /// `Err`.
    pub fn lock(&self) -> PqGuard<'_, T> {
        let recording = lock_stats_enabled();
        let requested = recording.then(Instant::now);
        let (guard, poisoned) = match self.inner.try_lock() {
            Ok(g) => (g, false),
            Err(TryLockError::Poisoned(p)) => {
                self.stat.poisoned.fetch_add(1, Ordering::Relaxed);
                (p.into_inner(), true)
            }
            Err(TryLockError::WouldBlock) => {
                if recording {
                    self.stat.contended.fetch_add(1, Ordering::Relaxed);
                }
                match self.inner.lock() {
                    Ok(g) => (g, false),
                    Err(p) => {
                        self.stat.poisoned.fetch_add(1, Ordering::Relaxed);
                        (p.into_inner(), true)
                    }
                }
            }
        };
        if let Some(t0) = requested {
            self.stat.wait.record(t0.elapsed().as_nanos() as u64);
            self.stat.acquisitions.fetch_add(1, Ordering::Relaxed);
        }
        PqGuard {
            guard,
            stat: self.stat,
            acquired: recording.then(Instant::now),
            poisoned,
        }
    }

    /// Consume the mutex, recovering the value even if poisoned.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for PqMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PqMutex")
            .field("name", &self.stat.name)
            .finish_non_exhaustive()
    }
}

/// Guard for a held [`PqMutex`]; records hold time on drop.
pub struct PqGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    stat: &'static LockStat,
    acquired: Option<Instant>,
    poisoned: bool,
}

impl<T> PqGuard<'_, T> {
    /// Did this acquisition recover a poisoned mutex? Callers surface
    /// this as a degradation (e.g. a control-plane `CoverageGap`).
    pub fn was_poisoned(&self) -> bool {
        self.poisoned
    }
}

impl<T> std::ops::Deref for PqGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for PqGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for PqGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(t0) = self.acquired {
            self.stat.hold.record(t0.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn records_wait_hold_and_contention() {
        let _g = crate::test_lock();
        crate::reset();
        let m = Arc::new(PqMutex::new("prof/test_lock", 0u64));
        {
            let mut g = m.lock();
            *g += 1;
            assert!(!g.was_poisoned());
        }
        // Force contention: hold in one thread, acquire in another.
        let m2 = Arc::clone(&m);
        let g = m.lock();
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            *g += 1;
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
        drop(g);
        t.join().unwrap();
        let snap = locks_snapshot();
        let s = snap.iter().find(|s| s.name == "prof/test_lock").unwrap();
        assert_eq!(s.acquisitions, 3);
        assert!(s.contended >= 1);
        assert_eq!(s.poisoned, 0);
        assert_eq!(s.wait.count, 3);
        assert_eq!(s.hold.count, 3);
        assert!(s.hold.max >= 1_000_000, "held >= 1ms across the sleep");
        crate::reset();
    }

    #[test]
    fn poisoned_lock_recovers_and_reports() {
        let _g = crate::test_lock();
        crate::reset();
        let m = Arc::new(PqMutex::new("prof/test_poison", vec![1, 2, 3]));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the mutex");
        })
        .join();
        let g = m.lock();
        assert!(g.was_poisoned(), "poisoning is reported, not propagated");
        assert_eq!(*g, vec![1, 2, 3], "data survives recovery");
        drop(g);
        let snap = locks_snapshot();
        let s = snap.iter().find(|s| s.name == "prof/test_poison").unwrap();
        assert_eq!(s.poisoned, 1);
        crate::reset();
    }

    #[test]
    fn disabled_stats_skip_histograms_but_not_poison_counts() {
        let _g = crate::test_lock();
        crate::reset();
        set_lock_stats(false);
        let m = PqMutex::new("prof/test_disabled_lock", ());
        drop(m.lock());
        set_lock_stats(true);
        assert!(!locks_snapshot()
            .iter()
            .any(|s| s.name == "prof/test_disabled_lock"));
    }
}
