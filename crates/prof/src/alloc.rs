//! Optional counting allocator attributing allocations to scopes.
//!
//! [`CountingAlloc`] wraps the system allocator. When tracking is on,
//! every allocation adds one count and its size to the innermost active
//! profiling scope on the allocating thread (via the same thread-local
//! pointer the scope guards maintain). The hook is reentrancy-safe by
//! construction: it performs only relaxed atomic adds on leaked stats
//! and probes a const-initialised TLS cell, so it can never allocate —
//! and `try_with` keeps it sound during thread teardown.
//!
//! Install it in a binary with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: pq_prof::CountingAlloc = pq_prof::CountingAlloc;
//! ```
//!
//! and arm it at runtime with [`set_alloc_tracking`]. Off (the default)
//! the overhead is one relaxed load per allocation.

use crate::scope;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, Ordering};

static ALLOC_TRACK: AtomicBool = AtomicBool::new(false);

/// Arm or disarm allocation attribution. Only has an effect in binaries
/// that installed [`CountingAlloc`] as their global allocator.
pub fn set_alloc_tracking(on: bool) {
    ALLOC_TRACK.store(on, Ordering::Relaxed);
}

/// Is allocation attribution armed?
#[inline]
pub fn alloc_tracking() -> bool {
    ALLOC_TRACK.load(Ordering::Relaxed)
}

#[inline]
fn note(bytes: usize) {
    if !alloc_tracking() {
        return;
    }
    let stat = scope::current_stat();
    if !stat.is_null() {
        // Safety: scope stats are leaked &'static cells.
        unsafe { &*stat }.note_alloc(bytes as u64);
    }
}

/// System-allocator wrapper that attributes allocations to the
/// innermost profiling scope.
pub struct CountingAlloc;

// Safety: defers every allocation to `System` unchanged; the counting
// side effect touches only atomics and never allocates.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            note(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            note(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() && new_size > layout.size() {
            note(new_size - layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}
