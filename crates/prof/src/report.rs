//! Plain-data profile reports: capture, canonical codec, and merging.
//!
//! A [`ProfileReport`] is the unit that travels the wire (`pqsim prof
//! --from`, the router's scatter-gather) and lands in files (folded
//! text, JSON). Three properties carry the whole design:
//!
//! * **Canonical form.** Scopes, locks, and collapsed stacks are sorted
//!   by name; histograms encode as sparse ascending `(bucket, count)`
//!   pairs. Equal reports therefore encode to equal bytes.
//! * **Associative, commutative merge.** Merging sums scope and stack
//!   counts and folds histograms element-wise, keyed by *name* — so the
//!   router's merge of N backend dumps is order-independent and byte-
//!   identical to a client merging the same dumps itself (the same bar
//!   `RttReport` holds).
//! * **Hostile-input-safe decode.** Every count is validated against
//!   the bytes actually present before anything allocates, names are
//!   length-capped UTF-8, histograms must be internally consistent, and
//!   canonical ordering is enforced — a decoded report re-encodes to
//!   the same bytes.

use crate::hist::{HistSnapshot, NUM_BUCKETS};
use crate::lock::LockSnapshot;
use crate::{lock, sampler, scope};

/// Decoded reports refuse more than this many scopes.
pub const MAX_WIRE_SCOPES: usize = 4_096;
/// Decoded reports refuse more than this many named locks.
pub const MAX_WIRE_LOCKS: usize = 256;
/// Decoded reports refuse more than this many collapsed stacks.
pub const MAX_WIRE_STACKS: usize = sampler::MAX_DISTINCT_STACKS;
/// Longest scope or lock name on the wire.
pub const MAX_NAME_LEN: usize = 128;
/// Upper bound on an encoded report (the serving tier enforces it
/// before buffering a remote dump).
pub const MAX_ENCODED_LEN: usize = 16 << 20;

const MAGIC: &[u8; 4] = b"PQPF";
const VERSION: u16 = 1;

/// Exact aggregate for one scope name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScopeEntry {
    pub name: String,
    pub calls: u64,
    pub total_ns: u64,
    pub child_ns: u64,
    pub allocs: u64,
    pub alloc_bytes: u64,
}

impl ScopeEntry {
    /// Wall time spent in this scope excluding named child scopes.
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_ns)
    }
}

/// One collapsed stack (outermost frame first) and its sample count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackEntry {
    pub frames: Vec<String>,
    pub count: u64,
}

/// A complete, self-contained profile of one process (or a merge of
/// several).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProfileReport {
    pub samples_total: u64,
    pub samples_dropped: u64,
    /// Sorted by name.
    pub scopes: Vec<ScopeEntry>,
    /// Sorted by name.
    pub locks: Vec<LockSnapshot>,
    /// Sorted by frame path.
    pub stacks: Vec<StackEntry>,
}

impl ProfileReport {
    pub fn is_empty(&self) -> bool {
        self.scopes.is_empty() && self.locks.is_empty() && self.stacks.is_empty()
    }

    /// Snapshot the process-global profiler state into canonical form.
    pub fn capture() -> ProfileReport {
        let scopes = scope::scopes_snapshot()
            .into_iter()
            .map(
                |(name, calls, total_ns, child_ns, allocs, alloc_bytes)| ScopeEntry {
                    name: name.to_string(),
                    calls,
                    total_ns,
                    child_ns,
                    allocs,
                    alloc_bytes,
                },
            )
            .collect();
        let stacks = sampler::stacks_snapshot()
            .into_iter()
            .map(|(frames, count)| StackEntry {
                frames: frames.into_iter().map(str::to_string).collect(),
                count,
            })
            .collect();
        ProfileReport {
            samples_total: sampler::samples_total(),
            samples_dropped: sampler::samples_dropped(),
            scopes,
            locks: lock::locks_snapshot(),
            stacks,
        }
    }

    /// Fold another report in. Name-keyed sums everywhere, so the fold
    /// is associative and commutative and the result stays canonical.
    pub fn merge(&mut self, other: &ProfileReport) {
        self.samples_total += other.samples_total;
        self.samples_dropped += other.samples_dropped;
        for s in &other.scopes {
            match self.scopes.binary_search_by(|e| e.name.cmp(&s.name)) {
                Ok(i) => {
                    let e = &mut self.scopes[i];
                    e.calls += s.calls;
                    e.total_ns += s.total_ns;
                    e.child_ns += s.child_ns;
                    e.allocs += s.allocs;
                    e.alloc_bytes += s.alloc_bytes;
                }
                Err(i) => self.scopes.insert(i, s.clone()),
            }
        }
        for l in &other.locks {
            match self.locks.binary_search_by(|e| e.name.cmp(&l.name)) {
                Ok(i) => {
                    let e = &mut self.locks[i];
                    e.acquisitions += l.acquisitions;
                    e.contended += l.contended;
                    e.poisoned += l.poisoned;
                    e.wait.merge(&l.wait);
                    e.hold.merge(&l.hold);
                }
                Err(i) => self.locks.insert(i, l.clone()),
            }
        }
        for s in &other.stacks {
            match self.stacks.binary_search_by(|e| e.frames.cmp(&s.frames)) {
                Ok(i) => self.stacks[i].count += s.count,
                Err(i) => self.stacks.insert(i, s.clone()),
            }
        }
    }

    /// Scopes by self time, largest first (ties break by name).
    pub fn top_self(&self, n: usize) -> Vec<&ScopeEntry> {
        let mut v: Vec<&ScopeEntry> = self.scopes.iter().collect();
        v.sort_by(|a, b| b.self_ns().cmp(&a.self_ns()).then(a.name.cmp(&b.name)));
        v.truncate(n);
        v
    }

    /// Flamegraph-ready collapsed-stack text: one `a;b;c count` line per
    /// stack, sorted — feed straight to `flamegraph.pl` / `inferno`.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for s in &self.stacks {
            out.push_str(&s.frames.join(";"));
            out.push(' ');
            out.push_str(&s.count.to_string());
            out.push('\n');
        }
        out
    }

    /// Human-readable top-N self-time table plus lock lines.
    pub fn render(&self, top: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "profile: {} scope(s), {} lock(s), {} stack sample(s) ({} dropped)\n",
            self.scopes.len(),
            self.locks.len(),
            self.samples_total,
            self.samples_dropped
        ));
        if !self.scopes.is_empty() {
            let total_self: u64 = self.scopes.iter().map(|s| s.self_ns()).sum();
            out.push_str(&format!(
                "{:<28} {:>12} {:>14} {:>14} {:>6}\n",
                "scope", "calls", "self", "total", "self%"
            ));
            for s in self.top_self(top) {
                let pct = if total_self == 0 {
                    0.0
                } else {
                    100.0 * s.self_ns() as f64 / total_self as f64
                };
                out.push_str(&format!(
                    "{:<28} {:>12} {:>14} {:>14} {:>5.1}%\n",
                    s.name,
                    s.calls,
                    fmt_ns(s.self_ns()),
                    fmt_ns(s.total_ns),
                    pct
                ));
                if s.allocs > 0 {
                    out.push_str(&format!(
                        "{:<28} {:>12} alloc(s), {} B\n",
                        "", s.allocs, s.alloc_bytes
                    ));
                }
            }
        }
        for l in &self.locks {
            out.push_str(&format!(
                "lock {:<22} {:>8} acq, {} contended, {} poisoned, wait p99 {}, hold p99 {}\n",
                l.name,
                l.acquisitions,
                l.contended,
                l.poisoned,
                fmt_ns(l.wait.p99()),
                fmt_ns(l.hold.p99())
            ));
        }
        out
    }

    /// One stable-ordered JSON document (hand-rolled: pq-prof has no
    /// dependencies). Equal reports produce equal text.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"samples_total\":{},\"samples_dropped\":{},\"scopes\":[",
            self.samples_total, self.samples_dropped
        ));
        for (i, s) in self.scopes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"calls\":{},\"self_ns\":{},\"total_ns\":{},\"allocs\":{},\"alloc_bytes\":{}}}",
                json_str(&s.name),
                s.calls,
                s.self_ns(),
                s.total_ns,
                s.allocs,
                s.alloc_bytes
            ));
        }
        out.push_str("],\"locks\":[");
        for (i, l) in self.locks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"acquisitions\":{},\"contended\":{},\"poisoned\":{},\"wait_p50_ns\":{},\"wait_p99_ns\":{},\"hold_p50_ns\":{},\"hold_p99_ns\":{}}}",
                json_str(&l.name),
                l.acquisitions,
                l.contended,
                l.poisoned,
                l.wait.p50(),
                l.wait.p99(),
                l.hold.p50(),
                l.hold.p99()
            ));
        }
        out.push_str("],\"stacks\":[");
        for (i, s) in self.stacks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"frames\":[");
            for (j, f) in s.frames.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_str(f));
            }
            out.push_str(&format!("],\"count\":{}}}", s.count));
        }
        out.push_str("]}");
        out
    }

    /// Canonical binary encoding (magic + version + sections).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(MAGIC);
        put_u16(&mut buf, VERSION);
        put_u64(&mut buf, self.samples_total);
        put_u64(&mut buf, self.samples_dropped);
        put_u32(&mut buf, self.scopes.len() as u32);
        for s in &self.scopes {
            put_name(&mut buf, &s.name);
            put_u64(&mut buf, s.calls);
            put_u64(&mut buf, s.total_ns);
            put_u64(&mut buf, s.child_ns);
            put_u64(&mut buf, s.allocs);
            put_u64(&mut buf, s.alloc_bytes);
        }
        put_u32(&mut buf, self.locks.len() as u32);
        for l in &self.locks {
            put_name(&mut buf, &l.name);
            put_u64(&mut buf, l.acquisitions);
            put_u64(&mut buf, l.contended);
            put_u64(&mut buf, l.poisoned);
            put_hist(&mut buf, &l.wait);
            put_hist(&mut buf, &l.hold);
        }
        put_u32(&mut buf, self.stacks.len() as u32);
        for s in &self.stacks {
            buf.push(s.frames.len() as u8);
            for f in &s.frames {
                put_name(&mut buf, f);
            }
            put_u64(&mut buf, s.count);
        }
        buf
    }

    /// Decode and fully validate an encoded report.
    pub fn decode(bytes: &[u8]) -> Result<ProfileReport, String> {
        if bytes.len() > MAX_ENCODED_LEN {
            return Err(format!("profile dump exceeds {MAX_ENCODED_LEN} bytes"));
        }
        let mut c = Cursor { bytes, pos: 0 };
        if c.take(4)? != MAGIC {
            return Err("bad profile magic".into());
        }
        let version = c.u16()?;
        if version != VERSION {
            return Err(format!("unsupported profile version {version}"));
        }
        let samples_total = c.u64()?;
        let samples_dropped = c.u64()?;

        let n_scopes = c.count(MAX_WIRE_SCOPES, 2 + 1 + 5 * 8, "scopes")?;
        let mut scopes = Vec::with_capacity(n_scopes);
        for _ in 0..n_scopes {
            scopes.push(ScopeEntry {
                name: c.name()?,
                calls: c.u64()?,
                total_ns: c.u64()?,
                child_ns: c.u64()?,
                allocs: c.u64()?,
                alloc_bytes: c.u64()?,
            });
        }
        if !scopes.windows(2).all(|w| w[0].name < w[1].name) {
            return Err("scopes not in canonical order".into());
        }

        let n_locks = c.count(MAX_WIRE_LOCKS, 2 + 1 + 3 * 8 + 2 * 33, "locks")?;
        let mut locks = Vec::with_capacity(n_locks);
        for _ in 0..n_locks {
            locks.push(LockSnapshot {
                name: c.name()?,
                acquisitions: c.u64()?,
                contended: c.u64()?,
                poisoned: c.u64()?,
                wait: c.hist()?,
                hold: c.hist()?,
            });
        }
        if !locks.windows(2).all(|w| w[0].name < w[1].name) {
            return Err("locks not in canonical order".into());
        }

        let n_stacks = c.count(MAX_WIRE_STACKS, 1 + (2 + 1) + 8, "stacks")?;
        let mut stacks = Vec::with_capacity(n_stacks);
        for _ in 0..n_stacks {
            let depth = c.u8()? as usize;
            if depth == 0 || depth > scope::MAX_DEPTH {
                return Err(format!("stack depth {depth} out of range"));
            }
            let mut frames = Vec::with_capacity(depth);
            for _ in 0..depth {
                frames.push(c.name()?);
            }
            let count = c.u64()?;
            if count == 0 {
                return Err("zero-count stack entry".into());
            }
            stacks.push(StackEntry { frames, count });
        }
        if !stacks.windows(2).all(|w| w[0].frames < w[1].frames) {
            return Err("stacks not in canonical order".into());
        }
        if c.pos != bytes.len() {
            return Err("trailing bytes after profile report".into());
        }
        Ok(ProfileReport {
            samples_total,
            samples_dropped,
            scopes,
            locks,
            stacks,
        })
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_name(buf: &mut Vec<u8>, s: &str) {
    debug_assert!(!s.is_empty() && s.len() <= MAX_NAME_LEN);
    put_u16(buf, s.len() as u16);
    buf.extend_from_slice(s.as_bytes());
}

fn put_hist(buf: &mut Vec<u8>, h: &HistSnapshot) {
    put_u64(buf, h.count);
    put_u64(buf, h.sum);
    put_u64(buf, h.min);
    put_u64(buf, h.max);
    let nonzero: Vec<(usize, u64)> = h
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(i, &n)| (i, n))
        .collect();
    buf.push(nonzero.len() as u8);
    for (i, n) in nonzero {
        buf.push(i as u8);
        put_u64(buf, n);
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.bytes.len() - self.pos < n {
            return Err("truncated profile report".into());
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an element count and reject it before allocating if the
    /// remaining bytes cannot possibly hold that many minimum-size
    /// elements (the hostile-length guard every wire decoder here uses).
    fn count(&mut self, max: usize, min_elem: usize, what: &str) -> Result<usize, String> {
        let n = self.u32()? as usize;
        if n > max {
            return Err(format!("{what} count {n} exceeds cap {max}"));
        }
        if self
            .bytes
            .len()
            .saturating_sub(self.pos)
            .checked_div(min_elem)
            .is_some_and(|cap| n > cap)
        {
            return Err(format!("{what} count {n} exceeds bytes present"));
        }
        Ok(n)
    }

    fn name(&mut self) -> Result<String, String> {
        let len = self.u16()? as usize;
        if len == 0 || len > MAX_NAME_LEN {
            return Err(format!("name length {len} out of range"));
        }
        let raw = self.take(len)?;
        std::str::from_utf8(raw)
            .map(str::to_string)
            .map_err(|_| "name is not UTF-8".into())
    }

    fn hist(&mut self) -> Result<HistSnapshot, String> {
        let count = self.u64()?;
        let sum = self.u64()?;
        let min = self.u64()?;
        let max = self.u64()?;
        let n = self.u8()? as usize;
        if n > NUM_BUCKETS {
            return Err("too many histogram buckets".into());
        }
        let mut h = HistSnapshot {
            buckets: [0; NUM_BUCKETS],
            count,
            sum,
            min,
            max,
        };
        let mut last: Option<usize> = None;
        for _ in 0..n {
            let idx = self.u8()? as usize;
            let cnt = self.u64()?;
            if idx >= NUM_BUCKETS || cnt == 0 || last.is_some_and(|l| idx <= l) {
                return Err("malformed histogram buckets".into());
            }
            h.buckets[idx] = cnt;
            last = Some(idx);
        }
        if !h.is_consistent() {
            return Err("inconsistent histogram".into());
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ProfileReport {
        let mut wait = HistSnapshot::default();
        wait.buckets[0] = 1;
        wait.buckets[5] = 2;
        wait.count = 3;
        wait.sum = 50;
        wait.min = 0;
        wait.max = 30;
        ProfileReport {
            samples_total: 10,
            samples_dropped: 1,
            scopes: vec![
                ScopeEntry {
                    name: "a/one".into(),
                    calls: 3,
                    total_ns: 300,
                    child_ns: 100,
                    allocs: 2,
                    alloc_bytes: 64,
                },
                ScopeEntry {
                    name: "b/two".into(),
                    calls: 1,
                    total_ns: 100,
                    child_ns: 0,
                    allocs: 0,
                    alloc_bytes: 0,
                },
            ],
            locks: vec![LockSnapshot {
                name: "freeze".into(),
                acquisitions: 3,
                contended: 1,
                poisoned: 0,
                wait: wait.clone(),
                hold: wait,
            }],
            stacks: vec![
                StackEntry {
                    frames: vec!["a/one".into()],
                    count: 4,
                },
                StackEntry {
                    frames: vec!["a/one".into(), "b/two".into()],
                    count: 6,
                },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let r = sample_report();
        let bytes = r.encode();
        let back = ProfileReport::decode(&bytes).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.encode(), bytes, "decode/encode is idempotent");
    }

    #[test]
    fn decode_rejects_hostile_bytes() {
        let r = sample_report();
        let bytes = r.encode();
        assert!(ProfileReport::decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(ProfileReport::decode(b"nope").is_err());
        let mut huge = bytes.clone();
        // Claim 4 billion scopes with no bytes behind them (the scope
        // count sits after magic + version + two u64 sample counters).
        huge[22..26].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(ProfileReport::decode(&huge).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(ProfileReport::decode(&trailing).is_err());
    }

    #[test]
    fn merge_is_name_keyed_and_canonical() {
        let a = sample_report();
        let mut b = ProfileReport::default();
        b.scopes.push(ScopeEntry {
            name: "a/one".into(),
            calls: 1,
            total_ns: 50,
            child_ns: 10,
            allocs: 0,
            alloc_bytes: 0,
        });
        b.stacks.push(StackEntry {
            frames: vec!["a/one".into()],
            count: 1,
        });

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge commutes");
        assert_eq!(ab.encode(), ba.encode(), "merged bytes identical");
        assert_eq!(ab.scopes[0].calls, 4);
        assert_eq!(ab.stacks[0].count, 5);
    }

    #[test]
    fn folded_and_render_shapes() {
        let r = sample_report();
        let folded = r.folded();
        assert!(folded.contains("a/one;b/two 6\n"));
        assert!(folded.contains("a/one 4\n"));
        let table = r.render(10);
        assert!(table.contains("a/one"));
        assert!(table.contains("lock freeze"));
        let json = r.to_json();
        assert!(json.contains("\"samples_total\":10"));
        assert!(json.contains("\"wait_p99_ns\""));
    }

    #[test]
    fn capture_reflects_live_state() {
        let _g = crate::test_lock();
        crate::reset();
        crate::set_enabled(true);
        {
            crate::scope!("prof/report_capture");
            crate::sampler::sample_once();
        }
        crate::set_enabled(false);
        let r = ProfileReport::capture();
        assert!(r.scopes.iter().any(|s| s.name == "prof/report_capture"));
        assert!(r
            .stacks
            .iter()
            .any(|s| s.frames.last().map(String::as_str) == Some("prof/report_capture")));
        assert!(r.samples_total >= 1);
        let bytes = r.encode();
        assert_eq!(ProfileReport::decode(&bytes).unwrap(), r);
        crate::reset();
    }
}
