//! pq-prof: a dependency-free continuous profiler for the reproduction.
//!
//! PrintQueue's thesis is that diagnosis must live in the data path with
//! bounded overhead; this crate applies the same bar to the pipeline
//! itself. Four pieces, all process-global (a process has one profile,
//! the way it has one allocator):
//!
//! * [`scope!`] — `prof::scope!("serve/worker_exec")` call sites that
//!   maintain per-thread scope stacks and exact per-scope aggregates
//!   (calls, total/self wall time, attributed allocations). Disabled —
//!   the default — a site costs one relaxed atomic load, the same
//!   contract as `SpanTracer`.
//! * [`sampler`] — a background ticker that folds live scope stacks
//!   into bounded collapsed-stack counts, the format flamegraphs eat.
//! * [`lock`] — [`PqMutex`], a named instrumented mutex facade
//!   publishing wait/hold log2 histograms and contention counters, and
//!   recovering poisoning instead of propagating it. These histograms
//!   are the before/after evidence for the ROADMAP lock-removal work.
//! * [`alloc`] — [`CountingAlloc`], an optional `GlobalAlloc` wrapper
//!   attributing allocation count/bytes to the innermost scope.
//!
//! [`ProfileReport`] snapshots all of it into canonical plain data with
//! a validated binary codec and an associative, commutative merge — so
//! profile dumps travel the serve wire, merge in the router, and stay
//! byte-identical however they are folded.

pub mod alloc;
pub mod hist;
pub mod lock;
pub mod report;
pub mod sampler;
pub mod scope;

pub use alloc::{alloc_tracking, set_alloc_tracking, CountingAlloc};
pub use hist::{bucket_index, bucket_lower_bound, bucket_upper_bound, Hist, HistSnapshot};
pub use lock::{lock_stats_enabled, set_lock_stats, LockSnapshot, PqGuard, PqMutex};
pub use report::{
    ProfileReport, ScopeEntry, StackEntry, MAX_ENCODED_LEN, MAX_NAME_LEN, MAX_WIRE_LOCKS,
    MAX_WIRE_SCOPES, MAX_WIRE_STACKS,
};
pub use sampler::{
    sample_once, sampler_running, samples_dropped, samples_total, start_sampler, stop_sampler,
    MAX_DISTINCT_STACKS,
};
pub use scope::{enabled, set_enabled, ScopeGuard, Site, MAX_DEPTH};

/// Clear every aggregate — scope stats, lock stats, captured stacks and
/// sample counters. Interned names and thread registrations survive.
/// For benches and tests; concurrent recorders may interleave.
pub fn reset() {
    scope::reset_scopes();
    lock::reset_locks();
    sampler::reset_sampler_state();
}

/// Serialize tests and benches that exercise the process-global
/// profiler state. Not part of the public API surface proper, but
/// exported so integration tests outside this crate can use it too.
#[doc(hidden)]
pub fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GATE.lock().unwrap_or_else(|p| p.into_inner())
}
