//! Background ticker that folds live scope stacks into collapsed form.
//!
//! Every tick the sampler walks the thread registry, takes a seqlock
//! read of each live thread's scope stack, and increments that stack's
//! count in a bounded map — exactly the "collapsed stack" format
//! flamegraph tooling consumes (`outer;inner count`). Threads with an
//! empty stack are idle and contribute nothing, so a quiesced process
//! accumulates no samples and its profile dump is stable — the property
//! the routed-dump byte-identity test leans on.
//!
//! The map is capped at [`MAX_DISTINCT_STACKS`]; overflow increments
//! `samples_dropped` instead of growing without bound, and that counter
//! is CI-gated so silent sample loss fails loudly.

use crate::scope;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Most distinct collapsed stacks retained before counting drops.
pub const MAX_DISTINCT_STACKS: usize = 8_192;

static SAMPLES_TOTAL: AtomicU64 = AtomicU64::new(0);
static SAMPLES_DROPPED: AtomicU64 = AtomicU64::new(0);

/// Collapsed stacks keyed by frame-id path (outermost first).
static STACKS: Mutex<BTreeMap<Vec<u32>, u64>> = Mutex::new(BTreeMap::new());

struct Sampler {
    stop: Arc<AtomicBool>,
    join: JoinHandle<()>,
}

static SAMPLER: Mutex<Option<Sampler>> = Mutex::new(None);

/// Stack samples captured so far.
pub fn samples_total() -> u64 {
    SAMPLES_TOTAL.load(Ordering::Relaxed)
}

/// Stack samples dropped because the collapsed-stack map was full.
pub fn samples_dropped() -> u64 {
    SAMPLES_DROPPED.load(Ordering::Relaxed)
}

/// Take one sampling pass over every live thread right now. Used by the
/// ticker, and directly by tests that need determinism without a
/// background thread.
pub fn sample_once() {
    for thread in scope::live_threads() {
        let Some(frames) = thread.sample() else {
            continue;
        };
        let mut stacks = STACKS.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(count) = stacks.get_mut(&frames) {
            *count += 1;
        } else if stacks.len() < MAX_DISTINCT_STACKS {
            stacks.insert(frames, 1);
        } else {
            SAMPLES_DROPPED.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        SAMPLES_TOTAL.fetch_add(1, Ordering::Relaxed);
    }
}

/// Start the background sampling ticker. Idempotent: if a sampler is
/// already running the call is a no-op (the process has one profile).
pub fn start_sampler(period: Duration) {
    let mut slot = SAMPLER.lock().unwrap_or_else(|p| p.into_inner());
    if slot.is_some() {
        return;
    }
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let period = period.max(Duration::from_micros(100));
    let join = std::thread::Builder::new()
        .name("pq-prof-sampler".into())
        .spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                sample_once();
                std::thread::sleep(period);
            }
        })
        .expect("spawn pq-prof sampler");
    *slot = Some(Sampler { stop, join });
}

/// Stop the background sampler, if one is running, and wait for it.
pub fn stop_sampler() {
    let sampler = SAMPLER.lock().unwrap_or_else(|p| p.into_inner()).take();
    if let Some(s) = sampler {
        s.stop.store(true, Ordering::Relaxed);
        let _ = s.join.join();
    }
}

/// Is a background sampler currently running?
pub fn sampler_running() -> bool {
    SAMPLER.lock().unwrap_or_else(|p| p.into_inner()).is_some()
}

/// Collapsed stacks with ids resolved to names, sorted by frame path.
/// Frames whose id no longer resolves (a torn sample that slipped past
/// the seq check) are dropped whole rather than misattributed.
pub(crate) fn stacks_snapshot() -> Vec<(Vec<&'static str>, u64)> {
    let stacks = STACKS.lock().unwrap_or_else(|p| p.into_inner());
    let mut out = Vec::with_capacity(stacks.len());
    for (frames, &count) in stacks.iter() {
        let names: Vec<&'static str> = frames
            .iter()
            .filter_map(|&id| scope::stat_by_id(id).map(|s| s.name))
            .collect();
        if names.len() == frames.len() {
            out.push((names, count));
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Clear captured stacks and sample counters (benches and tests).
pub(crate) fn reset_sampler_state() {
    STACKS.lock().unwrap_or_else(|p| p.into_inner()).clear();
    SAMPLES_TOTAL.store(0, Ordering::Relaxed);
    SAMPLES_DROPPED.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_once_collapses_active_stacks() {
        let _g = crate::test_lock();
        crate::set_enabled(true);
        {
            crate::scope!("prof/sampler_outer");
            {
                crate::scope!("prof/sampler_inner");
                sample_once();
                sample_once();
            }
        }
        crate::set_enabled(false);
        let stacks = stacks_snapshot();
        let found = stacks.iter().find(|(frames, _)| {
            frames.len() >= 2
                && frames[frames.len() - 2] == "prof/sampler_outer"
                && frames[frames.len() - 1] == "prof/sampler_inner"
        });
        let (_, count) = found.expect("collapsed stack captured");
        assert!(*count >= 2);
        crate::reset();
    }

    #[test]
    fn ticker_starts_and_stops() {
        start_sampler(Duration::from_millis(1));
        assert!(sampler_running());
        // Idempotent second start.
        start_sampler(Duration::from_millis(1));
        stop_sampler();
        assert!(!sampler_running());
    }
}
