//! Atomic log2-bucketed histogram, bucket-compatible with pq-telemetry.
//!
//! pq-prof is dependency-free (it sits *below* pq-telemetry so the
//! telemetry plane can re-export profiler series), so it carries its own
//! histogram — but the bucketing scheme is byte-for-byte the one in
//! `pq_telemetry::histogram`: bucket 0 holds the value 0 and bucket
//! `i >= 1` holds `[2^(i-1), 2^i - 1]`. That makes converting a
//! [`HistSnapshot`] into a telemetry `HistogramSnapshot` a lossless field
//! copy, and it means lock-wait p99s computed here agree with the ones
//! `pqsim telemetry` computes after the conversion.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count shared with `pq_telemetry::NUM_BUCKETS`.
pub const NUM_BUCKETS: usize = 65;

/// Which bucket a value lands in (0 for 0, else `64 - leading_zeros`).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    match v {
        0 => 0,
        n => 64 - n.leading_zeros() as usize,
    }
}

/// The smallest value bucket `i` can hold.
pub fn bucket_lower_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        n => 1u64 << (n - 1),
    }
}

/// The largest value bucket `i` can hold (`u64::MAX` for the last).
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64.. => u64::MAX,
        n => (1u64 << n) - 1,
    }
}

/// Lock-free recording histogram. Recording is a handful of relaxed
/// atomic adds; snapshotting is a relaxed sweep.
pub struct Hist {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Hist {
    pub fn new() -> Hist {
        Hist::default()
    }

    /// Record one sample. Lock-free, alloc-free, thread-safe.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Plain-data copy of the current state.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Zero every cell (tests and benches only; concurrent recorders may
    /// interleave, which is fine for those callers).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Plain-data histogram state; merges element-wise, so merging is
/// associative and commutative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    pub buckets: [u64; NUM_BUCKETS],
    pub count: u64,
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistSnapshot {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Fold another snapshot in (element-wise sums, min/max extremes).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Approximate quantile by cumulative bucket walk with linear
    /// interpolation inside the landing bucket, clamped to `[min, max]`
    /// — the same estimator pq-telemetry uses, so p99s agree.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = bucket_lower_bound(i);
                let hi = bucket_upper_bound(i);
                let frac = (rank - seen) as f64 / n as f64;
                let est = lo as f64 + frac * (hi.saturating_sub(lo)) as f64;
                return (est as u64).clamp(self.min.min(self.max), self.max);
            }
            seen += n;
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Internal consistency: bucket counts sum to `count`, and min/max
    /// are coherent with occupancy. Decoders reject snapshots that fail
    /// this, so hostile bytes cannot smuggle an inconsistent histogram.
    pub fn is_consistent(&self) -> bool {
        let total: u64 = self.buckets.iter().fold(0u64, |a, &b| a.saturating_add(b));
        if total != self.count {
            return false;
        }
        if self.count == 0 {
            return self.min == u64::MAX && self.max == 0 && self.sum == 0;
        }
        self.min <= self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_match_telemetry_scheme() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_lower_bound(i)), i);
            assert_eq!(bucket_index(bucket_upper_bound(i)), i);
        }
    }

    #[test]
    fn record_snapshot_merge() {
        let h = Hist::new();
        h.record(0);
        h.record(5);
        h.record(1000);
        let a = h.snapshot();
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 1005);
        assert_eq!(a.min, 0);
        assert_eq!(a.max, 1000);
        assert!(a.is_consistent());

        let mut m = a.clone();
        m.merge(&a);
        assert_eq!(m.count, 6);
        assert_eq!(m.sum, 2010);
        assert!(m.is_consistent());
        assert_eq!(HistSnapshot::default().quantile(0.99), 0);
        assert!(a.p99() <= 1000);
        assert!(a.p50() <= a.p99());
    }
}
