//! Property tests for the profile codec and merge algebra.
//!
//! The router's scatter-gather leans on two laws: `decode(encode(r)) ==
//! r` for canonical reports, and merge being associative and
//! commutative — so a routed dump folded in any backend order encodes
//! to the same bytes a client folding the same dumps produces.

use pq_prof::hist::HistSnapshot;
use pq_prof::{LockSnapshot, ProfileReport, ScopeEntry, StackEntry};
use proptest::prelude::*;

/// Short lowercase names like the real scope/lock literals.
fn arb_name() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..27, 1..16).prop_map(|bytes| {
        bytes
            .into_iter()
            .map(|b| if b == 26 { '/' } else { (b'a' + b) as char })
            .collect()
    })
}

/// A consistent histogram, built the way recording builds one.
fn arb_hist() -> impl Strategy<Value = HistSnapshot> {
    proptest::collection::vec(0u64..1_000_000, 0..8).prop_map(|samples| {
        let mut h = HistSnapshot::default();
        for v in samples {
            h.buckets[pq_prof::bucket_index(v)] += 1;
            h.count += 1;
            h.sum += v;
            h.min = h.min.min(v);
            h.max = h.max.max(v);
        }
        h
    })
}

fn arb_scope() -> impl Strategy<Value = ScopeEntry> {
    (
        arb_name(),
        0u64..10_000,
        0u64..1_000_000_000,
        0u64..1_000_000_000,
        0u64..10_000,
        0u64..1_000_000,
    )
        .prop_map(
            |(name, calls, total_ns, child_ns, allocs, alloc_bytes)| ScopeEntry {
                name,
                calls,
                total_ns,
                child_ns,
                allocs,
                alloc_bytes,
            },
        )
}

fn arb_lock() -> impl Strategy<Value = LockSnapshot> {
    (
        arb_name(),
        0u64..10_000,
        0u64..100,
        0u64..3,
        arb_hist(),
        arb_hist(),
    )
        .prop_map(
            |(name, acquisitions, contended, poisoned, wait, hold)| LockSnapshot {
                name,
                acquisitions,
                contended,
                poisoned,
                wait,
                hold,
            },
        )
}

fn arb_stack() -> impl Strategy<Value = StackEntry> {
    (proptest::collection::vec(arb_name(), 1..5), 1u64..100_000)
        .prop_map(|(frames, count)| StackEntry { frames, count })
}

/// A canonical report: sections sorted and deduped by key, the form
/// `capture()` and `merge()` always produce.
fn arb_report() -> impl Strategy<Value = ProfileReport> {
    (
        0u64..1_000_000,
        0u64..1_000,
        proptest::collection::vec(arb_scope(), 0..10),
        proptest::collection::vec(arb_lock(), 0..5),
        proptest::collection::vec(arb_stack(), 0..10),
    )
        .prop_map(
            |(samples_total, samples_dropped, mut scopes, mut locks, mut stacks)| {
                scopes.sort_by(|a, b| a.name.cmp(&b.name));
                scopes.dedup_by(|a, b| a.name == b.name);
                locks.sort_by(|a, b| a.name.cmp(&b.name));
                locks.dedup_by(|a, b| a.name == b.name);
                stacks.sort_by(|a, b| a.frames.cmp(&b.frames));
                stacks.dedup_by(|a, b| a.frames == b.frames);
                ProfileReport {
                    samples_total,
                    samples_dropped,
                    scopes,
                    locks,
                    stacks,
                }
            },
        )
}

proptest! {
    #[test]
    fn encode_decode_round_trips(r in arb_report()) {
        let bytes = r.encode();
        let back = ProfileReport::decode(&bytes).unwrap();
        prop_assert_eq!(&back, &r);
        prop_assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn truncation_never_decodes(r in arb_report(), cut in 1usize..64) {
        let bytes = r.encode();
        if cut < bytes.len() {
            prop_assert!(ProfileReport::decode(&bytes[..bytes.len() - cut]).is_err());
        }
    }

    #[test]
    fn merge_commutes(a in arb_report(), b in arb_report()) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.encode(), ba.encode());
    }

    #[test]
    fn merge_is_associative(a in arb_report(), b in arb_report(), c in arb_report()) {
        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left.encode(), right.encode());
    }

    #[test]
    fn merge_with_empty_is_identity(a in arb_report()) {
        let mut merged = a.clone();
        merged.merge(&ProfileReport::default());
        prop_assert_eq!(&merged, &a);
        let mut other = ProfileReport::default();
        other.merge(&a);
        prop_assert_eq!(&other, &a);
    }

    #[test]
    fn random_bytes_never_panic_decode(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = ProfileReport::decode(&bytes);
    }
}

#[test]
fn hist_bucket_consistency_is_enforced() {
    let mut r = ProfileReport::default();
    let mut bad = HistSnapshot::default();
    bad.buckets[3] = 5;
    bad.count = 4; // buckets sum != count
    bad.min = 4;
    bad.max = 7;
    r.locks.push(LockSnapshot {
        name: "x".into(),
        acquisitions: 1,
        contended: 0,
        poisoned: 0,
        wait: bad,
        hold: HistSnapshot::default(),
    });
    let bytes = r.encode();
    assert!(ProfileReport::decode(&bytes).is_err());
}
