//! NetSight-style packet histories (Handigol et al., NSDI 2014) — the full
//! version of the linear-storage class the paper compares against in
//! Figure 14(a).
//!
//! NetSight has every switch emit a *postcard* per packet (truncated
//! header + switch/port/version info); a collector assembles each packet's
//! postcards into its *packet history* and answers filter queries over
//! them. Storage is strictly linear in traffic volume — complete fidelity,
//! at a cost PrintQueue's evaluation shows is orders of magnitude higher
//! for long timescales.
//!
//! The model here keeps the pieces PrintQueue's comparison cares about:
//! per-packet postcards with queue metadata, per-flow history assembly,
//! and time/flow/port-filtered queries (a simplified packet-history filter,
//! without the regex path language).

use pq_packet::{FlowId, Nanos};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One postcard: what a NetSight-instrumented switch mails the collector
/// for every packet it forwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Postcard {
    /// Emitting switch.
    pub switch: u32,
    /// Egress port.
    pub port: u16,
    /// The packet's flow.
    pub flow: FlowId,
    /// Packet sequence number (stands in for the header hash NetSight uses
    /// to correlate postcards of one packet).
    pub packet: u64,
    /// Dequeue timestamp at this hop.
    pub deq_timestamp: Nanos,
    /// Queueing delay at this hop.
    pub queue_delay: u32,
}

/// Bytes per postcard on the wire (NetSight compresses to ~tens of bytes;
/// 40 B is the figure the storage comparison uses).
pub const POSTCARD_BYTES: u64 = 40;

/// A filter over packet histories (conjunctive; `None` = wildcard).
#[derive(Debug, Clone, Copy, Default)]
pub struct HistoryFilter {
    pub flow: Option<FlowId>,
    pub switch: Option<u32>,
    pub port: Option<u16>,
    /// Dequeue-time window (inclusive).
    pub from: Option<Nanos>,
    pub to: Option<Nanos>,
    /// Only hops that queued at least this long.
    pub min_queue_delay: Option<u32>,
}

impl HistoryFilter {
    fn matches(&self, p: &Postcard) -> bool {
        self.flow.is_none_or(|f| p.flow == f)
            && self.switch.is_none_or(|s| p.switch == s)
            && self.port.is_none_or(|q| p.port == q)
            && self.from.is_none_or(|t| p.deq_timestamp >= t)
            && self.to.is_none_or(|t| p.deq_timestamp <= t)
            && self.min_queue_delay.is_none_or(|d| p.queue_delay >= d)
    }
}

/// The collector: stores every postcard and assembles packet histories.
#[derive(Debug, Default)]
pub struct HistoryCollector {
    postcards: Vec<Postcard>,
}

impl HistoryCollector {
    /// An empty collector.
    pub fn new() -> HistoryCollector {
        HistoryCollector::default()
    }

    /// Ingest one postcard.
    pub fn ingest(&mut self, postcard: Postcard) {
        self.postcards.push(postcard);
    }

    /// Number of stored postcards.
    pub fn len(&self) -> usize {
        self.postcards.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.postcards.is_empty()
    }

    /// Total collector storage in bytes — the linear cost of Figure 14(a).
    pub fn storage_bytes(&self) -> u64 {
        self.postcards.len() as u64 * POSTCARD_BYTES
    }

    /// All postcards matching a filter, in ingest order.
    pub fn query(&self, filter: &HistoryFilter) -> Vec<Postcard> {
        self.postcards
            .iter()
            .filter(|p| filter.matches(p))
            .copied()
            .collect()
    }

    /// Assemble one packet's full history (its postcards across switches,
    /// ordered by time) — NetSight's core primitive.
    pub fn packet_history(&self, packet: u64) -> Vec<Postcard> {
        let mut history: Vec<Postcard> = self
            .postcards
            .iter()
            .filter(|p| p.packet == packet)
            .copied()
            .collect();
        history.sort_by_key(|p| p.deq_timestamp);
        history
    }

    /// Per-flow packet counts over a dequeue-time window at one switch/port
    /// — the *exact* answer PrintQueue approximates, at linear cost.
    pub fn flow_counts(
        &self,
        switch: u32,
        port: u16,
        from: Nanos,
        to: Nanos,
    ) -> HashMap<FlowId, u64> {
        let mut counts = HashMap::new();
        let filter = HistoryFilter {
            switch: Some(switch),
            port: Some(port),
            from: Some(from),
            to: Some(to),
            ..Default::default()
        };
        for p in self.postcards.iter().filter(|p| filter.matches(p)) {
            *counts.entry(p.flow).or_insert(0) += 1;
        }
        counts
    }

    /// Drop postcards older than `horizon` (bounded-retention deployment).
    pub fn expire_before(&mut self, horizon: Nanos) {
        self.postcards.retain(|p| p.deq_timestamp >= horizon);
    }
}

/// A switch-side hook emitting postcards into a collector. (In NetSight the
/// collector is a separate server; sharing memory here only removes the
/// transport, not the cost accounting.)
#[derive(Debug)]
pub struct PostcardEmitter {
    /// This switch's id in the postcards.
    pub switch: u32,
    /// The collected mail.
    pub collector: HistoryCollector,
}

impl PostcardEmitter {
    /// Emit postcards as switch `switch`.
    pub fn new(switch: u32) -> PostcardEmitter {
        PostcardEmitter {
            switch,
            collector: HistoryCollector::new(),
        }
    }
}

impl pq_switch::QueueHooks for PostcardEmitter {
    fn on_dequeue(&mut self, pkt: &pq_packet::SimPacket, port: u16, _depth_after: u32, now: Nanos) {
        self.collector.ingest(Postcard {
            switch: self.switch,
            port,
            flow: pkt.flow,
            packet: pkt.seqno,
            deq_timestamp: now,
            queue_delay: pkt.meta.deq_timedelta,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn card(switch: u32, flow: u32, packet: u64, deq: Nanos, delay: u32) -> Postcard {
        Postcard {
            switch,
            port: 0,
            flow: FlowId(flow),
            packet,
            deq_timestamp: deq,
            queue_delay: delay,
        }
    }

    #[test]
    fn filters_compose_conjunctively() {
        let mut c = HistoryCollector::new();
        c.ingest(card(1, 10, 0, 100, 5));
        c.ingest(card(1, 11, 1, 200, 50));
        c.ingest(card(2, 10, 2, 300, 5));
        let hits = c.query(&HistoryFilter {
            switch: Some(1),
            flow: Some(FlowId(10)),
            ..Default::default()
        });
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].packet, 0);
        // Delay filter.
        let slow = c.query(&HistoryFilter {
            min_queue_delay: Some(10),
            ..Default::default()
        });
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].flow, FlowId(11));
    }

    #[test]
    fn packet_history_spans_switches_in_time_order() {
        let mut c = HistoryCollector::new();
        c.ingest(card(2, 7, 42, 500, 0)); // later hop ingested first
        c.ingest(card(1, 7, 42, 100, 0));
        c.ingest(card(1, 7, 43, 100, 0)); // different packet
        let history = c.packet_history(42);
        assert_eq!(history.len(), 2);
        assert_eq!(history[0].switch, 1);
        assert_eq!(history[1].switch, 2);
    }

    #[test]
    fn flow_counts_are_exact() {
        let mut c = HistoryCollector::new();
        for i in 0..100u64 {
            c.ingest(card(1, (i % 4) as u32, i, i * 10, 0));
        }
        let counts = c.flow_counts(1, 0, 100, 499); // packets 10..=49
        assert_eq!(counts.values().sum::<u64>(), 40);
        assert_eq!(counts[&FlowId(0)], 10);
    }

    #[test]
    fn storage_is_linear() {
        let mut c = HistoryCollector::new();
        for i in 0..1_000u64 {
            c.ingest(card(1, 0, i, i, 0));
        }
        assert_eq!(c.storage_bytes(), 1_000 * POSTCARD_BYTES);
        c.expire_before(500);
        assert_eq!(c.len(), 500);
    }

    #[test]
    fn emitter_hook_builds_histories_from_a_switch_run() {
        use pq_packet::{FlowId, SimPacket};
        use pq_switch::{Arrival, QueueHooks, Switch, SwitchConfig};
        let mut sw = Switch::new(SwitchConfig::single_port(10.0, 10_000));
        let mut emitter = PostcardEmitter::new(7);
        let arrivals: Vec<Arrival> = (0..50u64)
            .map(|i| Arrival::new(SimPacket::new(FlowId((i % 2) as u32), 1500, i * 500), 0))
            .collect();
        {
            let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut emitter];
            sw.run(arrivals, &mut hooks, 0);
        }
        assert_eq!(emitter.collector.len(), 50);
        let counts = emitter.collector.flow_counts(7, 0, 0, u64::MAX);
        assert_eq!(counts[&FlowId(0)], 25);
        assert_eq!(counts[&FlowId(1)], 25);
        // Every packet's one-hop history is intact.
        assert_eq!(emitter.collector.packet_history(10).len(), 1);
    }
}
