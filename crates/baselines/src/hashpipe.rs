//! HashPipe heavy-hitter tracking (Sivaraman et al., SOSR 2017).
//!
//! d pipelined stages, each a hash-indexed table of `(key, count)` slots.
//! Every packet is *always inserted* in the first stage; the evicted
//! `(key, count)` pair then walks the remaining stages, at each one either
//! merging with a matching key, filling an empty slot, or swapping with the
//! current occupant when the traveller's count is larger ("track the
//! minimum"). This keeps heavy hitters resident while mice churn through.
//!
//! The PrintQueue evaluation grants HashPipe 4096 slots × 5 stages and
//! resets it at PrintQueue's set period, prorating interval queries.

use pq_packet::{FlowId, FlowKey};
use std::collections::HashMap;

/// One table slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    key: FlowId,
    /// The tuple signature used for stage hashing (kept alongside the id so
    /// hashing does not depend on the intern order).
    sig: u32,
    count: u64,
}

impl Slot {
    const EMPTY: Slot = Slot {
        key: FlowId::NONE,
        sig: 0,
        count: 0,
    };

    fn is_empty(&self) -> bool {
        self.key.is_none()
    }
}

/// The HashPipe sketch.
#[derive(Debug, Clone)]
pub struct HashPipe {
    stages: Vec<Vec<Slot>>,
    slots_per_stage: usize,
    /// Packets observed since the last reset.
    pub packets: u64,
}

impl HashPipe {
    /// Build with `stages` stages of `slots_per_stage` slots (the paper's
    /// comparison uses 5 × 4096).
    pub fn new(stages: usize, slots_per_stage: usize) -> HashPipe {
        assert!(stages >= 1 && slots_per_stage >= 1);
        HashPipe {
            stages: vec![vec![Slot::EMPTY; slots_per_stage]; stages],
            slots_per_stage,
            packets: 0,
        }
    }

    /// Per-stage hash: mix the flow signature with a per-stage constant.
    fn index(&self, sig: u32, stage: usize) -> usize {
        // Distinct odd multipliers per stage decorrelate the stages.
        let mixed = sig
            .wrapping_mul(0x9e37_79b9u32.wrapping_add(0x85eb_ca6bu32.wrapping_mul(stage as u32)))
            .rotate_left(stage as u32 * 7 + 1);
        (mixed as usize) % self.slots_per_stage
    }

    /// Record one packet of `flow` (with tuple `key` for hashing).
    pub fn record(&mut self, flow: FlowId, key: &FlowKey) {
        self.packets += 1;
        let sig = key.signature();

        // Stage 0: always insert.
        let idx = self.index(sig, 0);
        let slot = &mut self.stages[0][idx];
        if slot.key == flow {
            slot.count += 1;
            return;
        }
        let mut traveller = Slot {
            key: flow,
            sig,
            count: 1,
        };
        if slot.is_empty() {
            *slot = traveller;
            return;
        }
        std::mem::swap(slot, &mut traveller);

        // Later stages: merge, fill, or swap-if-larger.
        for stage in 1..self.stages.len() {
            let idx = self.index(traveller.sig, stage);
            let slot = &mut self.stages[stage][idx];
            if slot.key == traveller.key {
                slot.count += traveller.count;
                return;
            }
            if slot.is_empty() {
                *slot = traveller;
                return;
            }
            if traveller.count > slot.count {
                std::mem::swap(slot, &mut traveller);
            }
        }
        // Evicted from the last stage: the traveller's count is lost.
    }

    /// Control-plane readout: per-flow packet counts, summing duplicates
    /// across stages.
    pub fn counts(&self) -> HashMap<FlowId, u64> {
        let mut out = HashMap::new();
        for stage in &self.stages {
            for slot in stage {
                if !slot.is_empty() {
                    *out.entry(slot.key).or_insert(0) += slot.count;
                }
            }
        }
        out
    }

    /// Reset all stages (the fixed-interval collection boundary).
    pub fn reset(&mut self) {
        for stage in &mut self.stages {
            stage.fill(Slot::EMPTY);
        }
        self.packets = 0;
    }

    /// SRAM bytes of the primary structure: each slot stores a 32-bit key
    /// and a 32-bit count.
    pub fn sram_bytes(&self) -> u64 {
        (self.stages.len() * self.slots_per_stage) as u64 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_packet::ipv4::Address;

    fn key(n: u16) -> FlowKey {
        FlowKey::tcp(
            Address::new(10, 0, (n / 250) as u8, (n % 250) as u8 + 1),
            1000 + n,
            Address::new(10, 1, 0, 1),
            80,
        )
    }

    #[test]
    fn single_flow_counted_exactly() {
        let mut hp = HashPipe::new(5, 64);
        let k = key(1);
        for _ in 0..100 {
            hp.record(FlowId(1), &k);
        }
        assert_eq!(hp.counts()[&FlowId(1)], 100);
    }

    #[test]
    fn few_flows_all_tracked() {
        let mut hp = HashPipe::new(5, 256);
        for round in 0..50 {
            for f in 0..10u16 {
                let _ = round;
                hp.record(FlowId(u32::from(f)), &key(f));
            }
        }
        let counts = hp.counts();
        for f in 0..10u16 {
            assert_eq!(counts[&FlowId(u32::from(f))], 50, "flow {f}");
        }
    }

    #[test]
    fn heavy_hitters_survive_crowding() {
        // 2 heavy flows (10k pkts) among 2000 mice (1 pkt each), with only
        // 2×64 slots: the heavies must retain large counts.
        let mut hp = HashPipe::new(2, 64);
        for i in 0..10_000 {
            hp.record(FlowId(0), &key(0));
            hp.record(FlowId(1), &key(1));
            if i < 2000 {
                hp.record(FlowId(100 + i), &key(100 + i as u16));
            }
        }
        let counts = hp.counts();
        assert!(counts.get(&FlowId(0)).copied().unwrap_or(0) > 5_000);
        assert!(counts.get(&FlowId(1)).copied().unwrap_or(0) > 5_000);
    }

    #[test]
    fn counts_never_exceed_truth_per_flow() {
        // HashPipe can undercount (evictions) but a flow's total must not
        // exceed its true packet count.
        let mut hp = HashPipe::new(3, 32);
        let mut truth = HashMap::new();
        for i in 0..5_000u32 {
            let f = i % 97;
            hp.record(FlowId(f), &key(f as u16));
            *truth.entry(FlowId(f)).or_insert(0u64) += 1;
        }
        for (flow, est) in hp.counts() {
            assert!(
                est <= truth[&flow],
                "flow {flow} overcounted: {est} > {}",
                truth[&flow]
            );
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut hp = HashPipe::new(2, 16);
        hp.record(FlowId(1), &key(1));
        hp.reset();
        assert!(hp.counts().is_empty());
        assert_eq!(hp.packets, 0);
    }

    #[test]
    fn sram_matches_parameters() {
        let hp = HashPipe::new(5, 4096);
        assert_eq!(hp.sram_bytes(), 5 * 4096 * 8);
    }
}
