//! Baselines the PrintQueue paper compares against (§7.1, Table 2,
//! Figures 10–11 and 14a).
//!
//! * [`hashpipe`] — HashPipe (Sivaraman et al., SOSR 2017): a pipeline of
//!   d hash-indexed stages tracking heavy hitters entirely in the data
//!   plane.
//! * [`flowradar`] — FlowRadar (Li et al., NSDI 2016): an encoded flowset
//!   (Bloom filter + counting table) decoded in the control plane.
//! * [`linear`] — a NetSight/BurstRadar-style per-packet record log, the
//!   linear-storage comparison of Figure 14(a).
//! * [`prorate`] — the fixed-interval query adapter the paper grants the
//!   baselines: both reset at PrintQueue's set period, and interval queries
//!   prorate their counts by `interval / period`.
//!
//! Both flow-measurement baselines are implemented from their papers at the
//! resource parity the PrintQueue evaluation grants them: "4096 register
//! entries in each of five stages".

pub mod conquest;
pub mod flowradar;
pub mod hashpipe;
pub mod history;
pub mod linear;
pub mod prorate;

pub use conquest::ConQuest;
pub use flowradar::FlowRadar;
pub use hashpipe::HashPipe;
pub use history::{HistoryCollector, HistoryFilter, Postcard, PostcardEmitter};
pub use linear::LinearStore;
pub use prorate::ProratedQuerier;
