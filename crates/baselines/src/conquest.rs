//! A ConQuest-style snapshot structure (Chen et al., CoNEXT 2019) — the
//! related work closest to PrintQueue's time windows (§8 of the paper).
//!
//! ConQuest divides time into short snapshot windows and keeps `h` sketches
//! in rotation: one being written, the older ones read-only. When a packet
//! *enqueues*, the data plane estimates how much of the current queue
//! belongs to the packet's own flow by summing that flow's counts over the
//! snapshots spanning the queue's contents, and can then act (e.g. mark or
//! drop) if the flow is a heavy contributor.
//!
//! The crucial limitation the PrintQueue paper identifies: ConQuest answers
//! "is *this arriving packet's flow* filling the queue right now?" — a
//! *forward* query keyed by the arriving packet. It cannot answer the
//! *reverse* query ("given a victim, who were the culprits?") for an
//! arbitrary past interval, because snapshots are recycled after roughly
//! one queue-drain time; holding them longer would need storage linear in
//! the total traffic. The `ext_conquest` experiment binary demonstrates
//! both sides quantitatively.

use pq_packet::{FlowId, FlowKey, Nanos};
use std::collections::HashMap;

/// One snapshot: a count-min sketch over flow bytes.
#[derive(Debug, Clone)]
struct Snapshot {
    /// `rows × width` counters, bytes per flow.
    counters: Vec<Vec<u64>>,
    /// Window index this snapshot currently holds (for recycling).
    window: u64,
}

impl Snapshot {
    fn new(rows: usize, width: usize) -> Snapshot {
        Snapshot {
            counters: vec![vec![0; width]; rows],
            window: u64::MAX,
        }
    }

    fn clear(&mut self, window: u64) {
        for row in &mut self.counters {
            row.fill(0);
        }
        self.window = window;
    }

    fn index(sig: u32, row: usize, width: usize) -> usize {
        let mixed = sig
            .wrapping_mul(0x9e37_79b9u32.wrapping_add(0xc2b2_ae35u32.wrapping_mul(row as u32 + 1)))
            .rotate_left(row as u32 * 5 + 3);
        mixed as usize % width
    }

    fn add(&mut self, sig: u32, bytes: u64) {
        let width = self.counters[0].len();
        for (row, counters) in self.counters.iter_mut().enumerate() {
            counters[Self::index(sig, row, width)] += bytes;
        }
    }

    fn estimate(&self, sig: u32) -> u64 {
        let width = self.counters[0].len();
        self.counters
            .iter()
            .enumerate()
            .map(|(row, counters)| counters[Self::index(sig, row, width)])
            .min()
            .unwrap_or(0)
    }
}

/// The rotating snapshot set.
#[derive(Debug, Clone)]
pub struct ConQuest {
    snapshots: Vec<Snapshot>,
    /// Snapshot window length in nanoseconds (≈ queue drain time / h in
    /// the ConQuest paper).
    window_ns: Nanos,
}

impl ConQuest {
    /// Build with `h` snapshots of `rows × width` counters each, rotating
    /// every `window_ns`.
    pub fn new(h: usize, rows: usize, width: usize, window_ns: Nanos) -> ConQuest {
        assert!(h >= 2 && rows >= 1 && width >= 1 && window_ns >= 1);
        ConQuest {
            snapshots: (0..h).map(|_| Snapshot::new(rows, width)).collect(),
            window_ns,
        }
    }

    /// The ConQuest paper's typical configuration: 4 snapshots of 2×2048
    /// counters.
    pub fn paper_typical(window_ns: Nanos) -> ConQuest {
        ConQuest::new(4, 2, 2048, window_ns)
    }

    fn slot(&self, window: u64) -> usize {
        (window % self.snapshots.len() as u64) as usize
    }

    /// Record an *enqueueing* packet into the current snapshot.
    pub fn on_enqueue(&mut self, key: &FlowKey, bytes: u32, now: Nanos) {
        let window = now / self.window_ns;
        let slot = self.slot(window);
        if self.snapshots[slot].window != window {
            // Recycle: the oldest snapshot becomes the new write window —
            // its previous contents are *gone*, which is exactly why
            // after-the-fact victim queries are impossible.
            self.snapshots[slot].clear(window);
        }
        self.snapshots[slot].add(key.signature(), u64::from(bytes));
    }

    /// The forward query ConQuest is built for: at time `now`, how many
    /// bytes of the last `span_ns` of arrivals belong to `key`'s flow?
    /// (The data plane compares this against the queue depth to decide if
    /// the flow is a main contributor.)
    pub fn flow_bytes_in_queue(&self, key: &FlowKey, now: Nanos, span_ns: Nanos) -> u64 {
        let sig = key.signature();
        let newest = now / self.window_ns;
        let windows_back = span_ns.div_ceil(self.window_ns);
        let usable = (self.snapshots.len() as u64).min(windows_back + 1);
        (0..usable)
            .filter_map(|back| {
                let window = newest.checked_sub(back)?;
                let snap = &self.snapshots[self.slot(window)];
                (snap.window == window).then(|| snap.estimate(sig))
            })
            .sum()
    }

    /// Attempted *reverse* query for a past interval `[from, to]` (what
    /// PrintQueue's time windows answer): per-flow byte estimates from
    /// whatever snapshots still cover the interval. For intervals older
    /// than `h × window_ns` this returns nothing — the demonstration of the
    /// §8 limitation ("ConQuest would need offline storage space linear to
    /// the total packets" to support it).
    pub fn reverse_query(
        &self,
        candidates: &[(FlowId, FlowKey)],
        from: Nanos,
        to: Nanos,
    ) -> HashMap<FlowId, u64> {
        let mut out = HashMap::new();
        let first_window = from / self.window_ns;
        let last_window = to / self.window_ns;
        for window in first_window..=last_window {
            let snap = &self.snapshots[self.slot(window)];
            if snap.window != window {
                continue; // recycled — data lost
            }
            for (id, key) in candidates {
                let est = snap.estimate(key.signature());
                if est > 0 {
                    *out.entry(*id).or_insert(0) += est;
                }
            }
        }
        out
    }

    /// How far back (ns) reverse queries can possibly reach.
    pub fn history_horizon(&self) -> Nanos {
        self.snapshots.len() as Nanos * self.window_ns
    }

    /// SRAM bytes (4 B counters).
    pub fn sram_bytes(&self) -> u64 {
        self.snapshots
            .iter()
            .map(|s| (s.counters.len() * s.counters[0].len()) as u64 * 4)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_packet::ipv4::Address;

    fn key(n: u16) -> FlowKey {
        FlowKey::tcp(
            Address::new(10, 7, (n / 250) as u8, (n % 250) as u8 + 1),
            3_000 + n,
            Address::new(10, 200, 0, 3),
            80,
        )
    }

    #[test]
    fn forward_query_sees_recent_arrivals() {
        let mut cq = ConQuest::new(4, 2, 512, 1_000);
        for i in 0..10u64 {
            cq.on_enqueue(&key(1), 100, i * 100); // all within window 0
        }
        assert_eq!(cq.flow_bytes_in_queue(&key(1), 999, 999), 1_000);
        assert_eq!(cq.flow_bytes_in_queue(&key(2), 999, 999), 0);
    }

    #[test]
    fn snapshots_rotate_and_recycle() {
        let mut cq = ConQuest::new(2, 1, 512, 1_000);
        cq.on_enqueue(&key(1), 100, 500); // window 0
        cq.on_enqueue(&key(1), 100, 1_500); // window 1
        cq.on_enqueue(&key(1), 100, 2_500); // window 2 recycles window 0's slot
        let candidates = [(FlowId(1), key(1))];
        // Window 0 is gone.
        assert!(cq.reverse_query(&candidates, 0, 999).is_empty());
        // Windows 1 and 2 survive.
        let recent = cq.reverse_query(&candidates, 1_000, 2_999);
        assert_eq!(recent[&FlowId(1)], 200);
    }

    #[test]
    fn reverse_query_beyond_horizon_returns_nothing() {
        let mut cq = ConQuest::paper_typical(10_000);
        for w in 0..100u64 {
            cq.on_enqueue(&key(3), 1_000, w * 10_000 + 5_000);
        }
        let candidates = [(FlowId(3), key(3))];
        let now = 995_000;
        assert!(now > cq.history_horizon());
        // A victim whose congestion happened 500 µs ago: unanswerable.
        let old = cq.reverse_query(&candidates, 100_000, 200_000);
        assert!(old.is_empty(), "snapshots that old must be recycled");
        // The recent horizon still answers.
        let fresh = cq.reverse_query(&candidates, 970_000, 990_000);
        assert!(!fresh.is_empty());
    }

    #[test]
    fn cms_never_underestimates() {
        let mut cq = ConQuest::new(2, 2, 64, 1_000_000);
        let mut truth = HashMap::new();
        for i in 0..500u16 {
            let f = i % 40;
            cq.on_enqueue(&key(f), 100, 10);
            *truth.entry(f).or_insert(0u64) += 100;
        }
        for (f, t) in truth {
            let est = cq.flow_bytes_in_queue(&key(f), 20, 19);
            assert!(est >= t, "CMS underestimated flow {f}: {est} < {t}");
        }
    }

    #[test]
    fn sram_accounting() {
        let cq = ConQuest::new(4, 2, 2048, 1_000);
        assert_eq!(cq.sram_bytes(), 4 * 2 * 2048 * 4);
    }
}
