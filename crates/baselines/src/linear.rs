//! A linear-storage per-packet log, modelling NetSight / BurstRadar-style
//! telemetry collection for the storage comparison of Figure 14(a).
//!
//! Systems in this class export one fixed-size record per packet (NetSight
//! a postcard, BurstRadar a ring-buffer snapshot entry). Storage therefore
//! grows linearly with packets — accurate, but orders of magnitude more
//! expensive than PrintQueue's exponential compression over long spans.

use pq_packet::{FlowId, Nanos};
use std::collections::HashMap;

/// One exported record. 16 bytes on the wire: 4 B flow signature, 8 B
/// dequeue timestamp, 4 B metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinearRecord {
    pub flow: FlowId,
    pub deq_ts: Nanos,
}

/// Bytes each exported record occupies.
pub const RECORD_BYTES: u64 = 16;

/// The per-packet log.
#[derive(Debug, Clone, Default)]
pub struct LinearStore {
    records: Vec<LinearRecord>,
}

impl LinearStore {
    /// An empty store.
    pub fn new() -> LinearStore {
        LinearStore::default()
    }

    /// Log one dequeued packet.
    pub fn record(&mut self, flow: FlowId, deq_ts: Nanos) {
        self.records.push(LinearRecord { flow, deq_ts });
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Exact per-flow counts over `[from, to]` — the (expensive) ground
    /// truth this class of system can answer.
    pub fn query(&self, from: Nanos, to: Nanos) -> HashMap<FlowId, u64> {
        let mut out = HashMap::new();
        for r in &self.records {
            if (from..=to).contains(&r.deq_ts) {
                *out.entry(r.flow).or_insert(0) += 1;
            }
        }
        out
    }

    /// Total storage consumed, in bytes.
    pub fn storage_bytes(&self) -> u64 {
        self.records.len() as u64 * RECORD_BYTES
    }

    /// Drop records older than `horizon` (ring-buffer behaviour).
    pub fn expire_before(&mut self, horizon: Nanos) {
        self.records.retain(|r| r.deq_ts >= horizon);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_is_exact() {
        let mut store = LinearStore::new();
        for t in 0..100u64 {
            store.record(FlowId((t % 4) as u32), t);
        }
        let counts = store.query(10, 49);
        assert_eq!(counts.values().sum::<u64>(), 40);
        assert_eq!(counts[&FlowId(0)], 10);
    }

    #[test]
    fn storage_grows_linearly() {
        let mut store = LinearStore::new();
        for t in 0..1000u64 {
            store.record(FlowId(0), t);
        }
        assert_eq!(store.storage_bytes(), 1000 * RECORD_BYTES);
    }

    #[test]
    fn expire_trims_history() {
        let mut store = LinearStore::new();
        for t in 0..100u64 {
            store.record(FlowId(0), t);
        }
        store.expire_before(50);
        assert_eq!(store.len(), 50);
        assert!(store.query(0, 49).is_empty());
    }
}
