//! FlowRadar encoded flowsets (Li et al., NSDI 2016).
//!
//! The data plane keeps a Bloom filter (to detect new flows) and a counting
//! table whose cells each hold `FlowXOR` (xor of the flow signatures hashed
//! there), `FlowCount` (number of distinct flows hashed there), and
//! `PacketCount`. Each packet updates `h` cells; new flows additionally fold
//! their signature into `FlowXOR`/`FlowCount`. The control plane decodes by
//! repeatedly finding *pure* cells (`FlowCount == 1`), reading off that
//! flow's packets (`PacketCount` of the pure cell divided equally among its
//! recorded packets — we use the standard single-decode that subtracts the
//! flow from all its cells after estimating its count from the purest one).
//!
//! Like HashPipe, the PrintQueue comparison grants 4096 cells × 5 "stages"
//! (here: hash functions × table budget) and resets at the set period.

use pq_packet::{FlowId, FlowKey};
use std::collections::HashMap;

/// One counting-table cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct CountingCell {
    flow_xor: u64,
    flow_count: u32,
    packet_count: u64,
}

/// The encoded flowset.
#[derive(Debug, Clone)]
pub struct FlowRadar {
    /// Bloom filter bits (sized at 8 bits per expected flow).
    bloom: Vec<bool>,
    cells: Vec<CountingCell>,
    hashes: usize,
    /// Known flows this period (the decoder needs the id ↔ signature map;
    /// in deployment the collector reconstructs tuples from the xor — we
    /// record the association explicitly to avoid modelling tuple packing).
    flows_seen: HashMap<u64, FlowId>,
    /// Packets observed since the last reset.
    pub packets: u64,
}

impl FlowRadar {
    /// Build with `cells` counting cells, `hashes` hash functions, and a
    /// Bloom filter of `bloom_bits` bits.
    pub fn new(cells: usize, hashes: usize, bloom_bits: usize) -> FlowRadar {
        assert!(cells >= 1 && hashes >= 1 && bloom_bits >= 8);
        FlowRadar {
            bloom: vec![false; bloom_bits],
            cells: vec![CountingCell::default(); cells],
            hashes,
            flows_seen: HashMap::new(),
            packets: 0,
        }
    }

    /// The paper-parity configuration: 4096 cells across 5 stage-equivalents
    /// (4 counting hash functions + Bloom filter within the same budget).
    pub fn paper_parity() -> FlowRadar {
        FlowRadar::new(4096, 4, 4096 * 8)
    }

    fn sig64(key: &FlowKey) -> u64 {
        (u64::from(key.signature()) << 32) | u64::from(key.signature2())
    }

    fn cell_index(&self, sig: u64, i: usize) -> usize {
        let h = sig
            .wrapping_mul(0x9e37_79b9_7f4a_7c15u64.wrapping_add(i as u64 * 2 + 1))
            .rotate_left((i * 13 + 5) as u32);
        (h as usize) % self.cells.len()
    }

    fn bloom_index(&self, sig: u64, i: usize) -> usize {
        let h = sig
            .wrapping_mul(0xc2b2_ae3d_27d4_eb4fu64.wrapping_add(i as u64 * 2 + 1))
            .rotate_left((i * 11 + 3) as u32);
        (h as usize) % self.bloom.len()
    }

    /// Record one packet.
    pub fn record(&mut self, flow: FlowId, key: &FlowKey) {
        self.packets += 1;
        let sig = Self::sig64(key);
        // Membership test + set.
        let mut is_new = false;
        for i in 0..self.hashes {
            let b = self.bloom_index(sig, i);
            if !self.bloom[b] {
                is_new = true;
                self.bloom[b] = true;
            }
        }
        if is_new {
            self.flows_seen.insert(sig, flow);
        }
        for i in 0..self.hashes {
            let c = self.cell_index(sig, i);
            let cell = &mut self.cells[c];
            if is_new {
                cell.flow_xor ^= sig;
                cell.flow_count += 1;
            }
            cell.packet_count += 1;
        }
    }

    /// Control-plane decode: recover per-flow packet counts via pure-cell
    /// peeling. Returns what could be decoded (under heavy load some flows
    /// stay entangled — exactly FlowRadar's failure mode).
    pub fn decode(&self) -> HashMap<FlowId, u64> {
        let mut cells = self.cells.clone();
        let mut out = HashMap::new();
        // Pure-cell peeling.
        while let Some(pure_idx) = cells
            .iter()
            .position(|c| c.flow_count == 1 && c.packet_count > 0)
        {
            let sig = cells[pure_idx].flow_xor;
            let count = cells[pure_idx].packet_count;
            let Some(&flow) = self.flows_seen.get(&sig) else {
                // XOR residue that is not a real signature (collision debris):
                // zero the cell so peeling can continue.
                cells[pure_idx] = CountingCell::default();
                continue;
            };
            out.insert(flow, count);
            // Subtract the flow from all its cells.
            for i in 0..self.hashes {
                let c = self.cell_index(sig, i);
                let cell = &mut cells[c];
                cell.flow_xor ^= sig;
                cell.flow_count = cell.flow_count.saturating_sub(1);
                cell.packet_count = cell.packet_count.saturating_sub(count);
            }
        }
        out
    }

    /// Fraction of seen flows that decode successfully (diagnostics).
    pub fn decode_rate(&self) -> f64 {
        if self.flows_seen.is_empty() {
            return 1.0;
        }
        self.decode().len() as f64 / self.flows_seen.len() as f64
    }

    /// Reset for the next collection period.
    pub fn reset(&mut self) {
        self.bloom.fill(false);
        self.cells.fill(CountingCell::default());
        self.flows_seen.clear();
        self.packets = 0;
    }

    /// SRAM bytes: counting cells (8 B xor + 4 B flow count + 8 B packet
    /// count) plus the Bloom bits.
    pub fn sram_bytes(&self) -> u64 {
        self.cells.len() as u64 * 20 + self.bloom.len() as u64 / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_packet::ipv4::Address;

    fn key(n: u16) -> FlowKey {
        FlowKey::tcp(
            Address::new(10, 3, (n / 250) as u8, (n % 250) as u8 + 1),
            2000 + n,
            Address::new(10, 1, 0, 2),
            443,
        )
    }

    #[test]
    fn light_load_decodes_exactly() {
        let mut fr = FlowRadar::new(1024, 4, 8192);
        for f in 0..50u16 {
            for _ in 0..(f + 1) {
                fr.record(FlowId(u32::from(f)), &key(f));
            }
        }
        let decoded = fr.decode();
        assert_eq!(decoded.len(), 50);
        for f in 0..50u16 {
            assert_eq!(decoded[&FlowId(u32::from(f))], u64::from(f) + 1);
        }
    }

    #[test]
    fn overload_degrades_gracefully() {
        // 4000 flows in 512 cells: peeling must not loop forever; some
        // flows fail to decode.
        let mut fr = FlowRadar::new(512, 3, 4096);
        for f in 0..4000u32 {
            fr.record(FlowId(f), &key((f % 60_000) as u16));
        }
        let decoded = fr.decode();
        assert!(decoded.len() < 4000, "full decode is implausible here");
        // Whatever decodes must be correct (1 packet per flow).
        for (_, count) in decoded {
            assert_eq!(count, 1);
        }
    }

    #[test]
    fn decode_rate_high_at_sized_load() {
        // FlowRadar's design point: cells ≈ 2× flows decodes nearly all.
        let mut fr = FlowRadar::new(2048, 4, 16384);
        for f in 0..900u32 {
            for _ in 0..3 {
                fr.record(FlowId(f), &key(f as u16));
            }
        }
        assert!(fr.decode_rate() > 0.95, "rate {}", fr.decode_rate());
    }

    #[test]
    fn reset_clears_everything() {
        let mut fr = FlowRadar::new(64, 2, 512);
        fr.record(FlowId(1), &key(1));
        fr.reset();
        assert!(fr.decode().is_empty());
        assert_eq!(fr.packets, 0);
    }

    #[test]
    fn repeat_packets_are_not_new_flows() {
        let mut fr = FlowRadar::new(64, 2, 512);
        for _ in 0..10 {
            fr.record(FlowId(1), &key(1));
        }
        assert_eq!(fr.decode()[&FlowId(1)], 10);
        assert_eq!(fr.flows_seen.len(), 1);
    }
}
