//! The fixed-interval query adapter the paper grants the baselines.
//!
//! HashPipe and FlowRadar "are only queryable on the granularity of a reset
//! period. We, therefore, improve their estimations by prorating packet
//! counts using a multiplier equal to the length of the query interval over
//! the length of the total period" (§7.1). This module implements that
//! adapter: it stores per-period per-flow counts (one entry per reset) and
//! answers interval queries by scaling each overlapped period's counts by
//! the overlap fraction.

use pq_packet::{FlowId, Nanos};
use std::collections::HashMap;

/// Per-flow counts for one collection period.
#[derive(Debug, Clone)]
pub struct PeriodCounts {
    /// Period start (inclusive).
    pub from: Nanos,
    /// Period end (exclusive).
    pub to: Nanos,
    /// Flow → packets collected during the period.
    pub counts: HashMap<FlowId, u64>,
}

/// Stores one period of counts per reset and prorates interval queries.
#[derive(Debug, Clone, Default)]
pub struct ProratedQuerier {
    periods: Vec<PeriodCounts>,
}

impl ProratedQuerier {
    /// An empty querier.
    pub fn new() -> ProratedQuerier {
        ProratedQuerier::default()
    }

    /// Store the counts collected over `[from, to)` (called at each reset).
    pub fn push_period(&mut self, from: Nanos, to: Nanos, counts: HashMap<FlowId, u64>) {
        debug_assert!(from < to, "empty period");
        self.periods.push(PeriodCounts { from, to, counts });
    }

    /// Number of stored periods.
    pub fn len(&self) -> usize {
        self.periods.len()
    }

    /// True when no periods are stored.
    pub fn is_empty(&self) -> bool {
        self.periods.is_empty()
    }

    /// Prorated per-flow estimate over `[from, to]`.
    pub fn query(&self, from: Nanos, to: Nanos) -> HashMap<FlowId, f64> {
        let mut out: HashMap<FlowId, f64> = HashMap::new();
        for period in &self.periods {
            let ov_from = from.max(period.from);
            let ov_to = to.min(period.to.saturating_sub(1));
            if ov_from > ov_to {
                continue;
            }
            // Inclusive overlap length against the period's span.
            let overlap = (ov_to - ov_from + 1) as f64;
            let span = (period.to - period.from) as f64;
            let fraction = (overlap / span).min(1.0);
            for (flow, n) in &period.counts {
                *out.entry(*flow).or_insert(0.0) += *n as f64 * fraction;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(u32, u64)]) -> HashMap<FlowId, u64> {
        pairs.iter().map(|(f, n)| (FlowId(*f), *n)).collect()
    }

    #[test]
    fn full_period_query_returns_full_counts() {
        let mut q = ProratedQuerier::new();
        q.push_period(0, 100, counts(&[(1, 50), (2, 10)]));
        let est = q.query(0, 99);
        assert!((est[&FlowId(1)] - 50.0).abs() < 1e-9);
        assert!((est[&FlowId(2)] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn half_period_query_prorates_by_half() {
        let mut q = ProratedQuerier::new();
        q.push_period(0, 100, counts(&[(1, 50)]));
        let est = q.query(0, 49);
        assert!((est[&FlowId(1)] - 25.0).abs() < 1e-9);
    }

    #[test]
    fn query_spanning_periods_sums_parts() {
        let mut q = ProratedQuerier::new();
        q.push_period(0, 100, counts(&[(1, 100)]));
        q.push_period(100, 200, counts(&[(1, 200)]));
        // [50, 149]: half of each period.
        let est = q.query(50, 149);
        assert!((est[&FlowId(1)] - 150.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_query_returns_empty() {
        let mut q = ProratedQuerier::new();
        q.push_period(0, 100, counts(&[(1, 5)]));
        assert!(q.query(200, 300).is_empty());
    }

    #[test]
    fn tiny_interval_gets_tiny_share() {
        // The §7.1 point: a microsecond-scale victim interval inside a long
        // period gets a vanishing share — which "can greatly over- or
        // under-estimate reality".
        let mut q = ProratedQuerier::new();
        q.push_period(0, 1_000_000, counts(&[(1, 1_000_000)]));
        let est = q.query(500, 509);
        assert!((est[&FlowId(1)] - 10.0).abs() < 1e-6);
    }
}
