//! Flow-size distributions.
//!
//! The paper's WS and DM workloads are "synthetic traces modeled after
//! well-known flow size distributions": web search (DCTCP, Alizadeh et al.
//! 2010) and data mining (VL2, Greenberg et al. 2011). Both are standard
//! benchmark CDFs in the data-center networking literature; we encode the
//! usual piecewise-linear (in log-size) approximations used by simulators.
//! The UW trace's defining property in the paper is its *extreme* skew —
//! the 100th-largest flow carries under 1% of the largest flow's packets —
//! which we model with a bounded Pareto.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// An empirical CDF over flow sizes in bytes, interpolated geometrically
/// between knots (sizes in these distributions span five orders of
/// magnitude, so interpolation in log-space avoids over-weighting the top
/// decade).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmpiricalCdf {
    /// `(size_bytes, cumulative_probability)` knots; probabilities strictly
    /// increasing, ending at 1.0.
    knots: Vec<(f64, f64)>,
}

impl EmpiricalCdf {
    /// Build from knots. Panics if the knots are not a valid CDF.
    pub fn new(knots: Vec<(f64, f64)>) -> EmpiricalCdf {
        assert!(knots.len() >= 2, "need at least two knots");
        for pair in knots.windows(2) {
            assert!(pair[0].0 < pair[1].0, "sizes must increase");
            assert!(pair[0].1 <= pair[1].1, "probabilities must not decrease");
        }
        assert!(
            (knots.last().unwrap().1 - 1.0).abs() < 1e-9,
            "CDF must end at 1.0"
        );
        EmpiricalCdf { knots }
    }

    /// Inverse-CDF sample: map a uniform `u ∈ [0, 1)` to a size in bytes.
    pub fn quantile(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        if u <= self.knots[0].1 {
            return self.knots[0].0;
        }
        for pair in self.knots.windows(2) {
            let (s0, p0) = pair[0];
            let (s1, p1) = pair[1];
            if u <= p1 {
                if p1 - p0 < 1e-12 {
                    return s1;
                }
                let f = (u - p0) / (p1 - p0);
                // Geometric interpolation between sizes.
                return s0 * (s1 / s0).powf(f);
            }
        }
        self.knots.last().unwrap().0
    }

    /// Draw a flow size in bytes.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        self.quantile(rng.gen::<f64>()).round().max(1.0) as u64
    }

    /// Mean of the distribution, estimated by numeric integration of the
    /// quantile function (used to set Poisson flow arrival rates for a
    /// target load).
    pub fn mean(&self) -> f64 {
        let steps = 10_000;
        (0..steps)
            .map(|i| self.quantile((i as f64 + 0.5) / steps as f64))
            .sum::<f64>()
            / steps as f64
    }
}

/// Named flow-size distributions used in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowSizeDist {
    /// Web search (DCTCP): mostly small request/response flows with a
    /// significant fraction of multi-MB background flows.
    WebSearch,
    /// Data mining (VL2): ~80% of flows under 10 KB but most *bytes* in
    /// flows over 100 MB — heavier-tailed than web search.
    DataMining,
    /// UW-style extreme skew: bounded Pareto with shape chosen so the
    /// 100th-largest of a few thousand flows is <1% of the largest.
    UwSkew,
}

impl FlowSizeDist {
    /// The CDF for this distribution.
    pub fn cdf(self) -> EmpiricalCdf {
        match self {
            // Piecewise CDF as commonly tabulated from the DCTCP paper's
            // measured web-search workload.
            FlowSizeDist::WebSearch => EmpiricalCdf::new(vec![
                (6e3, 0.15),
                (13e3, 0.2),
                (19e3, 0.3),
                (33e3, 0.4),
                (53e3, 0.53),
                (133e3, 0.6),
                (667e3, 0.7),
                (1333e3, 0.8),
                (3333e3, 0.9),
                (6667e3, 0.97),
                (20e6, 1.0),
            ]),
            // Piecewise CDF as commonly tabulated from the VL2 paper's
            // data-mining workload.
            FlowSizeDist::DataMining => EmpiricalCdf::new(vec![
                (100.0, 0.1),
                (300.0, 0.2),
                (1e3, 0.5),
                (2e3, 0.6),
                (10e3, 0.7),
                (100e3, 0.8),
                (1e6, 0.9),
                (10e6, 0.97),
                (100e6, 0.999),
                (1e9, 1.0),
            ]),
            // Bounded Pareto (alpha ≈ 0.6) from 200 B to 10 MB. With a few
            // thousand flows the order statistics reproduce the paper's
            // "100th largest < 1% of largest" skew (tested below).
            FlowSizeDist::UwSkew => {
                let alpha = 0.6f64;
                let lo = 200.0f64;
                let hi = 10e6f64;
                // Tabulate the bounded-Pareto CDF on a size grid.
                let denom = 1.0 - (lo / hi).powf(alpha);
                let mut knots = Vec::new();
                let grid = 40;
                for i in 0..=grid {
                    let s = lo * (hi / lo).powf(i as f64 / grid as f64);
                    let p = ((1.0 - (lo / s).powf(alpha)) / denom).clamp(0.0, 1.0);
                    knots.push((s, if i == grid { 1.0 } else { p }));
                }
                EmpiricalCdf::new(knots)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn quantile_hits_knots() {
        let cdf = EmpiricalCdf::new(vec![(100.0, 0.5), (1000.0, 1.0)]);
        assert_eq!(cdf.quantile(0.0), 100.0);
        assert_eq!(cdf.quantile(0.5), 100.0);
        assert!((cdf.quantile(1.0) - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn quantile_is_monotone() {
        for dist in [
            FlowSizeDist::WebSearch,
            FlowSizeDist::DataMining,
            FlowSizeDist::UwSkew,
        ] {
            let cdf = dist.cdf();
            let mut prev = 0.0;
            for i in 0..=100 {
                let q = cdf.quantile(i as f64 / 100.0);
                assert!(q >= prev, "{dist:?} not monotone at {i}");
                prev = q;
            }
        }
    }

    #[test]
    fn websearch_median_is_tens_of_kb() {
        let cdf = FlowSizeDist::WebSearch.cdf();
        let median = cdf.quantile(0.5);
        assert!(
            (20e3..100e3).contains(&median),
            "unexpected WS median {median}"
        );
    }

    #[test]
    fn datamining_majority_small_but_heavy_tail() {
        let cdf = FlowSizeDist::DataMining.cdf();
        assert!(cdf.quantile(0.5) <= 2e3, "DM median should be tiny");
        assert!(cdf.quantile(0.999) >= 50e6, "DM tail should be huge");
    }

    #[test]
    fn uw_skew_reproduces_paper_order_statistics() {
        // Draw 4000 flows; the 100th largest must be <1% of the largest
        // (paper §7.1, Figure 12 discussion). Statistical, so use a couple
        // of seeds and require it to hold for the majority.
        let cdf = FlowSizeDist::UwSkew.cdf();
        let mut holds = 0;
        for seed in 0..5u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut sizes: Vec<u64> = (0..4000).map(|_| cdf.sample(&mut rng)).collect();
            sizes.sort_unstable_by(|a, b| b.cmp(a));
            if (sizes[99] as f64) < 0.01 * sizes[0] as f64 {
                holds += 1;
            }
        }
        assert!(holds >= 3, "skew property held in only {holds}/5 seeds");
    }

    #[test]
    fn mean_is_positive_and_finite() {
        for dist in [
            FlowSizeDist::WebSearch,
            FlowSizeDist::DataMining,
            FlowSizeDist::UwSkew,
        ] {
            let mean = dist.cdf().mean();
            assert!(mean.is_finite() && mean > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "CDF must end at 1.0")]
    fn invalid_cdf_rejected() {
        let _ = EmpiricalCdf::new(vec![(1.0, 0.2), (2.0, 0.9)]);
    }
}
