//! Poisson flow/packet workload generation (§7.1 of the paper: "Flows and
//! packets arrive according to Poisson processes").
//!
//! A workload targets one egress port with a configurable mean offered load.
//! Flows arrive by a Poisson process whose rate is derived from the mean
//! flow size and target load; each flow's packets are serialized at the
//! *sender's* line rate (the paper's senders sit on 40 Gbps links feeding
//! 10 Gbps receivers, which is what makes queues build), with small random
//! jitter so packets of concurrent flows interleave "near randomly" in the
//! queue — the property §4.3 relies on for the i.i.d. cell-occupancy
//! assumption.

use crate::dists::FlowSizeDist;
use pq_packet::ipv4::Address;
use pq_packet::time::tx_delay_ns;
use pq_packet::{FlowKey, FlowTable, Nanos, SimPacket};
use pq_switch::Arrival;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which of the paper's three workloads to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// University-of-Wisconsin-like: ~100 B packets, extreme flow-size skew.
    Uw,
    /// Web search (DCTCP distribution), near-MTU packets.
    Ws,
    /// Data mining (VL2 distribution), near-MTU packets.
    Dm,
}

impl WorkloadKind {
    /// The flow-size distribution for this workload.
    pub fn flow_sizes(self) -> FlowSizeDist {
        match self {
            WorkloadKind::Uw => FlowSizeDist::UwSkew,
            WorkloadKind::Ws => FlowSizeDist::WebSearch,
            WorkloadKind::Dm => FlowSizeDist::DataMining,
        }
    }

    /// Draw one packet size in bytes. UW packets are "around 100 bytes"
    /// (§7.1); WS/DM are "near MTU".
    pub fn packet_size<R: Rng + ?Sized>(self, rng: &mut R) -> u32 {
        match self {
            WorkloadKind::Uw => rng.gen_range(64..=146),
            WorkloadKind::Ws | WorkloadKind::Dm => 1500,
        }
    }

    /// The paper's time-window parameters for this workload (§7.1: "We
    /// choose m0 = 10 and a smaller compression factor α = 1 for WS/DM
    /// while m0 = 6, α = 2 for UW. T = 4 and k = 12 for all.").
    pub fn paper_params(self) -> (u8, u8, u8, u8) {
        // (m0, alpha, k, T)
        match self {
            WorkloadKind::Uw => (6, 2, 12, 4),
            WorkloadKind::Ws | WorkloadKind::Dm => (10, 1, 12, 4),
        }
    }

    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::Uw => "UW",
            WorkloadKind::Ws => "WS",
            WorkloadKind::Dm => "DM",
        }
    }
}

/// Workload generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Which trace family to synthesize.
    pub kind: WorkloadKind,
    /// Length of the generated trace.
    pub duration: Nanos,
    /// Mean offered load relative to the egress port's drain rate
    /// (1.0 = exactly line rate; >1 builds persistent queues).
    pub load: f64,
    /// Egress port index the trace targets.
    pub port: u16,
    /// Egress (bottleneck) port rate in Gbps.
    pub port_rate_gbps: f64,
    /// Upper bound on a flow's pacing rate in Gbps (the sender NIC's line
    /// rate — 40 Gbps in the paper's testbed).
    pub sender_rate_gbps: f64,
    /// Lower bound on a flow's pacing rate in Gbps. Each flow draws a rate
    /// log-uniformly from `[min_flow_rate_gbps, sender_rate_gbps]`: real
    /// data-center flows are paced by TCP dynamics and application
    /// behaviour, not serialized back-to-back at NIC speed, and that
    /// pacing is what keeps flows alive across measurement intervals.
    pub min_flow_rate_gbps: f64,
    /// Warm-up span: flow arrivals start this long *before* the trace
    /// window, so long-lived flows from the heavy tail are already mid-
    /// transfer at t = 0 and the offered load is stationary from the first
    /// nanosecond. Packets landing in the warm-up are discarded.
    pub warmup: Nanos,
    /// RNG seed; every trace is reproducible.
    pub seed: u64,
}

impl Workload {
    /// The paper's testbed shape for a given workload kind: 40 Gbps senders
    /// into a 10 Gbps egress, load slightly above capacity so queues of all
    /// depths appear.
    pub fn paper_testbed(kind: WorkloadKind, duration: Nanos, seed: u64) -> Workload {
        Workload {
            kind,
            duration,
            load: 1.02,
            port: 0,
            port_rate_gbps: 10.0,
            sender_rate_gbps: 40.0,
            min_flow_rate_gbps: 0.5,
            warmup: duration / 2,
            seed,
        }
    }

    /// Generate the trace.
    pub fn generate(&self) -> GeneratedTrace {
        assert!(self.load > 0.0, "load must be positive");
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut flows = FlowTable::new();
        let cdf = self.kind.flow_sizes().cdf();
        let mean_flow_bytes = cdf.mean();
        // Offered bytes per nanosecond at the target load.
        let bytes_per_ns = self.load * self.port_rate_gbps / 8.0;
        // Poisson flow arrival rate (flows per nanosecond).
        let lambda = bytes_per_ns / mean_flow_bytes;

        // Generate over [0, warmup + duration) in internal time; emit only
        // packets landing in [warmup, warmup + duration), shifted to start
        // at zero. Flows born during warm-up contribute their steady-state
        // middle, so the trace window sees stationary load.
        let mut arrivals: Vec<Arrival> = Vec::new();
        let gen_span = (self.warmup + self.duration) as f64;
        let window = self.warmup..(self.warmup + self.duration);
        let mut t: f64 = 0.0;
        loop {
            // Exponential inter-arrival.
            t += -rng.gen::<f64>().max(f64::MIN_POSITIVE).ln() / lambda;
            if t >= gen_span {
                break;
            }
            let flow_start = t as Nanos;
            let key = random_flow_key(&mut rng, self.kind);
            let id = flows.intern(key);
            let mut remaining = cdf.sample(&mut rng);
            // Log-uniform pacing rate for this flow.
            let lo = self.min_flow_rate_gbps.min(self.sender_rate_gbps);
            let hi = self.sender_rate_gbps;
            let rate = lo * (hi / lo).powf(rng.gen::<f64>());
            let mut send_at = flow_start;
            while remaining > 0 && send_at < window.end {
                let size = self
                    .kind
                    .packet_size(&mut rng)
                    .min(remaining.max(64) as u32);
                let size = size.max(64);
                // Small per-packet jitter models end-host/NIC scheduling
                // noise (§4.3: packets enter the queue "near randomly").
                let jitter = rng.gen_range(0..64);
                let at = send_at + jitter;
                if window.contains(&at) {
                    arrivals.push(Arrival::new(
                        SimPacket::new(id, size, at - self.warmup),
                        self.port,
                    ));
                }
                remaining = remaining.saturating_sub(u64::from(size));
                send_at += tx_delay_ns(size, rate);
            }
        }
        arrivals.sort_by_key(|a| a.pkt.arrival);
        GeneratedTrace { arrivals, flows }
    }
}

/// Draw a random 5-tuple. UW uses a mixture of TCP and UDP; WS/DM are TCP.
fn random_flow_key<R: Rng + ?Sized>(rng: &mut R, kind: WorkloadKind) -> FlowKey {
    let src = Address::new(10, rng.gen(), rng.gen(), rng.gen_range(1..=254));
    let dst = Address::new(10, 200, rng.gen_range(0..4), rng.gen_range(1..=254));
    let src_port = rng.gen_range(1024..=65535);
    let dst_port = *[80u16, 443, 8080, 9000, 50010]
        .get(rng.gen_range(0..5))
        .unwrap();
    match kind {
        WorkloadKind::Uw if rng.gen_bool(0.3) => FlowKey::udp(src, src_port, dst, dst_port),
        _ => FlowKey::tcp(src, src_port, dst, dst_port),
    }
}

/// A generated trace: time-sorted arrivals plus the flow intern table.
#[derive(Debug, Clone)]
pub struct GeneratedTrace {
    /// Arrivals in non-decreasing time order.
    pub arrivals: Vec<Arrival>,
    /// Tuple ↔ id mapping for every flow in the trace.
    pub flows: FlowTable,
}

impl GeneratedTrace {
    /// Total packets.
    pub fn packets(&self) -> usize {
        self.arrivals.len()
    }

    /// Total bytes.
    pub fn bytes(&self) -> u64 {
        self.arrivals.iter().map(|a| u64::from(a.pkt.len)).sum()
    }

    /// Mean offered rate in Gbps over the span of the trace.
    pub fn offered_gbps(&self, duration: Nanos) -> f64 {
        if duration == 0 {
            return 0.0;
        }
        self.bytes() as f64 * 8.0 / duration as f64
    }

    /// Merge two traces (e.g. two senders) into one time-sorted stream.
    ///
    /// The other trace's flow ids are re-interned into this trace's table,
    /// so independently generated traces merge safely.
    pub fn merge(mut self, mut other: GeneratedTrace) -> GeneratedTrace {
        // Re-intern the other trace's flows into our table.
        let mut remap = Vec::with_capacity(other.flows.len());
        for (_, key) in other.flows.iter() {
            remap.push(self.flows.intern(*key));
        }
        for arrival in &mut other.arrivals {
            arrival.pkt.flow = remap[arrival.pkt.flow.0 as usize];
        }
        self.arrivals.extend(other.arrivals);
        self.arrivals.sort_by_key(|a| a.pkt.arrival);
        GeneratedTrace {
            arrivals: self.arrivals,
            flows: self.flows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_packet::NanosExt;

    fn quick(kind: WorkloadKind) -> Workload {
        Workload {
            kind,
            duration: 10u64.millis(),
            load: 1.0,
            port: 0,
            port_rate_gbps: 10.0,
            sender_rate_gbps: 40.0,
            min_flow_rate_gbps: 0.5,
            warmup: 10u64.millis(),
            seed: 7,
        }
    }

    #[test]
    fn trace_is_time_sorted() {
        let trace = quick(WorkloadKind::Ws).generate();
        assert!(trace
            .arrivals
            .windows(2)
            .all(|w| w[0].pkt.arrival <= w[1].pkt.arrival));
    }

    #[test]
    fn offered_load_close_to_target() {
        // A single 10 ms WS trace holds only a few dozen flows whose sizes
        // span four orders of magnitude, so per-trace load is very noisy;
        // the *expectation* should still match the 10 Gbps target. Average
        // across seeds to test the expectation.
        let mut total = 0.0;
        let seeds = 8;
        for seed in 0..seeds {
            let mut wl = quick(WorkloadKind::Ws);
            wl.seed = seed;
            total += wl.generate().offered_gbps(wl.duration);
        }
        let mean = total / seeds as f64;
        assert!(
            (5.0..=18.0).contains(&mean),
            "mean offered {mean} Gbps across {seeds} seeds, target 10"
        );
    }

    #[test]
    fn uw_packets_are_small_ws_packets_are_mtu() {
        let uw = quick(WorkloadKind::Uw).generate();
        let ws = quick(WorkloadKind::Ws).generate();
        let uw_mean = uw
            .arrivals
            .iter()
            .map(|a| f64::from(a.pkt.len))
            .sum::<f64>()
            / uw.packets() as f64;
        assert!(
            (64.0..=150.0).contains(&uw_mean),
            "UW mean packet {uw_mean}"
        );
        assert!(ws.arrivals.iter().all(|a| a.pkt.len <= 1500));
        let ws_full = ws.arrivals.iter().filter(|a| a.pkt.len == 1500).count();
        assert!(ws_full * 2 > ws.packets(), "WS should be mostly MTU");
    }

    #[test]
    fn uw_has_many_more_packets_than_ws() {
        // §7.1: UW forwards ~9.1 Mpps vs 0.84 Mpps for WS/DM at the same
        // bit rate — roughly a 10x packet-count gap.
        let uw = quick(WorkloadKind::Uw).generate().packets();
        let ws = quick(WorkloadKind::Ws).generate().packets();
        assert!(
            uw > 3 * ws,
            "expected UW ≫ WS packet counts, got {uw} vs {ws}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = quick(WorkloadKind::Dm).generate();
        let b = quick(WorkloadKind::Dm).generate();
        assert_eq!(a.packets(), b.packets());
        assert_eq!(a.arrivals.first(), b.arrivals.first());
        assert_eq!(a.arrivals.last(), b.arrivals.last());
    }

    #[test]
    fn different_seeds_differ() {
        let a = quick(WorkloadKind::Dm).generate();
        let mut wl = quick(WorkloadKind::Dm);
        wl.seed = 8;
        let b = wl.generate();
        assert_ne!(a.arrivals.first(), b.arrivals.first());
    }

    #[test]
    fn merge_reinterns_flows() {
        let a = quick(WorkloadKind::Ws).generate();
        let mut wl = quick(WorkloadKind::Ws);
        wl.seed = 100;
        let b = wl.generate();
        let (an, bn) = (a.packets(), b.packets());
        let (af, bf) = (a.flows.len(), b.flows.len());
        let merged = a.merge(b);
        assert_eq!(merged.packets(), an + bn);
        // Random tuples rarely collide, so the flow count is ~ the sum.
        assert!(merged.flows.len() <= af + bf);
        assert!(merged.flows.len() > af.max(bf));
        // All flow ids resolve.
        for arrival in &merged.arrivals {
            assert!(merged.flows.resolve(arrival.pkt.flow).is_some());
        }
    }
}
