//! Closed-loop (TCP-like) senders co-simulated with the switch.
//!
//! The open-loop workloads replay fixed arrival streams, as the paper's
//! tcpreplay testbed does for the accuracy evaluation. Its *case study*
//! (§7.2), however, uses live TCP — and TCP's congestion control is what
//! keeps the queue standing long after the burst ends (the paper measures
//! queueing 76× longer than the burst). This module provides that missing
//! behaviour: AIMD senders whose window reacts to acks and drops, driven in
//! lockstep with the switch through its `inject`/`drain_until` interface.
//!
//! The transport model is deliberately NewReno-shaped but minimal: slow
//! start, congestion avoidance, multiplicative decrease on loss, a fixed
//! ack path delay, no SACK/timeout machinery. It is a workload generator,
//! not a TCP implementation — the switch under test only sees packets.

use pq_packet::{FlowId, Nanos, SimPacket};
use pq_switch::{Arrival, QueueHooks, Switch, TelemetrySink};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Configuration of one AIMD flow.
#[derive(Debug, Clone, Copy)]
pub struct AimdConfig {
    /// Flow identity (interned by the caller).
    pub flow: FlowId,
    /// Packet length in bytes.
    pub pkt_len: u32,
    /// One-way ack-path delay (reverse direction is uncongested).
    pub ack_delay: Nanos,
    /// When the flow starts sending.
    pub start: Nanos,
    /// Initial congestion window in packets.
    pub init_cwnd: f64,
    /// Slow-start threshold in packets.
    pub ssthresh: f64,
    /// Cap on cwnd (receive window), packets.
    pub max_cwnd: f64,
    /// Scheduling priority for multi-queue ports.
    pub priority: u8,
    /// Egress port.
    pub port: u16,
}

impl AimdConfig {
    /// A long-lived bulk flow with sane defaults.
    pub fn bulk(flow: FlowId, port: u16) -> AimdConfig {
        AimdConfig {
            flow,
            pkt_len: 1500,
            ack_delay: 50_000, // 50 µs one-way
            start: 0,
            init_cwnd: 10.0,
            ssthresh: 64.0,
            max_cwnd: 2_048.0,
            priority: 0,
            port,
        }
    }
}

/// Live state of one flow.
#[derive(Debug)]
struct FlowState {
    config: AimdConfig,
    cwnd: f64,
    ssthresh: f64,
    inflight: u32,
    sent: u64,
    acked: u64,
    losses: u64,
    /// Loss already reacted to in this window (one decrease per RTT-ish).
    recovery_until: u64,
}

impl FlowState {
    fn new(config: AimdConfig) -> FlowState {
        FlowState {
            cwnd: config.init_cwnd,
            ssthresh: config.ssthresh,
            inflight: 0,
            sent: 0,
            acked: 0,
            losses: 0,
            recovery_until: 0,
            config,
        }
    }

    fn can_send(&self) -> bool {
        f64::from(self.inflight) < self.cwnd
    }

    fn on_ack(&mut self) {
        self.acked += 1;
        self.inflight = self.inflight.saturating_sub(1);
        if self.cwnd < self.ssthresh {
            self.cwnd += 1.0; // slow start
        } else {
            self.cwnd += 1.0 / self.cwnd; // congestion avoidance
        }
        self.cwnd = self.cwnd.min(self.config.max_cwnd);
    }

    fn on_loss(&mut self) {
        self.losses += 1;
        self.inflight = self.inflight.saturating_sub(1);
        // One multiplicative decrease per window of data (NewReno-ish).
        if self.sent >= self.recovery_until {
            self.cwnd = (self.cwnd / 2.0).max(2.0);
            self.ssthresh = self.cwnd;
            self.recovery_until = self.sent + self.inflight as u64;
        }
    }
}

/// Per-flow outcome statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FlowOutcome {
    pub flow: FlowId,
    pub sent: u64,
    pub acked: u64,
    pub losses: u64,
    pub final_cwnd: f64,
}

use serde::Serialize;

/// Internal driver events.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// A flow may try to transmit (window opened or flow started).
    TrySend(usize),
    /// An ack for one packet of flow `.0` reaches the sender.
    Ack(usize),
    /// A loss notification (drop seen at the switch) reaches the sender.
    Loss(usize),
    /// Inject the open-loop arrival at this index (UDP bursts and other
    /// non-reactive traffic co-simulated with the closed-loop flows).
    Inject(usize),
}

/// Hook that captures departures and drops so the driver can synthesize
/// acks and loss signals.
#[derive(Debug, Default)]
struct FeedbackTap {
    departures: Vec<(Nanos, FlowId)>,
    drops: Vec<(Nanos, FlowId)>,
}

impl QueueHooks for FeedbackTap {
    fn on_dequeue(&mut self, pkt: &SimPacket, _port: u16, _d: u32, now: Nanos) {
        self.departures.push((now, pkt.flow));
    }
    fn on_drop(&mut self, pkt: &SimPacket, _port: u16, now: Nanos) {
        self.drops.push((now, pkt.flow));
    }
}

/// Run `flows` closed-loop against `switch` until `until`, attaching
/// `hooks` (PrintQueue, sinks, ...) to every switch transition. Returns the
/// per-flow outcomes.
///
/// `sink` receives the ground-truth records like in open-loop runs.
pub fn run_closed_loop(
    switch: &mut Switch,
    configs: Vec<AimdConfig>,
    open_loop: Vec<Arrival>,
    until: Nanos,
    sink: &mut TelemetrySink,
    extra_hooks: &mut [&mut dyn QueueHooks],
    tick_period: Nanos,
) -> Vec<FlowOutcome> {
    let mut flows: Vec<FlowState> = configs.into_iter().map(FlowState::new).collect();
    let mut calendar: BinaryHeap<Reverse<(Nanos, u64, Event)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let push = |cal: &mut BinaryHeap<Reverse<(Nanos, u64, Event)>>,
                at: Nanos,
                ev: Event,
                seq: &mut u64| {
        cal.push(Reverse((at, *seq, ev)));
        *seq += 1;
    };
    for (i, f) in flows.iter().enumerate() {
        push(&mut calendar, f.config.start, Event::TrySend(i), &mut seq);
    }
    for (i, a) in open_loop.iter().enumerate() {
        push(&mut calendar, a.pkt.arrival, Event::Inject(i), &mut seq);
    }
    let mut next_tick = if tick_period == 0 {
        Nanos::MAX
    } else {
        tick_period
    };

    let mut tap = FeedbackTap::default();
    let mut processed_departures = 0usize;
    let mut processed_drops = 0usize;

    while let Some(Reverse((at, _, event))) = calendar.pop() {
        if at > until {
            break;
        }
        // Fire control-plane ticks that are due before this event.
        while next_tick <= at {
            switch.drain_until(next_tick, &mut collect_hooks(&mut tap, sink, extra_hooks));
            for hook in extra_hooks.iter_mut() {
                hook.on_tick(next_tick);
            }
            sink.on_tick(next_tick);
            next_tick += tick_period;
        }
        // Let the switch catch up to this instant.
        switch.drain_until(at, &mut collect_hooks(&mut tap, sink, extra_hooks));

        match event {
            Event::TrySend(i) => {
                let f = &mut flows[i];
                while f.can_send() {
                    let pkt = SimPacket::new(f.config.flow, f.config.pkt_len, at)
                        .with_priority(f.config.priority);
                    switch.inject(
                        Arrival::new(pkt, f.config.port),
                        &mut collect_hooks(&mut tap, sink, extra_hooks),
                    );
                    f.inflight += 1;
                    f.sent += 1;
                }
            }
            Event::Ack(i) => {
                flows[i].on_ack();
                push(&mut calendar, at, Event::TrySend(i), &mut seq);
            }
            Event::Loss(i) => {
                flows[i].on_loss();
                push(&mut calendar, at, Event::TrySend(i), &mut seq);
            }
            Event::Inject(i) => {
                switch.inject(
                    open_loop[i],
                    &mut collect_hooks(&mut tap, sink, extra_hooks),
                );
            }
        }

        // Convert fresh feedback into future events.
        while processed_departures < tap.departures.len() {
            let (deq_at, flow) = tap.departures[processed_departures];
            processed_departures += 1;
            if let Some(i) = flows.iter().position(|f| f.config.flow == flow) {
                push(
                    &mut calendar,
                    deq_at + flows[i].config.ack_delay,
                    Event::Ack(i),
                    &mut seq,
                );
            }
        }
        while processed_drops < tap.drops.len() {
            let (drop_at, flow) = tap.drops[processed_drops];
            processed_drops += 1;
            if let Some(i) = flows.iter().position(|f| f.config.flow == flow) {
                // Loss signal arrives after roughly an ack delay (dupacks).
                push(
                    &mut calendar,
                    drop_at + flows[i].config.ack_delay,
                    Event::Loss(i),
                    &mut seq,
                );
            }
        }
    }
    // Drain whatever is still queued, then fire a closing tick so control
    // planes checkpoint the final state (mirrors `Switch::run`).
    switch.drain_until(until, &mut collect_hooks(&mut tap, sink, extra_hooks));
    if tick_period != 0 {
        for hook in extra_hooks.iter_mut() {
            hook.on_tick(until.max(next_tick));
        }
        sink.on_tick(until.max(next_tick));
    }

    flows
        .iter()
        .map(|f| FlowOutcome {
            flow: f.config.flow,
            sent: f.sent,
            acked: f.acked,
            losses: f.losses,
            final_cwnd: f.cwnd,
        })
        .collect()
}

/// Assemble the hook list for one switch call: feedback tap first, then the
/// telemetry sink, then the caller's hooks.
fn collect_hooks<'a>(
    tap: &'a mut FeedbackTap,
    sink: &'a mut TelemetrySink,
    extra: &'a mut [&mut dyn QueueHooks],
) -> Vec<&'a mut dyn QueueHooks> {
    let mut hooks: Vec<&mut dyn QueueHooks> = Vec::with_capacity(extra.len() + 2);
    hooks.push(tap);
    hooks.push(sink);
    for h in extra.iter_mut() {
        hooks.push(&mut **h);
    }
    hooks
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_switch::SwitchConfig;

    #[test]
    fn single_flow_fills_the_pipe() {
        // One bulk flow on a 1 Gbps port with 100 µs RTT: BDP ≈ 8.3
        // packets; cwnd should grow past it and throughput approach line
        // rate.
        let mut sw = Switch::new(SwitchConfig::single_port(1.0, 4_000));
        let mut sink = TelemetrySink::new();
        let outcome = run_closed_loop(
            &mut sw,
            vec![AimdConfig::bulk(FlowId(0), 0)],
            Vec::new(),
            50_000_000, // 50 ms
            &mut sink,
            &mut [],
            0,
        );
        let sent_bits = outcome[0].acked * 1500 * 8;
        let gbps = sent_bits as f64 / 50e6;
        assert!(
            gbps > 0.8,
            "flow should approach line rate, got {gbps:.2} Gbps ({:?})",
            outcome[0]
        );
    }

    #[test]
    fn loss_halves_the_window() {
        // A tiny buffer forces drops; cwnd must come back down and losses
        // be counted.
        let mut sw = Switch::new(SwitchConfig::single_port(1.0, 400)); // ~21 packets
        let mut sink = TelemetrySink::new();
        let outcome = run_closed_loop(
            &mut sw,
            vec![AimdConfig::bulk(FlowId(0), 0)],
            Vec::new(),
            100_000_000,
            &mut sink,
            &mut [],
            0,
        );
        assert!(outcome[0].losses > 0, "tiny buffer must drop");
        assert!(
            outcome[0].final_cwnd < 200.0,
            "cwnd should be loss-bounded, got {}",
            outcome[0].final_cwnd
        );
    }

    #[test]
    fn two_flows_share_the_link() {
        let mut sw = Switch::new(SwitchConfig::single_port(1.0, 2_000));
        let mut sink = TelemetrySink::new();
        let mut cfg_b = AimdConfig::bulk(FlowId(1), 0);
        cfg_b.start = 1_000_000;
        let outcome = run_closed_loop(
            &mut sw,
            vec![AimdConfig::bulk(FlowId(0), 0), cfg_b],
            Vec::new(),
            100_000_000,
            &mut sink,
            &mut [],
            0,
        );
        let a = outcome[0].acked as f64;
        let b = outcome[1].acked as f64;
        assert!(a > 0.0 && b > 0.0);
        // Rough fairness: neither flow starves (within 5x).
        assert!(a / b < 5.0 && b / a < 5.0, "unfair split {a} vs {b}");
        // Aggregate near line rate.
        let gbps = (a + b) * 1500.0 * 8.0 / 100e6;
        assert!(gbps > 0.8, "aggregate {gbps:.2} Gbps");
    }

    #[test]
    fn ticks_fire_for_attached_hooks() {
        struct TickCount(u32);
        impl QueueHooks for TickCount {
            fn on_tick(&mut self, _now: Nanos) {
                self.0 += 1;
            }
        }
        let mut sw = Switch::new(SwitchConfig::single_port(1.0, 2_000));
        let mut sink = TelemetrySink::new();
        let mut counter = TickCount(0);
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut counter];
        run_closed_loop(
            &mut sw,
            vec![AimdConfig::bulk(FlowId(0), 0)],
            Vec::new(),
            10_000_000,
            &mut sink,
            &mut hooks,
            1_000_000,
        );
        assert!(counter.0 >= 9, "ticks fired {}", counter.0);
    }
}
