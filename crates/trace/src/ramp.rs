//! Load-ramp scenario: offered load that rises linearly across the trace.
//!
//! The accuracy figures bucket victims by queue depth; a constant
//! slightly-overloaded workload covers deep buckets only late in the run
//! and by a noisy random walk. A ramp sweeps the whole depth range
//! deterministically — the queue tracks the integral of (offered − drain),
//! so a linear ramp over capacity fills every bucket in order. Useful for
//! depth-bucket coverage tests and for calibration runs.

use crate::workload::{GeneratedTrace, WorkloadKind};
use pq_packet::time::tx_delay_ns;
use pq_packet::{FlowKey, FlowTable, Nanos, SimPacket};
use pq_switch::Arrival;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of a ramped workload.
#[derive(Debug, Clone, Copy)]
pub struct LoadRamp {
    /// Packet-size and tuple family.
    pub kind: WorkloadKind,
    /// Trace length.
    pub duration: Nanos,
    /// Offered load at t = 0, relative to the drain rate.
    pub start_load: f64,
    /// Offered load at t = duration.
    pub end_load: f64,
    /// Bottleneck rate in Gbps.
    pub port_rate_gbps: f64,
    /// Number of concurrent flows the ramp is spread over.
    pub flows: usize,
    /// Egress port.
    pub port: u16,
    /// RNG seed.
    pub seed: u64,
}

impl LoadRamp {
    /// Generate the ramped trace. Packets arrive as a Poisson process whose
    /// intensity follows the ramp, each assigned to one of `flows` flows
    /// uniformly.
    pub fn generate(&self) -> GeneratedTrace {
        assert!(self.start_load >= 0.0 && self.end_load >= self.start_load);
        assert!(self.flows >= 1);
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut flows = FlowTable::new();
        let ids: Vec<_> = (0..self.flows)
            .map(|i| {
                flows.intern(FlowKey::tcp(
                    pq_packet::ipv4::Address::new(10, 50, (i / 250) as u8, (i % 250 + 1) as u8),
                    40_000 + i as u16,
                    pq_packet::ipv4::Address::new(10, 200, 9, 1),
                    80,
                ))
            })
            .collect();

        // Thinning-based nonhomogeneous Poisson: generate at the peak rate,
        // accept with probability load(t)/end_load.
        let mean_pkt = match self.kind {
            WorkloadKind::Uw => 105u32,
            _ => 1500,
        };
        let peak_pps = self.end_load * self.port_rate_gbps / 8.0 / f64::from(mean_pkt) * 1e9; // packets/s
        let peak_rate_ns = peak_pps / 1e9;
        let mut arrivals = Vec::new();
        let mut t = 0.0f64;
        let duration = self.duration as f64;
        loop {
            t += -rng.gen::<f64>().max(f64::MIN_POSITIVE).ln() / peak_rate_ns;
            if t >= duration {
                break;
            }
            let load_t = self.start_load + (self.end_load - self.start_load) * (t / duration);
            if rng.gen::<f64>() * self.end_load > load_t {
                continue; // thinned out
            }
            let len = self.kind.packet_size(&mut rng);
            let flow = ids[rng.gen_range(0..ids.len())];
            arrivals.push(Arrival::new(
                SimPacket::new(flow, len, t as Nanos),
                self.port,
            ));
        }
        arrivals.sort_by_key(|a| a.pkt.arrival);
        // Consume a deterministic amount of state regardless of acceptance
        // pattern (keeps cross-parameter comparisons seed-stable).
        let _ = tx_delay_ns(mean_pkt, self.port_rate_gbps);
        GeneratedTrace { arrivals, flows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_packet::NanosExt;
    use pq_switch::{Switch, SwitchConfig, TelemetrySink};

    fn ramp() -> LoadRamp {
        LoadRamp {
            kind: WorkloadKind::Uw,
            duration: 20u64.millis(),
            start_load: 0.5,
            end_load: 1.5,
            port_rate_gbps: 10.0,
            flows: 64,
            port: 0,
            seed: 3,
        }
    }

    #[test]
    fn load_rises_across_the_trace() {
        let trace = ramp().generate();
        let half = 10u64.millis();
        let first: u64 = trace
            .arrivals
            .iter()
            .filter(|a| a.pkt.arrival < half)
            .map(|a| u64::from(a.pkt.len))
            .sum();
        let second: u64 = trace
            .arrivals
            .iter()
            .filter(|a| a.pkt.arrival >= half)
            .map(|a| u64::from(a.pkt.len))
            .sum();
        // Ramp 0.5→1.5: the second half carries ~(1.25/0.75) ≈ 1.7x the
        // bytes of the first.
        let ratio = second as f64 / first as f64;
        assert!((1.4..2.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn ramp_sweeps_queue_depths_monotonically_in_trend() {
        let trace = ramp().generate();
        let mut sw = Switch::new(SwitchConfig::single_port(10.0, 64_000));
        let mut sink = TelemetrySink::new();
        sw.run(trace.arrivals.iter().copied(), &mut [&mut sink], 0);
        // Mean depth in the last quarter ≫ mean depth in the first quarter.
        let q = 5u64.millis();
        let mean_depth = |from: u64, to: u64| -> f64 {
            let depths: Vec<f64> = sink
                .records
                .iter()
                .filter(|r| (from..to).contains(&r.meta.enq_timestamp))
                .map(|r| f64::from(r.meta.enq_qdepth))
                .collect();
            depths.iter().sum::<f64>() / depths.len().max(1) as f64
        };
        let early = mean_depth(0, q);
        let late = mean_depth(3 * q, 4 * q);
        assert!(
            late > 5.0 * early.max(1.0),
            "ramp did not deepen the queue: early {early:.0}, late {late:.0}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ramp().generate();
        let b = ramp().generate();
        assert_eq!(a.arrivals, b.arrivals);
    }
}
