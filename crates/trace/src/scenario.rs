//! Scenario builders for the paper's named experiments.
//!
//! * [`case_study_fig16`] — the queue-monitor case study (§7.2): a 9 Gbps
//!   background TCP flow, a short 4 Gbps burst of 10,000 datagrams, and a
//!   late 0.5 Gbps TCP flow whose packets become the diagnosis victims.
//! * [`microburst`] — a synchronized packet burst lasting tens to hundreds
//!   of microseconds, the §1/§2 motivating event.
//! * [`incast`] — N servers answering one aggregator at once (the §2
//!   "indirect culprits" motivation).

use crate::workload::GeneratedTrace;
use pq_packet::ipv4::Address;
use pq_packet::time::tx_delay_ns;
use pq_packet::{FlowId, FlowKey, FlowTable, Nanos, SimPacket};
use pq_switch::Arrival;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Labelled roles of the flows in the Figure 16 case study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseStudyFlows {
    /// The long-lived ~9 Gbps background TCP flow.
    pub background: FlowId,
    /// The 10,000-datagram UDP burst.
    pub burst: FlowId,
    /// The late, low-rate TCP flow (the victim's flow).
    pub new_tcp: FlowId,
}

/// The generated case study: arrivals, flow table, roles, and the time the
/// new TCP flow starts (the blue arrow in Figure 16(a)).
#[derive(Debug)]
pub struct CaseStudy {
    pub trace: GeneratedTrace,
    pub roles: CaseStudyFlows,
    /// When the UDP burst begins.
    pub burst_start: Nanos,
    /// When the new TCP flow begins.
    pub new_tcp_start: Nanos,
}

/// Emit a constant-bit-rate packet stream for one flow.
///
/// Packets of `pkt_len` bytes are spaced so the stream averages `rate_gbps`,
/// with up to `jitter` nanoseconds of uniform noise per packet.
#[allow(clippy::too_many_arguments)]
pub fn cbr_stream(
    flow: FlowId,
    pkt_len: u32,
    rate_gbps: f64,
    from: Nanos,
    until: Nanos,
    jitter: Nanos,
    port: u16,
    rng: &mut SmallRng,
    out: &mut Vec<Arrival>,
) {
    assert!(rate_gbps > 0.0);
    let gap = tx_delay_ns(pkt_len, rate_gbps);
    let mut t = from;
    while t < until {
        let j = if jitter == 0 {
            0
        } else {
            rng.gen_range(0..=jitter)
        };
        out.push(Arrival::new(SimPacket::new(flow, pkt_len, t + j), port));
        t += gap;
    }
}

/// Build the §7.2 queue-monitor case study.
///
/// Paper setup: one server sends a background TCP flow limited to ~90% of
/// the link capacity (9 Gbps); another first sends a burst of 10,000
/// datagrams at 4 Gbps, then after a short gap begins a 0.5 Gbps TCP flow.
///
/// With a 10 Gbps bottleneck the burst (total offered 13 Gbps) fills the
/// queue in a few milliseconds; afterwards the ~9.5 Gbps steady load drains
/// it only slowly, so the queueing long outlives the burst — 76× longer in
/// the paper's run.
pub fn case_study_fig16(duration: Nanos, seed: u64) -> CaseStudy {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut flows = FlowTable::new();
    let port = 0u16;

    let background = flows.intern(FlowKey::tcp(
        Address::new(10, 0, 0, 1),
        33333,
        Address::new(10, 0, 1, 1),
        5001,
    ));
    let burst = flows.intern(FlowKey::udp(
        Address::new(10, 0, 0, 2),
        44444,
        Address::new(10, 0, 1, 1),
        9999,
    ));
    let new_tcp = flows.intern(FlowKey::tcp(
        Address::new(10, 0, 0, 2),
        44445,
        Address::new(10, 0, 1, 1),
        5002,
    ));

    let mut arrivals = Vec::new();
    // Background flow: 9 Gbps of MTU packets for the whole run.
    cbr_stream(
        background,
        1500,
        9.0,
        0,
        duration,
        120,
        port,
        &mut rng,
        &mut arrivals,
    );

    // Burst: 10,000 datagrams at 4 Gbps. We use 250 B datagrams so the
    // 10k-packet burst lasts ≈ 5 ms, matching Figure 16(a)'s burst span.
    let burst_start = duration / 10;
    let burst_len_bytes = 250u32;
    let gap = tx_delay_ns(burst_len_bytes, 4.0);
    for i in 0..10_000u64 {
        let t = burst_start + i * gap;
        if t < duration {
            arrivals.push(Arrival::new(
                SimPacket::new(burst, burst_len_bytes, t),
                port,
            ));
        }
    }
    let burst_end = burst_start + 10_000 * gap;

    // New TCP flow: 0.5 Gbps, starting shortly after the burst ends.
    let new_tcp_start = burst_end + (duration / 20);
    cbr_stream(
        new_tcp,
        1500,
        0.5,
        new_tcp_start,
        duration,
        120,
        port,
        &mut rng,
        &mut arrivals,
    );

    arrivals.sort_by_key(|a| a.pkt.arrival);
    CaseStudy {
        trace: GeneratedTrace { arrivals, flows },
        roles: CaseStudyFlows {
            background,
            burst,
            new_tcp,
        },
        burst_start,
        new_tcp_start,
    }
}

/// Build a microburst: `flows` senders each fire `packets_per_flow` packets
/// of `pkt_len` bytes within a window of `spread` nanoseconds starting at
/// `start`.
pub fn microburst(
    start: Nanos,
    spread: Nanos,
    flows: usize,
    packets_per_flow: usize,
    pkt_len: u32,
    port: u16,
    seed: u64,
) -> GeneratedTrace {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut table = FlowTable::new();
    let mut arrivals = Vec::new();
    for f in 0..flows {
        let key = FlowKey::tcp(
            Address::new(10, 1, (f / 250) as u8, (f % 250 + 1) as u8),
            20_000 + f as u16,
            Address::new(10, 200, 0, 1),
            80,
        );
        let id = table.intern(key);
        for _ in 0..packets_per_flow {
            let t = start + rng.gen_range(0..=spread);
            arrivals.push(Arrival::new(SimPacket::new(id, pkt_len, t), port));
        }
    }
    arrivals.sort_by_key(|a| a.pkt.arrival);
    GeneratedTrace {
        arrivals,
        flows: table,
    }
}

/// Build a TCP incast: `servers` responders each send a `response_bytes`
/// response starting near `start`, serialized at `sender_rate_gbps`, all
/// converging on one egress port. This is the §2 scenario whose congestion
/// regime consists almost entirely of one application's traffic.
pub fn incast(
    start: Nanos,
    servers: usize,
    response_bytes: u64,
    sender_rate_gbps: f64,
    port: u16,
    seed: u64,
) -> GeneratedTrace {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut table = FlowTable::new();
    let mut arrivals = Vec::new();
    for s in 0..servers {
        let key = FlowKey::tcp(
            Address::new(10, 2, (s / 250) as u8, (s % 250 + 1) as u8),
            30_000 + s as u16,
            Address::new(10, 200, 0, 2),
            9000,
        );
        let id = table.intern(key);
        let mut remaining = response_bytes;
        // Responders start within a small sync window (~RTT noise).
        let mut t = start + rng.gen_range(0..2_000);
        while remaining > 0 {
            let len = 1500.min(remaining.max(64) as u32).max(64);
            arrivals.push(Arrival::new(SimPacket::new(id, len, t), port));
            remaining = remaining.saturating_sub(u64::from(len));
            t += tx_delay_ns(len, sender_rate_gbps);
        }
    }
    arrivals.sort_by_key(|a| a.pkt.arrival);
    GeneratedTrace {
        arrivals,
        flows: table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_packet::NanosExt;

    #[test]
    fn case_study_roles_are_distinct() {
        let cs = case_study_fig16(100u64.millis(), 1);
        assert_ne!(cs.roles.background, cs.roles.burst);
        assert_ne!(cs.roles.burst, cs.roles.new_tcp);
        assert!(cs.new_tcp_start > cs.burst_start);
    }

    #[test]
    fn case_study_rates_are_sane() {
        let duration = 100u64.millis();
        let cs = case_study_fig16(duration, 1);
        let mut by_flow = [0u64; 3];
        for a in &cs.trace.arrivals {
            by_flow[a.pkt.flow.0 as usize] += u64::from(a.pkt.len);
        }
        let gbps = |bytes: u64| bytes as f64 * 8.0 / duration as f64;
        // Background ≈ 9 Gbps over the whole run.
        assert!((8.0..10.0).contains(&gbps(by_flow[cs.roles.background.0 as usize])));
        // Burst: exactly 10,000 datagrams.
        let burst_pkts = cs
            .trace
            .arrivals
            .iter()
            .filter(|a| a.pkt.flow == cs.roles.burst)
            .count();
        assert_eq!(burst_pkts, 10_000);
        // New TCP ≈ 0.5 Gbps while active (less averaged over the full run).
        assert!(gbps(by_flow[cs.roles.new_tcp.0 as usize]) < 0.6);
    }

    #[test]
    fn case_study_burst_is_short() {
        let cs = case_study_fig16(100u64.millis(), 1);
        let burst_times: Vec<Nanos> = cs
            .trace
            .arrivals
            .iter()
            .filter(|a| a.pkt.flow == cs.roles.burst)
            .map(|a| a.pkt.arrival)
            .collect();
        let span = burst_times.last().unwrap() - burst_times.first().unwrap();
        // ~5 ms, as in Figure 16(a).
        assert!(
            (3u64.millis()..8u64.millis()).contains(&span),
            "burst span {span} ns"
        );
    }

    #[test]
    fn microburst_fits_window() {
        let tr = microburst(1_000_000, 50_000, 30, 10, 100, 0, 5);
        assert_eq!(tr.packets(), 300);
        assert_eq!(tr.flows.len(), 30);
        for a in &tr.arrivals {
            assert!((1_000_000..=1_050_000).contains(&a.pkt.arrival));
        }
    }

    #[test]
    fn incast_total_bytes_match() {
        let tr = incast(0, 8, 64_000, 40.0, 0, 2);
        assert_eq!(tr.flows.len(), 8);
        let total: u64 = tr.arrivals.iter().map(|a| u64::from(a.pkt.len)).sum();
        assert!(total >= 8 * 64_000);
        assert!(total < 8 * 65_000);
    }

    #[test]
    fn scenarios_are_deterministic() {
        let a = microburst(0, 1000, 5, 5, 100, 0, 9);
        let b = microburst(0, 1000, 5, 5, 100, 0, 9);
        assert_eq!(a.arrivals, b.arrivals);
    }
}
