//! Token-bucket shaping of arrival streams.
//!
//! The paper's case study rate-limits its background TCP flow "to ~90% of
//! the link capacity (9 Gbps)" at the sender. This module provides that
//! mechanism as a deterministic stream transformer: packets pass a token
//! bucket; a packet that finds insufficient tokens is delayed until the
//! bucket refills (senders are back-pressured, not dropped). Shaping an
//! already-generated stream keeps workloads reproducible and composable
//! with the rest of the generators.

use pq_packet::Nanos;
use pq_switch::Arrival;
use serde::{Deserialize, Serialize};

/// Token-bucket parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TokenBucket {
    /// Sustained rate in Gbps.
    pub rate_gbps: f64,
    /// Bucket depth in bytes (burst allowance).
    pub burst_bytes: u64,
}

impl TokenBucket {
    /// A bucket allowing `rate_gbps` sustained with a small (8 MTU) burst.
    pub fn smooth(rate_gbps: f64) -> TokenBucket {
        TokenBucket {
            rate_gbps,
            burst_bytes: 8 * 1500,
        }
    }

    /// Nanoseconds needed to accumulate `bytes` at the sustained rate.
    fn refill_time(&self, bytes: f64) -> f64 {
        bytes * 8.0 / self.rate_gbps
    }
}

/// Shape `arrivals` (time-sorted) through the bucket, delaying packets that
/// exceed the sustained rate. Packet order is preserved (FIFO shaper).
pub fn shape(arrivals: &[Arrival], bucket: TokenBucket) -> Vec<Arrival> {
    assert!(bucket.rate_gbps > 0.0 && bucket.burst_bytes > 0);
    let mut out = Vec::with_capacity(arrivals.len());
    // Continuous-time token level and the instant it was last updated.
    let mut tokens = bucket.burst_bytes as f64;
    let mut updated_at: f64 = 0.0;
    // FIFO: a delayed packet delays everything behind it.
    let mut earliest_send: f64 = 0.0;

    for a in arrivals {
        let arrival = a.pkt.arrival as f64;
        let need = f64::from(a.pkt.len);
        // Earliest instant this packet can go: after its own arrival and
        // after the queue ahead of it.
        let mut at = arrival.max(earliest_send);
        // Refill up to `at`.
        let refill = (at - updated_at) * bucket.rate_gbps / 8.0;
        tokens = (tokens + refill).min(bucket.burst_bytes as f64);
        updated_at = at;
        if tokens < need {
            // Wait for the deficit to refill.
            let wait = bucket.refill_time(need - tokens);
            at += wait;
            tokens = need;
            updated_at = at;
        }
        tokens -= need;
        earliest_send = at;
        let mut shaped = *a;
        shaped.pkt.arrival = at.round() as Nanos;
        out.push(shaped);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_packet::{FlowId, SimPacket};

    fn stream(n: u64, len: u32, gap: Nanos) -> Vec<Arrival> {
        (0..n)
            .map(|i| Arrival::new(SimPacket::new(FlowId(0), len, i * gap), 0))
            .collect()
    }

    #[test]
    fn under_rate_traffic_is_untouched() {
        // 1500 B every 2400 ns = 5 Gbps through a 9 Gbps bucket.
        let arrivals = stream(100, 1500, 2_400);
        let shaped = shape(&arrivals, TokenBucket::smooth(9.0));
        assert_eq!(shaped, arrivals);
    }

    #[test]
    fn over_rate_traffic_is_paced_to_the_bucket_rate() {
        // Back-to-back 1500 B packets (arrival gap 0) through 9 Gbps.
        let arrivals = stream(1_000, 1500, 0);
        let shaped = shape(&arrivals, TokenBucket::smooth(9.0));
        let span = shaped.last().unwrap().pkt.arrival - shaped.first().unwrap().pkt.arrival;
        let gbps = 999.0 * 1500.0 * 8.0 / span as f64;
        assert!(
            (8.7..=9.3).contains(&gbps),
            "shaped rate {gbps:.2} Gbps, want ~9"
        );
        // Order preserved and non-decreasing.
        assert!(shaped
            .windows(2)
            .all(|w| w[0].pkt.arrival <= w[1].pkt.arrival));
    }

    #[test]
    fn burst_allowance_passes_initially() {
        // First 8 MTU packets ride the initial bucket; later ones pace.
        let arrivals = stream(16, 1500, 0);
        let shaped = shape(&arrivals, TokenBucket::smooth(1.0));
        // The first 8 keep their arrival time (0).
        assert!(shaped[7].pkt.arrival == 0, "burst not honoured");
        assert!(shaped[8].pkt.arrival > 0, "pacing never kicked in");
        // Steady-state spacing ≈ 12 µs (1500 B at 1 Gbps).
        let gap = shaped[15].pkt.arrival - shaped[14].pkt.arrival;
        assert!((11_000..=13_000).contains(&gap), "gap {gap}");
    }

    #[test]
    fn long_idle_refills_but_never_overflows() {
        let mut arrivals = stream(8, 1500, 0); // drain the initial bucket
                                               // A long gap, then another burst: only `burst_bytes` may pass
                                               // unpaced.
        for i in 0..16u64 {
            arrivals.push(Arrival::new(
                SimPacket::new(FlowId(0), 1500, 1_000_000_000 + i),
                0,
            ));
        }
        let shaped = shape(&arrivals, TokenBucket::smooth(1.0));
        let second_burst: Vec<Nanos> = shaped[8..].iter().map(|a| a.pkt.arrival).collect();
        let unpaced = second_burst.iter().filter(|t| **t < 1_000_001_000).count();
        assert!(unpaced <= 8, "bucket overflowed: {unpaced} unpaced");
    }
}
