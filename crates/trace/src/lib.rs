//! Workload and scenario generation for the PrintQueue reproduction.
//!
//! The paper's evaluation (§7.1) drives its Tofino testbed with three
//! workloads:
//!
//! * **UW** — the University of Wisconsin data-center trace: ~100 B packets
//!   (9.1 Mpps at 10 Gbps), an extremely long-tailed flow-size distribution
//!   ("the packet count of the 100th largest flow is less than 1% of the
//!   packet count of the largest flow"), thousands of concurrent flows.
//! * **WS** — synthetic web-search traffic with the DCTCP flow-size
//!   distribution, near-MTU packets.
//! * **DM** — synthetic data-mining traffic with the VL2 flow-size
//!   distribution, near-MTU packets.
//!
//! The real UW pcap is not redistributable, so [`workload::WorkloadKind::Uw`]
//! synthesizes a trace matching the stated statistics (see DESIGN.md §1 for
//! the substitution rationale). WS and DM were synthetic in the paper too;
//! we sample the same published distributions ([`dists`]).
//!
//! Flows and packets arrive "according to Poisson processes" (§7.1);
//! [`workload`] implements that generator, and [`scenario`] builds the named
//! experiment setups: the two-sender congestion testbed, microbursts, incast,
//! and the Figure 16 case study.

pub mod closed_loop;
pub mod dists;
pub mod io;
pub mod pcap;
pub mod ramp;
pub mod scenario;
pub mod shaping;
pub mod stats;
pub mod workload;

pub use dists::{EmpiricalCdf, FlowSizeDist};
pub use workload::{GeneratedTrace, Workload, WorkloadKind};
