//! pcap export/import for generated traces.
//!
//! The paper's testbed replays pcap files with tcpreplay; this module
//! closes the loop in the other direction: a generated trace can be
//! exported as a standard little-endian pcap (LINKTYPE_ETHERNET) with
//! fully synthesized Ethernet/IPv4/TCP|UDP bytes, so external tools
//! (tcpdump, wireshark, tcpreplay itself) can consume our workloads — and
//! pcaps written by us (or small real captures) can be imported back into
//! the simulator through the byte-level ingress parser.
//!
//! Timestamps map simulation nanoseconds to `ts_sec`/`ts_nsec` using the
//! nanosecond-precision magic `0xa1b23c4d`.

use crate::workload::GeneratedTrace;
use pq_packet::packet::{build_frame, parse_frame};
use pq_packet::{FlowTable, SimPacket};
use pq_switch::Arrival;
use std::io::{self, Read, Write};

/// Nanosecond-precision pcap magic (little-endian).
const MAGIC_NSEC: u32 = 0xa1b2_3c4d;
/// Microsecond-precision magic, accepted on import.
const MAGIC_USEC: u32 = 0xa1b2_c3d4;
/// LINKTYPE_ETHERNET.
const LINKTYPE_ETHERNET: u32 = 1;

/// Upper bound on a single record's captured length. Real link-layer frames
/// top out at ~64 KiB (the pcap snaplen convention); a larger `incl_len` is
/// a corrupt or malicious length field, and honoring it would let a tiny
/// file demand an arbitrarily large allocation.
const MAX_INCL_LEN: usize = 256 * 1024;

/// Write `trace` as a pcap stream. Packets are synthesized from their flow
/// tuples; payload bytes are zero-filled to the recorded wire length.
pub fn write_pcap<W: Write>(trace: &GeneratedTrace, mut w: W) -> io::Result<()> {
    // Global header.
    w.write_all(&MAGIC_NSEC.to_le_bytes())?;
    w.write_all(&2u16.to_le_bytes())?; // version major
    w.write_all(&4u16.to_le_bytes())?; // version minor
    w.write_all(&0i32.to_le_bytes())?; // thiszone
    w.write_all(&0u32.to_le_bytes())?; // sigfigs
    w.write_all(&65_535u32.to_le_bytes())?; // snaplen
    w.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;

    for a in &trace.arrivals {
        let key = trace
            .flows
            .resolve(a.pkt.flow)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "dangling flow id"))?;
        // Headers occupy 54 B (TCP) / 42 B (UDP); pad the payload so the
        // frame matches the recorded wire length where possible.
        let base = build_frame(key, 0).len();
        let payload = (a.pkt.len as usize).saturating_sub(base);
        let frame = build_frame(key, payload);

        let ts_sec = (a.pkt.arrival / 1_000_000_000) as u32;
        let ts_nsec = (a.pkt.arrival % 1_000_000_000) as u32;
        w.write_all(&ts_sec.to_le_bytes())?;
        w.write_all(&ts_nsec.to_le_bytes())?;
        w.write_all(&(frame.len() as u32).to_le_bytes())?;
        w.write_all(&(frame.len() as u32).to_le_bytes())?;
        w.write_all(&frame)?;
    }
    Ok(())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Read a pcap stream back into a trace targeting `port`.
///
/// Runs every frame through the byte-level ingress parser; frames that are
/// not Ethernet/IPv4/{TCP,UDP} are skipped (counted in the returned tally).
/// A record whose length field exceeds `MAX_INCL_LEN` (256 KiB) is rejected as
/// corrupt; a final record truncated mid-stream (an interrupted capture) is
/// tolerated and counted as skipped rather than failing the whole import.
pub fn read_pcap<R: Read>(mut r: R, port: u16) -> io::Result<(GeneratedTrace, usize)> {
    let magic = read_u32(&mut r)?;
    let nanos_per_tick = match magic {
        MAGIC_NSEC => 1u64,
        MAGIC_USEC => 1_000,
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a little-endian pcap",
            ))
        }
    };
    let mut header_rest = [0u8; 20];
    r.read_exact(&mut header_rest)?;
    let linktype = u32::from_le_bytes(header_rest[16..20].try_into().unwrap());
    if linktype != LINKTYPE_ETHERNET {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "only LINKTYPE_ETHERNET pcaps are supported",
        ));
    }

    let mut flows = FlowTable::new();
    let mut arrivals = Vec::new();
    let mut skipped = 0usize;
    loop {
        let ts_sec = match read_u32(&mut r) {
            Ok(v) => v,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        };
        // A record header or body cut off mid-way is an interrupted
        // capture: keep everything read so far and count the remnant.
        let (ts_frac, incl_len) = match (read_u32(&mut r), read_u32(&mut r)) {
            (Ok(frac), Ok(len)) => (frac, len as usize),
            (Err(e), _) | (_, Err(e)) if e.kind() == io::ErrorKind::UnexpectedEof => {
                skipped += 1;
                break;
            }
            (Err(e), _) | (_, Err(e)) => return Err(e),
        };
        let orig_len = match read_u32(&mut r) {
            Ok(v) => v,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                skipped += 1;
                break;
            }
            Err(e) => return Err(e),
        };
        if incl_len > MAX_INCL_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("pcap record claims {incl_len} captured bytes (corrupt length field)"),
            ));
        }
        let mut frame = vec![0u8; incl_len];
        match r.read_exact(&mut frame) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                skipped += 1;
                break;
            }
            Err(e) => return Err(e),
        }
        let at = u64::from(ts_sec) * 1_000_000_000 + u64::from(ts_frac) * nanos_per_tick;
        match parse_frame(&frame) {
            Ok(parsed) => {
                let id = flows.intern(parsed.flow);
                arrivals.push(Arrival::new(SimPacket::new(id, orig_len, at), port));
            }
            Err(_) => skipped += 1,
        }
    }
    arrivals.sort_by_key(|a| a.pkt.arrival);
    Ok((GeneratedTrace { arrivals, flows }, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::microburst;

    #[test]
    fn pcap_roundtrip_preserves_flows_and_times() {
        let trace = microburst(1_000, 50_000, 10, 8, 200, 0, 4);
        let mut buf = Vec::new();
        write_pcap(&trace, &mut buf).unwrap();
        let (back, skipped) = read_pcap(buf.as_slice(), 0).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(back.packets(), trace.packets());
        assert_eq!(back.flows.len(), trace.flows.len());
        // Times and tuple identity survive (ids may be renumbered).
        for (a, b) in trace.arrivals.iter().zip(&back.arrivals) {
            assert_eq!(a.pkt.arrival, b.pkt.arrival);
            assert_eq!(
                trace.flows.resolve(a.pkt.flow),
                back.flows.resolve(b.pkt.flow)
            );
        }
    }

    #[test]
    fn global_header_is_valid() {
        let trace = microburst(0, 1_000, 2, 1, 100, 0, 1);
        let mut buf = Vec::new();
        write_pcap(&trace, &mut buf).unwrap();
        assert_eq!(
            u32::from_le_bytes(buf[0..4].try_into().unwrap()),
            MAGIC_NSEC
        );
        assert_eq!(u16::from_le_bytes(buf[4..6].try_into().unwrap()), 2);
        assert_eq!(
            u32::from_le_bytes(buf[20..24].try_into().unwrap()),
            LINKTYPE_ETHERNET
        );
    }

    #[test]
    fn wire_length_preserved_for_large_packets() {
        let trace = microburst(0, 1_000, 2, 2, 1_500, 0, 2);
        let mut buf = Vec::new();
        write_pcap(&trace, &mut buf).unwrap();
        let (back, _) = read_pcap(buf.as_slice(), 3).unwrap();
        assert!(back.arrivals.iter().all(|a| a.pkt.len == 1_500));
        assert!(back.arrivals.iter().all(|a| a.port == 3));
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_pcap(&[0u8; 24][..], 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn non_ip_frames_are_skipped() {
        let trace = microburst(0, 1_000, 1, 1, 100, 0, 3);
        let mut buf = Vec::new();
        write_pcap(&trace, &mut buf).unwrap();
        // Append a bogus ARP frame record.
        let arp = [0u8; 42];
        buf.extend_from_slice(&1u32.to_le_bytes()); // ts_sec
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&(arp.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(arp.len() as u32).to_le_bytes());
        buf.extend_from_slice(&arp);
        let (back, skipped) = read_pcap(buf.as_slice(), 0).unwrap();
        assert_eq!(back.packets(), 1);
        assert_eq!(skipped, 1);
    }

    #[test]
    fn truncated_record_body_counted_not_fatal() {
        let trace = microburst(0, 1_000, 2, 2, 200, 0, 6);
        let mut buf = Vec::new();
        write_pcap(&trace, &mut buf).unwrap();
        // Chop the final frame in half: the import must keep the intact
        // records and count the remnant instead of erroring.
        let cut = buf.len() - 60;
        let (back, skipped) = read_pcap(&buf[..cut], 0).unwrap();
        assert_eq!(skipped, 1);
        assert_eq!(back.packets(), trace.packets() - 1);
    }

    #[test]
    fn truncated_record_header_counted_not_fatal() {
        let trace = microburst(0, 1_000, 1, 2, 200, 0, 6);
        let mut buf = Vec::new();
        write_pcap(&trace, &mut buf).unwrap();
        // Leave only 6 bytes of the last record's 16-byte header.
        let last_record = buf.len() - (16 + 200);
        let (back, skipped) = read_pcap(&buf[..last_record + 6], 0).unwrap();
        assert_eq!(skipped, 1);
        assert_eq!(back.packets(), trace.packets() - 1);
    }

    #[test]
    fn absurd_incl_len_rejected_without_allocating() {
        let trace = microburst(0, 1_000, 1, 1, 100, 0, 7);
        let mut buf = Vec::new();
        write_pcap(&trace, &mut buf).unwrap();
        // Append a record claiming a ~4 GiB frame in 8 bytes of file.
        buf.extend_from_slice(&1u32.to_le_bytes()); // ts_sec
        buf.extend_from_slice(&0u32.to_le_bytes()); // ts_frac
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // incl_len
        buf.extend_from_slice(&100u32.to_le_bytes()); // orig_len
        let err = read_pcap(buf.as_slice(), 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn empty_and_header_only_streams() {
        // Zero bytes: clean EOF error (no header at all).
        assert!(read_pcap(&[][..], 0).is_err());
        // A bare valid global header parses as an empty trace.
        let trace = microburst(0, 1_000, 1, 1, 100, 0, 8);
        let mut buf = Vec::new();
        write_pcap(&trace, &mut buf).unwrap();
        let (back, skipped) = read_pcap(&buf[..24], 0).unwrap();
        assert_eq!(back.packets(), 0);
        assert_eq!(skipped, 0);
    }

    #[test]
    fn microsecond_magic_accepted() {
        let trace = microburst(2_000_000, 0, 1, 1, 100, 0, 5);
        let mut buf = Vec::new();
        write_pcap(&trace, &mut buf).unwrap();
        // Rewrite as µs pcap: patch magic and divide the fraction field.
        buf[0..4].copy_from_slice(&MAGIC_USEC.to_le_bytes());
        // record header starts at 24; ts_frac at 28..32 (ns → µs).
        let ns = u32::from_le_bytes(buf[28..32].try_into().unwrap());
        buf[28..32].copy_from_slice(&(ns / 1_000).to_le_bytes());
        let (back, _) = read_pcap(buf.as_slice(), 0).unwrap();
        assert_eq!(back.arrivals[0].pkt.arrival, 2_000_000);
    }
}
