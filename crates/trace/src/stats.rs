//! Trace statistics: the summary numbers the paper quotes about its
//! workloads (packet rate, packet-size profile, flow-size skew, burstiness)
//! computed for any generated or imported trace.
//!
//! Used by `pqsim info`, by the workload tests (to check a synthesized
//! trace matches the paper's stated properties), and handy when importing
//! external pcaps.

use crate::workload::GeneratedTrace;
use pq_packet::{FlowId, Nanos};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Summary statistics of one trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total packets.
    pub packets: u64,
    /// Total bytes.
    pub bytes: u64,
    /// Span from first to last arrival, ns.
    pub span: Nanos,
    /// Mean offered rate over the span, Gbps.
    pub offered_gbps: f64,
    /// Mean packet rate, Mpps.
    pub mpps: f64,
    /// Packet-size percentiles (p1, p50, p99), bytes.
    pub pkt_size_p1: u32,
    pub pkt_size_p50: u32,
    pub pkt_size_p99: u32,
    /// Number of distinct flows.
    pub flows: usize,
    /// Largest flow's packet count.
    pub top_flow_packets: u64,
    /// Ratio of the 100th-largest flow's packets to the largest flow's —
    /// the paper's UW-skew statistic ("less than 1%"). 0 when < 100 flows.
    pub rank100_to_top_ratio: f64,
    /// Coefficient of variation of inter-arrival gaps (1 ≈ Poisson,
    /// > 1 bursty, < 1 paced).
    pub interarrival_cov: f64,
}

/// Compute [`TraceStats`] for a trace.
pub fn analyze(trace: &GeneratedTrace) -> TraceStats {
    let packets = trace.packets() as u64;
    let bytes = trace.bytes();
    let first = trace.arrivals.first().map(|a| a.pkt.arrival).unwrap_or(0);
    let last = trace.arrivals.last().map(|a| a.pkt.arrival).unwrap_or(0);
    let span = last.saturating_sub(first).max(1);

    // Packet-size percentiles.
    let mut sizes: Vec<u32> = trace.arrivals.iter().map(|a| a.pkt.len).collect();
    sizes.sort_unstable();
    let pct = |p: f64| -> u32 {
        if sizes.is_empty() {
            return 0;
        }
        let idx = ((sizes.len() as f64 - 1.0) * p).round() as usize;
        sizes[idx]
    };

    // Flow-size order statistics.
    let mut per_flow: HashMap<FlowId, u64> = HashMap::new();
    for a in &trace.arrivals {
        *per_flow.entry(a.pkt.flow).or_insert(0) += 1;
    }
    let mut flow_sizes: Vec<u64> = per_flow.values().copied().collect();
    flow_sizes.sort_unstable_by(|a, b| b.cmp(a));
    let top = flow_sizes.first().copied().unwrap_or(0);
    let rank100 = flow_sizes.get(99).copied().unwrap_or(0);

    // Inter-arrival coefficient of variation.
    let mut gaps: Vec<f64> = trace
        .arrivals
        .windows(2)
        .map(|w| (w[1].pkt.arrival - w[0].pkt.arrival) as f64)
        .collect();
    let cov = if gaps.len() < 2 {
        0.0
    } else {
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        if mean == 0.0 {
            0.0
        } else {
            let var = gaps
                .iter_mut()
                .map(|g| (*g - mean) * (*g - mean))
                .sum::<f64>()
                / gaps.len() as f64;
            var.sqrt() / mean
        }
    };

    TraceStats {
        packets,
        bytes,
        span,
        offered_gbps: bytes as f64 * 8.0 / span as f64,
        mpps: packets as f64 / (span as f64 / 1e9) / 1e6,
        pkt_size_p1: pct(0.01),
        pkt_size_p50: pct(0.50),
        pkt_size_p99: pct(0.99),
        flows: per_flow.len(),
        top_flow_packets: top,
        rank100_to_top_ratio: if top == 0 {
            0.0
        } else {
            rank100 as f64 / top as f64
        },
        interarrival_cov: cov,
    }
}

impl std::fmt::Display for TraceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "packets        : {}", self.packets)?;
        writeln!(f, "flows          : {}", self.flows)?;
        writeln!(f, "span           : {:.3} ms", self.span as f64 / 1e6)?;
        writeln!(
            f,
            "offered        : {:.3} Gbps ({:.2} Mpps)",
            self.offered_gbps, self.mpps
        )?;
        writeln!(
            f,
            "packet size    : p1 {} / p50 {} / p99 {} B",
            self.pkt_size_p1, self.pkt_size_p50, self.pkt_size_p99
        )?;
        writeln!(
            f,
            "flow skew      : top flow {} pkts, rank-100/top {:.4}",
            self.top_flow_packets, self.rank100_to_top_ratio
        )?;
        write!(f, "inter-arrival  : CoV {:.2}", self.interarrival_cov)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Workload, WorkloadKind};
    use pq_packet::NanosExt;

    fn trace(kind: WorkloadKind, seed: u64) -> GeneratedTrace {
        Workload {
            kind,
            duration: 20u64.millis(),
            load: 1.0,
            port: 0,
            port_rate_gbps: 10.0,
            sender_rate_gbps: 40.0,
            min_flow_rate_gbps: 0.5,
            warmup: 20u64.millis(),
            seed,
        }
        .generate()
    }

    #[test]
    fn uw_statistics_match_paper_claims() {
        let stats = analyze(&trace(WorkloadKind::Uw, 11));
        // ~100 B packets.
        assert!(
            (64..=146).contains(&stats.pkt_size_p50),
            "p50 {}",
            stats.pkt_size_p50
        );
        // Mpps in the right decade for ~10 Gbps of small packets.
        assert!(stats.mpps > 3.0, "mpps {}", stats.mpps);
        // Extreme skew (paper: rank-100 < 1% of top). Allow slack for the
        // short horizon.
        assert!(
            stats.rank100_to_top_ratio < 0.05,
            "skew ratio {}",
            stats.rank100_to_top_ratio
        );
    }

    #[test]
    fn ws_packets_are_mtu() {
        let stats = analyze(&trace(WorkloadKind::Ws, 3));
        assert_eq!(stats.pkt_size_p50, 1500);
        assert!(stats.mpps < 2.0);
    }

    #[test]
    fn empty_trace_is_safe() {
        let empty = GeneratedTrace {
            arrivals: Vec::new(),
            flows: pq_packet::FlowTable::new(),
        };
        let stats = analyze(&empty);
        assert_eq!(stats.packets, 0);
        assert_eq!(stats.offered_gbps, 0.0);
        assert_eq!(stats.interarrival_cov, 0.0);
    }

    #[test]
    fn display_renders() {
        let stats = analyze(&trace(WorkloadKind::Dm, 5));
        let text = stats.to_string();
        assert!(text.contains("packets"));
        assert!(text.contains("Gbps"));
    }

    #[test]
    fn cov_detects_burstiness() {
        use pq_packet::{FlowId, SimPacket};
        use pq_switch::Arrival;
        // Perfectly paced stream: CoV ≈ 0.
        let paced = GeneratedTrace {
            arrivals: (0..100)
                .map(|i| Arrival::new(SimPacket::new(FlowId(0), 100, i * 1_000), 0))
                .collect(),
            flows: pq_packet::FlowTable::new(),
        };
        assert!(analyze(&paced).interarrival_cov < 0.01);
        // Bursty: packets in clumps of 10 with long gaps.
        let bursty = GeneratedTrace {
            arrivals: (0..100)
                .map(|i| {
                    let t = (i / 10) * 100_000 + (i % 10);
                    Arrival::new(SimPacket::new(FlowId(0), 100, t), 0)
                })
                .collect(),
            flows: pq_packet::FlowTable::new(),
        };
        assert!(analyze(&bursty).interarrival_cov > 2.0);
    }
}
