//! Trace file I/O: save and replay generated workloads.
//!
//! The paper drives its testbed by replaying pcap files with `tcpreplay`;
//! the analogous capability here is a compact binary trace format so
//! experiments can snapshot an expensive workload once and replay it across
//! runs and parameter sweeps, byte-for-byte reproducibly.
//!
//! Format (`PQTR` v1, little-endian):
//!
//! ```text
//! magic "PQTR" | u16 version | u16 reserved
//! u32 flow_count
//!   per flow: 4B src, 4B dst, u16 sport, u16 dport, u8 proto
//! u64 packet_count
//!   per packet: u32 flow_id, u32 len, u64 arrival_ns, u16 port, u8 priority
//! ```

use crate::workload::GeneratedTrace;
use pq_packet::{FlowKey, FlowTable, Protocol, SimPacket};
use pq_switch::Arrival;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"PQTR";
const VERSION: u16 = 1;

/// Serialize a trace to a writer.
pub fn write_trace<W: Write>(trace: &GeneratedTrace, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&0u16.to_le_bytes())?;

    w.write_all(&(trace.flows.len() as u32).to_le_bytes())?;
    for (_, key) in trace.flows.iter() {
        w.write_all(&key.src)?;
        w.write_all(&key.dst)?;
        w.write_all(&key.src_port.to_le_bytes())?;
        w.write_all(&key.dst_port.to_le_bytes())?;
        w.write_all(&[key.protocol.number()])?;
    }

    w.write_all(&(trace.arrivals.len() as u64).to_le_bytes())?;
    for a in &trace.arrivals {
        w.write_all(&a.pkt.flow.0.to_le_bytes())?;
        w.write_all(&a.pkt.len.to_le_bytes())?;
        w.write_all(&a.pkt.arrival.to_le_bytes())?;
        w.write_all(&a.port.to_le_bytes())?;
        w.write_all(&[a.pkt.priority])?;
    }
    Ok(())
}

fn read_exact<const N: usize, R: Read>(r: &mut R) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Deserialize a trace from a reader.
pub fn read_trace<R: Read>(mut r: R) -> io::Result<GeneratedTrace> {
    if &read_exact::<4, _>(&mut r)? != MAGIC {
        return Err(bad("not a PQTR trace (bad magic)"));
    }
    let version = u16::from_le_bytes(read_exact::<2, _>(&mut r)?);
    if version != VERSION {
        return Err(bad("unsupported PQTR version"));
    }
    let _reserved = read_exact::<2, _>(&mut r)?;

    let flow_count = u32::from_le_bytes(read_exact::<4, _>(&mut r)?);
    let mut flows = FlowTable::new();
    for _ in 0..flow_count {
        let src = read_exact::<4, _>(&mut r)?;
        let dst = read_exact::<4, _>(&mut r)?;
        let src_port = u16::from_le_bytes(read_exact::<2, _>(&mut r)?);
        let dst_port = u16::from_le_bytes(read_exact::<2, _>(&mut r)?);
        let proto = read_exact::<1, _>(&mut r)?[0];
        flows.intern(FlowKey {
            src,
            dst,
            src_port,
            dst_port,
            protocol: Protocol::from(proto),
        });
    }

    let packet_count = u64::from_le_bytes(read_exact::<8, _>(&mut r)?);
    // The count is untrusted: cap the preallocation so a corrupt header
    // cannot demand gigabytes up front (each record is 19 B on the wire,
    // so a genuine large trace grows the vec incrementally as it reads).
    let prealloc = usize::try_from(packet_count).unwrap_or(0).min(1 << 20);
    let mut arrivals = Vec::with_capacity(prealloc);
    let mut prev_arrival = 0u64;
    for _ in 0..packet_count {
        let flow = u32::from_le_bytes(read_exact::<4, _>(&mut r)?);
        let len = u32::from_le_bytes(read_exact::<4, _>(&mut r)?);
        let arrival = u64::from_le_bytes(read_exact::<8, _>(&mut r)?);
        let port = u16::from_le_bytes(read_exact::<2, _>(&mut r)?);
        let priority = read_exact::<1, _>(&mut r)?[0];
        if flow >= flow_count {
            return Err(bad("packet references unknown flow"));
        }
        if arrival < prev_arrival {
            return Err(bad("arrivals not time-sorted"));
        }
        prev_arrival = arrival;
        arrivals.push(Arrival::new(
            SimPacket::new(pq_packet::FlowId(flow), len, arrival).with_priority(priority),
            port,
        ));
    }
    Ok(GeneratedTrace { arrivals, flows })
}

/// Convenience: write to a file path.
pub fn save(trace: &GeneratedTrace, path: &std::path::Path) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_trace(trace, io::BufWriter::new(file))
}

/// Convenience: read from a file path.
pub fn load(path: &std::path::Path) -> io::Result<GeneratedTrace> {
    let file = std::fs::File::open(path)?;
    read_trace(io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Workload, WorkloadKind};
    use pq_packet::NanosExt;

    fn sample() -> GeneratedTrace {
        Workload {
            kind: WorkloadKind::Ws,
            duration: 2u64.millis(),
            load: 1.0,
            port: 0,
            port_rate_gbps: 10.0,
            sender_rate_gbps: 40.0,
            min_flow_rate_gbps: 0.5,
            warmup: 2u64.millis(),
            seed: 31,
        }
        .generate()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let trace = sample();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back.arrivals, trace.arrivals);
        assert_eq!(back.flows.len(), trace.flows.len());
        for (id, key) in trace.flows.iter() {
            assert_eq!(back.flows.resolve(id), Some(key));
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_trace(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_file_rejected() {
        let trace = sample();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn absurd_packet_count_does_not_preallocate() {
        // A header claiming u64::MAX packets with no data must fail with a
        // clean EOF-style error, not abort on an impossible allocation.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"PQTR");
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes()); // no flows
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // absurd packet count
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn byte_by_byte_truncations_never_panic() {
        // Every prefix of a valid file must produce Ok or Err — never a
        // panic or a runaway allocation.
        let trace = sample();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let probe = buf.len().min(400);
        for cut in 0..probe {
            let _ = read_trace(&buf[..cut]);
        }
        // And a spread of deeper cuts across the whole file.
        for cut in (0..buf.len()).step_by(97) {
            let _ = read_trace(&buf[..cut]);
        }
    }

    #[test]
    fn unknown_flow_reference_rejected() {
        // Hand-craft: zero flows but one packet.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"PQTR");
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes()); // no flows
        buf.extend_from_slice(&1u64.to_le_bytes()); // one packet
        buf.extend_from_slice(&0u32.to_le_bytes()); // flow 0 (unknown)
        buf.extend_from_slice(&64u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.push(0);
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn unsorted_arrivals_rejected() {
        let trace = sample();
        let mut buf = Vec::new();
        // Reverse two packets by writing manually.
        let mut reversed = GeneratedTrace {
            arrivals: trace.arrivals.clone(),
            flows: trace.flows.clone(),
        };
        reversed.arrivals.reverse();
        write_trace(&reversed, &mut buf).unwrap();
        if trace.arrivals.len() > 1 {
            assert!(read_trace(buf.as_slice()).is_err());
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("pqtr_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.pqtr");
        let trace = sample();
        save(&trace, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.packets(), trace.packets());
        let _ = std::fs::remove_file(&path);
    }
}
