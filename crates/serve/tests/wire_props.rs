//! Adversarial property tests for the wire protocol: every frame type
//! round-trips bit-exactly, and no sequence of malformed, truncated, or
//! hostile bytes can panic the decoder or trick it into over-allocating.

use pq_core::control::CoverageGap;
use pq_packet::FlowId;
use pq_serve::wire::{
    decode_body, encode_body, read_frame, ErrorCode, Frame, HealthInfo, Request, ShardMap,
    ShardMapEntry, WireError, WireSample, WireValue, MAX_FRAME_LEN, MAX_PROF_DUMP_LEN,
    PROF_BYTES_PER_FRAME, TRACE_EXT_LEN,
};
use pq_telemetry::{BucketExemplar, Trace, TraceContext, TraceSpan, NUM_BUCKETS};
use proptest::prelude::*;
use std::io::Cursor;

fn arb_gaps() -> impl Strategy<Value = Vec<CoverageGap>> {
    proptest::collection::vec(
        (any::<u64>(), any::<u64>()).prop_map(|(from, to)| CoverageGap { from, to }),
        0..20,
    )
}

fn arb_error_code() -> impl Strategy<Value = ErrorCode> {
    (1u16..=9).prop_map(|v| ErrorCode::from_u16(v).unwrap())
}

fn arb_trace_ctx() -> impl Strategy<Value = TraceContext> {
    (any::<u128>(), any::<u64>(), any::<bool>()).prop_map(|(trace_id, parent_span, sampled)| {
        TraceContext {
            trace_id,
            parent_span,
            sampled,
        }
    })
}

fn arb_span() -> impl Strategy<Value = TraceSpan> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        arb_string(12),
        arb_string(12),
        arb_string(12),
    )
        .prop_map(
            |((span_id, parent_span, start_ns, end_ns), name, process, tag)| TraceSpan {
                span_id,
                parent_span,
                name,
                process,
                tag,
                start_ns,
                end_ns,
            },
        )
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    (
        any::<u128>(),
        any::<u64>(),
        any::<u64>(),
        any::<bool>(),
        proptest::collection::vec(arb_span(), 0..4),
    )
        .prop_map(|(trace_id, root_span, duration_ns, slow, spans)| Trace {
            trace_id,
            root_span,
            duration_ns,
            slow,
            spans,
        })
}

/// Arbitrary UTF-8 strings up to `max` bytes (lossy-converted byte soup,
/// which covers multi-byte sequences too).
fn arb_string(max: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..max)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

/// Arbitrary non-empty strings (the decoder rejects empty sample names).
fn arb_nonempty_string(max: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 1..max)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

fn arb_wire_value() -> impl Strategy<Value = WireValue> {
    prop_oneof![
        any::<u64>().prop_map(WireValue::Counter).boxed(),
        any::<u64>().prop_map(WireValue::Gauge).boxed(),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec((0u8..65, any::<u64>()), 0..10),
            proptest::collection::vec(
                (0u8..NUM_BUCKETS as u8, any::<u128>(), any::<u64>()).prop_map(
                    |(bucket, trace_id, value)| BucketExemplar {
                        bucket,
                        trace_id,
                        value,
                    }
                ),
                0..6,
            ),
        )
            .prop_map(
                |(count, sum, min, max, buckets, exemplars)| WireValue::Histogram {
                    count,
                    sum,
                    min,
                    max,
                    buckets,
                    exemplars,
                }
            )
            .boxed(),
    ]
}

fn arb_sample() -> impl Strategy<Value = WireSample> {
    (
        arb_nonempty_string(20),
        proptest::collection::vec((arb_string(10), arb_string(10)), 0..8),
        arb_wire_value(),
    )
        .prop_map(|(name, labels, value)| WireSample {
            name,
            labels,
            value,
        })
}

fn arb_health() -> impl Strategy<Value = HealthInfo> {
    (
        (
            any::<u64>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
        ),
        (any::<u32>(), any::<u32>(), any::<u32>(), any::<bool>()),
        arb_string(16),
        arb_string(48),
        arb_string(24),
    )
        .prop_map(
            |(
                (uptime_ns, workers, busy_workers, queue_depth, queue_cap),
                (active_conns, max_conns, subscribers, draining),
                version,
                commit,
                shard,
            )| HealthInfo {
                uptime_ns,
                workers,
                busy_workers,
                queue_depth,
                queue_cap,
                active_conns,
                max_conns,
                subscribers,
                draining,
                version,
                commit,
                shard,
            },
        )
}

fn arb_shard_map() -> impl Strategy<Value = ShardMap> {
    (
        any::<u64>(),
        any::<u32>(),
        any::<u64>(),
        proptest::collection::vec(
            (arb_string(16), arb_string(24), any::<bool>()).prop_map(|(shard, addr, healthy)| {
                ShardMapEntry {
                    shard,
                    addr,
                    healthy,
                }
            }),
            0..8,
        ),
    )
        .prop_map(|(generation, replication, epoch_ns, backends)| ShardMap {
            generation,
            replication,
            epoch_ns,
            backends,
        })
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (any::<u16>(), any::<u64>(), any::<u64>())
            .prop_map(|(port, from, to)| Request::TimeWindows { port, from, to })
            .boxed(),
        (any::<u16>(), any::<u64>())
            .prop_map(|(port, at)| Request::QueueMonitor { port, at })
            .boxed(),
        (any::<u16>(), any::<u64>(), any::<u64>(), any::<u64>())
            .prop_map(|(port, from, to, d)| Request::Replay { port, from, to, d })
            .boxed(),
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (any::<u16>(), 0u32..=MAX_FRAME_LEN)
            .prop_map(|(version, max_frame)| Frame::Hello { version, max_frame })
            .boxed(),
        (any::<u16>(), 0u32..=MAX_FRAME_LEN)
            .prop_map(|(version, max_frame)| Frame::HelloAck { version, max_frame })
            .boxed(),
        (any::<u64>(), arb_request())
            .prop_map(|(id, req)| Frame::Request {
                id,
                req,
                trace: None,
            })
            .boxed(),
        any::<u64>().prop_map(|id| Frame::MetricsReq { id }).boxed(),
        any::<u64>()
            .prop_map(|id| Frame::ShutdownReq { id })
            .boxed(),
        any::<u64>()
            .prop_map(|id| Frame::ShutdownAck { id })
            .boxed(),
        any::<u64>().prop_map(|id| Frame::ResultEnd { id }).boxed(),
        (
            any::<u64>(),
            any::<bool>(),
            any::<u64>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(
                |(id, degraded, checkpoints, flows, gaps)| Frame::ResultHeader {
                    id,
                    degraded,
                    checkpoints,
                    flows,
                    gaps,
                    trace: None,
                }
            )
            .boxed(),
        (
            any::<u64>(),
            proptest::collection::vec(
                (any::<u32>(), any::<u64>())
                    .prop_map(|(f, bits)| (FlowId(f), f64::from_bits(bits))),
                0..50,
            )
        )
            .prop_map(|(id, flows)| Frame::ResultFlows { id, flows })
            .boxed(),
        (any::<u64>(), arb_gaps())
            .prop_map(|(id, gaps)| Frame::ResultGaps { id, gaps })
            .boxed(),
        (
            any::<u64>(),
            any::<bool>(),
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(id, degraded, frozen_at, staleness, counts, gaps)| {
                Frame::MonitorHeader {
                    id,
                    degraded,
                    frozen_at,
                    staleness,
                    counts,
                    gaps,
                    trace: None,
                }
            })
            .boxed(),
        (
            any::<u64>(),
            proptest::collection::vec(
                (any::<u32>(), any::<u64>()).prop_map(|(f, n)| (FlowId(f), n)),
                0..50,
            )
        )
            .prop_map(|(id, counts)| Frame::MonitorCounts { id, counts })
            .boxed(),
        (any::<u64>(), arb_error_code(), arb_gaps(), arb_string(80))
            .prop_map(|(id, code, gaps, message)| Frame::Error {
                id,
                code,
                gaps,
                message,
            })
            .boxed(),
        (any::<u64>(), any::<u32>())
            .prop_map(|(id, retry_after_ms)| Frame::Busy { id, retry_after_ms })
            .boxed(),
        (any::<u64>(), arb_string(200))
            .prop_map(|(id, text)| Frame::MetricsText { id, text })
            .boxed(),
        any::<u64>().prop_map(|id| Frame::HealthReq { id }).boxed(),
        any::<u64>().prop_map(|id| Frame::MetricsGet { id }).boxed(),
        (any::<u64>(), any::<u32>(), any::<u32>())
            .prop_map(|(id, interval_ms, max_updates)| Frame::MetricsSubscribe {
                id,
                interval_ms,
                max_updates,
            })
            .boxed(),
        (any::<u64>(), arb_health())
            .prop_map(|(id, health)| Frame::HealthAck { id, health })
            .boxed(),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            any::<bool>()
        )
            .prop_map(|(id, seq, t_ns, total, last)| Frame::MetricsHeader {
                id,
                seq,
                t_ns,
                total,
                last,
            })
            .boxed(),
        (any::<u64>(), proptest::collection::vec(arb_sample(), 0..5))
            .prop_map(|(id, samples)| Frame::MetricsChunk { id, samples })
            .boxed(),
        any::<u64>()
            .prop_map(|id| Frame::ShardMapReq { id })
            .boxed(),
        (any::<u64>(), arb_shard_map())
            .prop_map(|(id, map)| Frame::ShardMapAck { id, map })
            .boxed(),
        (any::<u64>(), any::<u32>(), any::<bool>())
            .prop_map(|(id, max, slow_only)| Frame::TraceDumpReq { id, max, slow_only })
            .boxed(),
        (any::<u64>(), proptest::collection::vec(arb_trace(), 0..3))
            .prop_map(|(id, traces)| Frame::TraceDumpAck { id, traces })
            .boxed(),
        any::<u64>()
            .prop_map(|id| Frame::ProfileDumpReq { id })
            .boxed(),
        (any::<u64>(), 0u32..=MAX_PROF_DUMP_LEN)
            .prop_map(|(id, total)| Frame::ProfHeader { id, total })
            .boxed(),
        (
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..PROF_BYTES_PER_FRAME.min(512))
        )
            .prop_map(|(id, bytes)| Frame::ProfChunk { id, bytes })
            .boxed(),
    ]
}

/// Frames that can carry the optional trace-context extension, with the
/// extension present. Kept OUT of [`arb_frame`]: truncating a traced
/// frame by exactly its extension yields a *valid* untraced frame, so the
/// every-prefix-errors property only holds for extension-free bodies
/// (the aliasing itself is pinned down in `traced_prefixes` below).
fn arb_traced_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (any::<u64>(), arb_request(), arb_trace_ctx())
            .prop_map(|(id, req, ctx)| Frame::Request {
                id,
                req,
                trace: Some(ctx),
            })
            .boxed(),
        (
            any::<u64>(),
            any::<bool>(),
            any::<u64>(),
            any::<u32>(),
            any::<u32>(),
            arb_trace_ctx()
        )
            .prop_map(
                |(id, degraded, checkpoints, flows, gaps, ctx)| Frame::ResultHeader {
                    id,
                    degraded,
                    checkpoints,
                    flows,
                    gaps,
                    trace: Some(ctx),
                }
            )
            .boxed(),
        (
            any::<u64>(),
            any::<bool>(),
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            any::<u32>(),
            arb_trace_ctx()
        )
            .prop_map(|(id, degraded, frozen_at, staleness, counts, gaps, ctx)| {
                Frame::MonitorHeader {
                    id,
                    degraded,
                    frozen_at,
                    staleness,
                    counts,
                    gaps,
                    trace: Some(ctx),
                }
            })
            .boxed(),
        (
            any::<u64>(),
            any::<u32>(),
            any::<u32>(),
            any::<bool>(),
            arb_string(40),
            arb_trace_ctx()
        )
            .prop_map(|(id, cap, max_windows, stop_after_seal, query, ctx)| {
                Frame::StandingQueryReq {
                    id,
                    cap,
                    max_windows,
                    stop_after_seal,
                    query,
                    trace: Some(ctx),
                }
            })
            .boxed(),
        (any::<u64>(), any::<u32>(), arb_string(40), arb_trace_ctx())
            .prop_map(|(id, cap, query, ctx)| Frame::StandingQueryAck {
                id,
                cap,
                query,
                trace: Some(ctx),
            })
            .boxed(),
    ]
}

/// The same frame with its trace context removed.
fn strip_trace(frame: &Frame) -> Frame {
    let mut bare = frame.clone();
    match &mut bare {
        Frame::Request { trace, .. }
        | Frame::ResultHeader { trace, .. }
        | Frame::MonitorHeader { trace, .. }
        | Frame::StandingQueryReq { trace, .. }
        | Frame::StandingQueryAck { trace, .. } => *trace = None,
        _ => unreachable!("arb_traced_frame only yields extension carriers"),
    }
    bare
}

proptest! {
    #[test]
    fn every_frame_round_trips_bit_exactly(frame in arb_frame()) {
        let body = encode_body(&frame);
        let back = decode_body(&body).expect("clean encoding must decode");
        // Bit-level identity (also correct for NaN flow values, where
        // `PartialEq` would lie).
        prop_assert_eq!(encode_body(&back), body);
    }

    #[test]
    fn truncation_never_panics_and_never_succeeds(frame in arb_frame()) {
        let body = encode_body(&frame);
        // Every strict prefix must decode to an error (the payload is
        // incomplete) without panicking. Skip len-0: an empty body has no
        // type byte and is also an error, checked below.
        for cut in 0..body.len() {
            prop_assert!(
                decode_body(&body[..cut]).is_err(),
                "decode of a {}-byte prefix of a {}-byte body succeeded",
                cut,
                body.len()
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected(frame in arb_frame(), tail in proptest::collection::vec(any::<u8>(), 1..16)) {
        let mut body = encode_body(&frame);
        body.extend_from_slice(&tail);
        // A frame followed by extra bytes is malformed: accepting it would
        // let desynchronized streams slip through silently.
        prop_assert!(decode_body(&body).is_err());
    }

    #[test]
    fn traced_frames_round_trip_bit_exactly(frame in arb_traced_frame()) {
        let body = encode_body(&frame);
        let back = decode_body(&body).expect("traced encoding must decode");
        prop_assert_eq!(encode_body(&back), body);
    }

    #[test]
    fn absent_trace_context_is_a_strict_prefix(frame in arb_traced_frame()) {
        // `None` encodes zero bytes: the untraced body is bit-identical to
        // the v1 layout, and the traced body is exactly it plus the
        // fixed-width extension. This is the wire-level back-compat
        // contract: an old peer decoding an untraced frame sees v1 bytes.
        let traced = encode_body(&frame);
        let bare = encode_body(&strip_trace(&frame));
        prop_assert_eq!(traced.len(), bare.len() + TRACE_EXT_LEN);
        prop_assert_eq!(&traced[..bare.len()], &bare[..]);
    }

    #[test]
    fn traced_prefixes_alias_only_the_bare_frame(frame in arb_traced_frame()) {
        // Every strict prefix of a traced body errors, EXCEPT the one that
        // drops exactly the extension — which must decode to the same
        // frame without its context (how an old build reads new bytes
        // after the length prefix is adjusted). No prefix may panic.
        let body = encode_body(&frame);
        let bare_len = body.len() - TRACE_EXT_LEN;
        for cut in 0..body.len() {
            match decode_body(&body[..cut]) {
                Ok(decoded) => {
                    prop_assert!(cut == bare_len, "only the extension-free cut may decode");
                    prop_assert_eq!(decoded, strip_trace(&frame));
                }
                Err(_) => prop_assert!(cut != bare_len, "the extension-free cut must decode"),
            }
        }
    }

    #[test]
    fn unknown_trace_flags_are_rejected(frame in arb_traced_frame(), bad_bits in 1u8..=127) {
        // flags is the second-to-last-25th byte: magic(1) flags(1)
        // trace_id(16) parent(8) from the tail. Any bit beyond bit 0 must
        // refuse the frame rather than round-trip lossily.
        let mut body = encode_body(&frame);
        let flags_at = body.len() - TRACE_EXT_LEN + 1;
        body[flags_at] |= bad_bits << 1;
        prop_assert!(matches!(decode_body(&body), Err(WireError::Malformed(_))));
    }

    #[test]
    fn traced_trailing_garbage_is_rejected(frame in arb_traced_frame(), tail in proptest::collection::vec(any::<u8>(), 1..16)) {
        // A tail after the extension shifts the remaining-length check off
        // the exact extension size, so the whole frame is refused.
        let mut body = encode_body(&frame);
        body.extend_from_slice(&tail);
        prop_assert!(decode_body(&body).is_err());
    }

    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Any result is fine; reaching it without a panic is the property.
        let _ = decode_body(&bytes);
    }

    #[test]
    fn random_streams_never_panic_read_frame(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut cur = Cursor::new(bytes);
        let _ = read_frame(&mut cur, MAX_FRAME_LEN);
    }

    #[test]
    fn oversized_length_prefix_is_refused_before_allocation(claim in MAX_FRAME_LEN + 1..u32::MAX) {
        // A stream claiming a huge frame must be refused after the 4-byte
        // prefix — without reading (or allocating) the claimed body. The
        // stream holds only the prefix, so any attempt to read the body
        // would surface as UnexpectedEof instead of TooLarge.
        let mut stream = Cursor::new(claim.to_le_bytes().to_vec());
        match read_frame(&mut stream, MAX_FRAME_LEN) {
            Err(WireError::TooLarge { claimed, cap }) => {
                assert_eq!(claimed, claim);
                assert_eq!(cap, MAX_FRAME_LEN);
                assert_eq!(stream.position(), 4, "nothing past the prefix may be consumed");
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }
}

/// Hand-crafted inflated counts: a chunk frame whose element count claims
/// more entries than the payload carries must be rejected by the
/// byte-budget check, not trusted as an allocation size.
#[test]
fn inflated_collection_counts_are_rejected() {
    let frame = Frame::ResultFlows {
        id: 1,
        flows: vec![(FlowId(3), 2.5)],
    };
    let mut body = encode_body(&frame);
    // Layout: type(1) id(8) count(4) entries... — inflate the count field.
    let count_at = 1 + 8;
    body[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(decode_body(&body), Err(WireError::Malformed(_))));

    let frame = Frame::ResultGaps {
        id: 1,
        gaps: vec![CoverageGap { from: 0, to: 9 }],
    };
    let mut body = encode_body(&frame);
    body[count_at..count_at + 4].copy_from_slice(&1_000_000u32.to_le_bytes());
    assert!(matches!(decode_body(&body), Err(WireError::Malformed(_))));
}

/// A truncated length prefix (connection died mid-prefix) is an I/O EOF,
/// not a panic.
#[test]
fn truncated_length_prefix_is_eof() {
    for n in 0..4 {
        let mut cur = Cursor::new(vec![0u8; n]);
        match read_frame(&mut cur, MAX_FRAME_LEN) {
            Err(WireError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof)
            }
            other => panic!("expected EOF for {n}-byte prefix, got {other:?}"),
        }
    }
}
