//! The query daemon: a fixed worker pool behind a bounded admission queue.
//!
//! Threading model (std-only, no async runtime):
//!
//! * one **acceptor** (the thread that called [`Server::run`]) polls the
//!   listener and enforces the connection cap;
//! * one lightweight **reader** thread per connection parses frames and
//!   *admits* requests — admission is where load shedding happens, so a
//!   slow query can never stall frame parsing;
//! * a fixed pool of **workers** executes queries. Live register state
//!   ([`AnalysisProgram`]) is shared immutably (`Arc`, wait-free reads);
//!   archive access is **sharded per worker** — each worker owns its own
//!   file handle and [`StoreReader`], so seeks never contend — with the
//!   [`DecodeCache`] shared across shards.
//!
//! Admission control never drops silently: a full admission queue, a
//! connection over its in-flight cap, or a connection refused at the
//! accept cap all answer with an explicit `Busy{retry_after}` frame and a
//! `pq_serve_shed_total` increment. Shutdown (a `ShutdownReq` frame or
//! [`ServerHandle::shutdown`]) stops accepting, drains queued queries
//! until a deadline, then answers the remainder with typed
//! `ShuttingDown` errors — in-flight work is never abandoned mid-write.

use crate::cache::DecodeCache;
use crate::wire::{
    self, chunk_counts, chunk_flows, chunk_gaps, metrics_update_frames, snapshot_to_samples,
    ErrorCode, Frame, HealthInfo, Request, ShardMap, ShardMapEntry, StreamResult, WireError,
    ENTRIES_PER_FRAME, MAX_FRAME_LEN, MAX_SPANS_PER_TRACE, MAX_TRACES_PER_DUMP, PROTOCOL_VERSION,
};
use pq_core::coefficient::Coefficients;
use pq_core::control::{AnalysisProgram, CoverageGap};
use pq_core::snapshot::QueryInterval;
use pq_packet::FlowId;
use pq_rtt::{RttReport, RTT_SEGMENT_KIND};
use pq_store::StoreReader;
use pq_stream::{Closed, Emit, Record as StreamRecord, RttAgg, Standing, TopKSummary};
use pq_telemetry::{
    delta, names, new_trace_id, provenance, to_prometheus, ActiveTrace, Counter, Gauge, Histogram,
    RegistrySnapshot, Telemetry, Trace, TraceClock, TraceContext,
};
use std::collections::{HashMap, VecDeque};
use std::fs::File;
use std::io::{self, BufReader, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread;
use std::time::{Duration, Instant};

/// Tuning knobs for the daemon. The defaults suit the test/bench scale;
/// `pqsim serve` exposes each as a flag.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Query worker threads (the pool executing queries).
    pub workers: usize,
    /// Bound on the admission queue; requests beyond it are shed.
    pub queue_cap: usize,
    /// Per-connection cap on queued + executing requests.
    pub inflight_per_conn: usize,
    /// Connections beyond this are refused with `Busy` at accept.
    pub max_conns: usize,
    /// Decoded-segment cache budget; 0 disables the cache.
    pub cache_bytes: u64,
    /// Backoff hint carried in `Busy` frames.
    pub retry_after_ms: u32,
    /// How long shutdown keeps draining queued queries before answering
    /// the rest with `ShuttingDown` errors.
    pub drain_deadline: Duration,
    /// Artificial per-query service delay, for load tests and the
    /// overload bench scenario. Zero in normal operation.
    pub work_delay: Duration,
    /// Cap on concurrent metrics subscriptions; further `MetricsSubscribe`
    /// requests are shed with `Busy`, like any other overload.
    pub max_subs: usize,
    /// Shard identity this daemon serves under (empty when unsharded).
    /// Carried in `HealthAck` and `ShardMapAck` so a router — or an
    /// operator watching a mixed fleet — can tell backends apart.
    pub shard: String,
    /// Enable the `pq-prof` continuous profiler at bind: scope timing
    /// turns on and the daemon exports `pq_prof_*` / `pq_lock_*` series
    /// on its metrics plane. Dump requests are answered either way —
    /// with an empty report when profiling never ran.
    pub prof: bool,
    /// Stack-sampling period in milliseconds; 0 leaves the sampler off
    /// (exact scope aggregation still runs when `prof` is set).
    pub prof_sample_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            queue_cap: 128,
            inflight_per_conn: 8,
            max_conns: 64,
            cache_bytes: 64 << 20,
            retry_after_ms: 50,
            drain_deadline: Duration::from_secs(5),
            work_delay: Duration::ZERO,
            max_subs: 16,
            shard: String::new(),
            prof: false,
            prof_sample_ms: 0,
        }
    }
}

/// What the server answers queries from.
#[derive(Default)]
pub struct Sources {
    /// Live analysis-program state (time-window and queue-monitor kinds).
    pub live: Option<Arc<AnalysisProgram>>,
    /// A `.pqa` archive path (replay kind). Opened once per worker.
    pub archive: Option<PathBuf>,
    /// Live RTT reports (the `rtt` query kind), typically one per port
    /// from an `RttHook` drain. RTT spill segments found in `archive`
    /// are loaded at bind time and served alongside these.
    pub rtt: Vec<RttReport>,
}

/// Pre-resolved `pq_serve_*` registry handles (one mutex hit at startup,
/// none per request).
struct Instruments {
    req_time_windows: Counter,
    req_queue_monitor: Counter,
    req_replay: Counter,
    req_rtt: Counter,
    req_metrics: Counter,
    req_health: Counter,
    req_subscribe: Counter,
    req_standing: Counter,
    err_time_windows: Counter,
    err_queue_monitor: Counter,
    err_replay: Counter,
    err_rtt: Counter,
    rtt_queries: Counter,
    shed: Counter,
    request_ns: Histogram,
    queue_depth: Gauge,
    connections: Counter,
    uptime_secs: Gauge,
    subscribers: Gauge,
    metric_updates: Counter,
    stream_subs: Gauge,
    stream_windows_closed: Counter,
    stream_late: Counter,
    stream_evictions_topk: Counter,
    stream_evictions_window: Counter,
    stream_results: Counter,
    plane: Telemetry,
}

impl Instruments {
    fn resolve(plane: &Telemetry) -> Instruments {
        let reg = plane.registry();
        let req = |kind| reg.counter(names::SERVE_REQUESTS, &[("kind", kind)]);
        let err = |kind| reg.counter(names::SERVE_ERRORS, &[("kind", kind)]);
        Instruments {
            req_time_windows: req("time_windows"),
            req_queue_monitor: req("queue_monitor"),
            req_replay: req("replay"),
            req_rtt: req("rtt"),
            req_metrics: req("metrics"),
            req_health: req("health"),
            req_subscribe: req("subscribe"),
            req_standing: req("standing"),
            err_time_windows: err("time_windows"),
            err_queue_monitor: err("queue_monitor"),
            err_replay: err("replay"),
            err_rtt: err("rtt"),
            rtt_queries: reg.counter(names::RTT_QUERIES, &[]),
            shed: reg.counter(names::SERVE_SHED, &[]),
            request_ns: reg.histogram(names::SERVE_REQUEST_NS, &[]),
            queue_depth: reg.gauge(names::SERVE_QUEUE_DEPTH, &[]),
            connections: reg.counter(names::SERVE_CONNECTIONS, &[]),
            uptime_secs: reg.gauge(names::SERVE_UPTIME, &[]),
            subscribers: reg.gauge(names::SERVE_SUBSCRIBERS, &[]),
            metric_updates: reg.counter(names::SERVE_METRIC_UPDATES, &[]),
            stream_subs: reg.gauge(names::STREAM_SUBSCRIPTIONS, &[]),
            stream_windows_closed: reg.counter(names::STREAM_WINDOWS_CLOSED, &[]),
            stream_late: reg.counter(names::STREAM_LATE_RECORDS, &[]),
            stream_evictions_topk: reg.counter(names::STREAM_EVICTIONS, &[("kind", "topk")]),
            stream_evictions_window: reg.counter(names::STREAM_EVICTIONS, &[("kind", "window")]),
            stream_results: reg.counter(names::STREAM_RESULTS, &[]),
            plane: plane.clone(),
        }
    }

    fn completed(&self, kind: &str) {
        match kind {
            "time_windows" => self.req_time_windows.inc(),
            "queue_monitor" => self.req_queue_monitor.inc(),
            "replay" => self.req_replay.inc(),
            "rtt" => self.req_rtt.inc(),
            "subscribe" => self.req_subscribe.inc(),
            "standing" => self.req_standing.inc(),
            "health" => self.req_health.inc(),
            _ => self.req_metrics.inc(),
        }
    }

    fn errored(&self, kind: &str) {
        match kind {
            "time_windows" => self.err_time_windows.inc(),
            "queue_monitor" => self.err_queue_monitor.inc(),
            "rtt" => self.err_rtt.inc(),
            _ => self.err_replay.inc(),
        }
    }
}

/// Per-connection shared state: the write half (serialized so streamed
/// responses never interleave) and the in-flight count.
struct Conn {
    stream: TcpStream,
    write: Mutex<()>,
    inflight: AtomicUsize,
}

impl Conn {
    /// Encode `frames` into one buffer and write it atomically with
    /// respect to other responses on this connection.
    fn send(&self, frames: &[Frame]) -> io::Result<()> {
        let mut buf = Vec::with_capacity(64);
        for f in frames {
            let body = wire::encode_body(f);
            buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
            buf.extend_from_slice(&body);
        }
        let _guard = self.write.lock().unwrap();
        use io::Write as _;
        (&self.stream).write_all(&buf)
    }
}

/// What a worker is being asked to do. Queries and metrics requests ride
/// the same admission queue so overload sheds them uniformly.
enum Work {
    /// A diagnosis query (time-windows, queue-monitor, replay), with the
    /// trace context the request carried (if any).
    Query(Request, Option<TraceContext>),
    /// One-shot full metrics snapshot over the wire.
    MetricsGet,
    /// Start a periodic metrics subscription on this connection.
    Subscribe {
        interval: Duration,
        max_updates: u32,
    },
}

impl Work {
    /// Instrumentation kind label (matches [`Instruments::completed`]).
    fn kind(&self) -> &'static str {
        match self {
            Work::Query(req, _) => req.kind(),
            Work::MetricsGet => "metrics",
            Work::Subscribe { .. } => "subscribe",
        }
    }
}

/// One admitted query waiting for (or held by) a worker.
struct Job {
    conn: Arc<Conn>,
    id: u64,
    work: Work,
    admitted: Instant,
}

/// One live metrics subscription, owned by the publisher thread.
struct Sub {
    conn: Arc<Conn>,
    id: u64,
    interval: Duration,
    /// Next due time as nanos since `Shared::started`.
    next_due_ns: u64,
    /// Updates left to send (`None` = unbounded).
    remaining: Option<u32>,
    seq: u64,
    /// Snapshot the previous update was computed against; updates carry
    /// only series that changed since, as absolute values.
    prev: RegistrySnapshot,
}

/// Bound on simultaneously open windows per standing subscription; the
/// oldest window is force-closed (and flagged `forced`) past it, so a
/// pathological sliding query cannot grow server state without bound.
const MAX_OPEN_WINDOWS: usize = 4096;

/// One live standing-query subscription, owned by the evaluator thread.
struct StreamSub {
    conn: Arc<Conn>,
    /// The registering request's id; every result frame echoes it.
    id: u64,
    /// Window operator state (watermark, open aggregates, accounting).
    state: Standing,
    /// Per-port read position into the live checkpoint log.
    cursors: HashMap<u16, usize>,
    /// Read position into the shared time-sorted RTT sample list.
    rtt_cursor: usize,
    /// Flow cap per result frame (clamped to [`ENTRIES_PER_FRAME`]).
    cap: usize,
    /// Fired windows left before the subscription ends (`None` =
    /// unbounded).
    remaining_windows: Option<u64>,
    /// End once the source is sealed and every window has closed.
    stop_after_seal: bool,
    seq: u64,
    /// Trace context the registration carried; sampled contexts get
    /// `window_close` / `emit` spans per serviced tick.
    trace: Option<TraceContext>,
}

struct Shared {
    config: ServeConfig,
    /// The bound listen address, rendered for `ShardMapAck`.
    local_addr: String,
    live: Option<Arc<AnalysisProgram>>,
    archive: Option<PathBuf>,
    cache: Option<DecodeCache>,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    /// Drain deadline as nanos since `started` (0 = not shutting down).
    drain_deadline_ns: AtomicU64,
    active_conns: AtomicUsize,
    /// Workers currently executing a job (not waiting on the queue).
    busy_workers: AtomicUsize,
    conns: Mutex<Vec<Weak<Conn>>>,
    /// Live metrics subscriptions, serviced by the publisher thread.
    subs: Mutex<Vec<Sub>>,
    /// Standing-query subscriptions, serviced by the evaluator thread.
    streams: Mutex<Vec<StreamSub>>,
    /// Canonical RTT reports (live hook output plus archive spill),
    /// the source for `rtt` queries. Immutable while serving.
    rtt: Vec<RttReport>,
    /// The reports' timestamped samples flattened into one
    /// `(t_ns, port, rtt_ns)` list, time-sorted: the RTT feed for the
    /// standing-query evaluator.
    rtt_samples: Vec<(u64, u16, u64)>,
    instruments: Instruments,
    started: Instant,
    /// Unix-epoch-anchored monotonic clock for trace-span timestamps —
    /// comparable across processes, so stitched timelines line up.
    trace_clock: TraceClock,
    /// Process name stamped on trace spans (`serve` or `serve:<shard>`).
    process: String,
}

impl Shared {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn initiate_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            let deadline = self.now_ns().saturating_add(
                u64::try_from(self.config.drain_deadline.as_nanos()).unwrap_or(u64::MAX),
            );
            self.drain_deadline_ns.store(deadline, Ordering::SeqCst);
        }
        self.queue_cv.notify_all();
    }

    fn past_drain_deadline(&self) -> bool {
        let d = self.drain_deadline_ns.load(Ordering::SeqCst);
        d != 0 && self.now_ns() > d
    }

    /// Refresh the uptime gauge so snapshots and expositions always carry
    /// a current value without a dedicated ticker.
    fn touch_uptime(&self) {
        self.instruments
            .uptime_secs
            .set(self.started.elapsed().as_secs());
    }

    /// Assemble the health answer from live counters — cheap enough to
    /// run inline on the reader thread, so health stays answerable even
    /// when every worker is wedged.
    fn health_info(&self) -> HealthInfo {
        let snap = self.instruments.plane.snapshot();
        let (version, commit) = provenance::build_info(&snap)
            .unwrap_or_else(|| ("unknown".to_string(), "unknown".to_string()));
        HealthInfo {
            uptime_ns: self.now_ns(),
            workers: self.config.workers.max(1) as u32,
            busy_workers: self.busy_workers.load(Ordering::SeqCst) as u32,
            queue_depth: self.queue.lock().unwrap().len() as u32,
            queue_cap: self.config.queue_cap as u32,
            active_conns: self.active_conns.load(Ordering::SeqCst) as u32,
            max_conns: self.config.max_conns as u32,
            subscribers: self.subs.lock().unwrap().len() as u32,
            draining: self.shutdown.load(Ordering::SeqCst),
            version,
            commit,
            shard: self.config.shard.clone(),
        }
    }

    /// A lone daemon's topology: a one-entry map describing itself.
    fn shard_map(&self) -> ShardMap {
        ShardMap {
            generation: 0,
            replication: 1,
            epoch_ns: 0,
            backends: vec![ShardMapEntry {
                shard: self.config.shard.clone(),
                addr: self.local_addr.clone(),
                healthy: !self.shutdown.load(Ordering::SeqCst),
            }],
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// A handle to a server running on a background thread.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    join: thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The bound address (useful with `:0` ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Drain and stop the server, blocking until it has exited.
    pub fn shutdown(self) -> io::Result<()> {
        self.shared.initiate_shutdown();
        self.join.join().expect("server thread panicked")
    }

    /// Abruptly terminate the server — the in-process analog of `SIGKILL`
    /// for chaos tests. No drain, no final subscriber updates: every
    /// connection socket is torn down immediately (peers see EOF/reset,
    /// exactly what a killed process's kernel would send), queued work is
    /// abandoned, and the acceptor exits.
    pub fn kill(self) -> io::Result<()> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // A deadline already in the past: any queued job a worker still
        // pops is answered with ShuttingDown into a dead socket.
        self.shared.drain_deadline_ns.store(1, Ordering::SeqCst);
        self.shared.subs.lock().unwrap().clear();
        self.shared.streams.lock().unwrap().clear();
        for conn in self.shared.conns.lock().unwrap().drain(..) {
            if let Some(conn) = conn.upgrade() {
                let _ = conn.stream.shutdown(Shutdown::Both);
            }
        }
        self.shared.queue_cv.notify_all();
        self.join.join().expect("server thread panicked")
    }
}

impl Server {
    /// Bind `addr` and prepare to serve `sources`. The archive (if any)
    /// is opened once here so a bad path fails at bind time, not on the
    /// first query.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        sources: Sources,
        config: ServeConfig,
        plane: &Telemetry,
    ) -> io::Result<Server> {
        let mut rtt = sources.rtt;
        if let Some(path) = &sources.archive {
            let file = File::open(path)?;
            let mut reader = StoreReader::open(BufReader::new(file))?;
            // Harvest RTT spill segments now: a corrupt spill fails at
            // bind time, like a bad archive path.
            let metas: Vec<_> = reader
                .segments()
                .iter()
                .filter(|s| s.kind == RTT_SEGMENT_KIND)
                .copied()
                .collect();
            for m in &metas {
                let body = reader.read_raw_body(m)?;
                let report = RttReport::decode(&body).map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("port {} rtt segment: {e}", m.port),
                    )
                })?;
                rtt.push(report);
            }
        }
        let mut rtt_samples: Vec<(u64, u16, u64)> = rtt
            .iter()
            .flat_map(|r| r.samples.iter().map(|s| (s.t_ns, r.port, s.rtt_ns)))
            .collect();
        rtt_samples.sort_unstable();
        // Surface the RTT data this daemon serves, in the same shape the
        // measuring hook publishes: the CI gate requires a
        // `pq_rtt_samples_total` floor, and watch alert rules evaluate
        // quantile predicates (`stat = "p99"`) over `pq_rtt_sample_ns`,
        // with the flow id as each sample's exemplar.
        for r in &rtt {
            if r.samples.is_empty() {
                continue;
            }
            let port_label = r.port.to_string();
            let labels = [("port", port_label.as_str())];
            let reg = plane.registry();
            let hist = reg.histogram(names::RTT_SAMPLE_NS, &labels);
            for s in &r.samples {
                hist.record_exemplar(s.rtt_ns, u128::from(s.flow));
            }
            reg.counter(names::RTT_SAMPLES, &labels)
                .add(r.samples.len() as u64);
        }
        // Profiling is process-global ("a process has one profile"),
        // but only the process-owning plane exports it — a fleet of
        // per-port planes merged downstream would double-count the
        // shared globals.
        if config.prof {
            pq_prof::set_enabled(true);
            plane.set_export_prof(true);
            if config.prof_sample_ms > 0 {
                pq_prof::start_sampler(Duration::from_millis(config.prof_sample_ms));
            }
        }
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_default();
        let cache = (config.cache_bytes > 0).then(|| DecodeCache::new(config.cache_bytes, plane));
        let process = if config.shard.is_empty() {
            "serve".to_string()
        } else {
            format!("serve:{}", config.shard)
        };
        let shared = Arc::new(Shared {
            local_addr,
            live: sources.live,
            archive: sources.archive,
            cache,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            drain_deadline_ns: AtomicU64::new(0),
            active_conns: AtomicUsize::new(0),
            busy_workers: AtomicUsize::new(0),
            conns: Mutex::new(Vec::new()),
            subs: Mutex::new(Vec::new()),
            streams: Mutex::new(Vec::new()),
            rtt,
            rtt_samples,
            instruments: Instruments::resolve(plane),
            started: Instant::now(),
            trace_clock: TraceClock::new(),
            process,
            config,
        });
        Ok(Server { listener, shared })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared decode cache, if enabled (benches snapshot its stats).
    pub fn cache(&self) -> Option<&DecodeCache> {
        self.shared.cache.as_ref()
    }

    /// Run the accept loop on this thread until shutdown, then drain.
    pub fn run(self) -> io::Result<()> {
        let shared = self.shared;
        let mut workers = Vec::with_capacity(shared.config.workers);
        for w in 0..shared.config.workers.max(1) {
            let shared = Arc::clone(&shared);
            workers.push(
                thread::Builder::new()
                    .name(format!("pq-serve-worker-{w}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        let publisher = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("pq-serve-publisher".into())
                .spawn(move || publisher_loop(&shared))?
        };
        let evaluator = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("pq-serve-stream".into())
                .spawn(move || stream_loop(&shared))?
        };
        while !shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    shared.instruments.connections.inc();
                    accept_connection(&shared, stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        for w in workers {
            let _ = w.join();
        }
        let _ = publisher.join();
        let _ = evaluator.join();
        // Queries are drained; close every subscription with one final
        // `last` update so watchers see the post-drain counter values
        // instead of a dropped stream.
        drain_subscribers(&shared);
        drain_stream_subs(&shared);
        // Workers are done; release any reader threads still blocked on
        // their sockets.
        for conn in shared.conns.lock().unwrap().drain(..) {
            if let Some(conn) = conn.upgrade() {
                let _ = conn.stream.shutdown(Shutdown::Both);
            }
        }
        Ok(())
    }

    /// Run on a background thread, returning a shutdown handle.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shared = Arc::clone(&self.shared);
        let join = thread::Builder::new()
            .name("pq-serve-acceptor".into())
            .spawn(move || self.run())?;
        Ok(ServerHandle { shared, addr, join })
    }
}

/// Admit a fresh connection: enforce the connection cap, then hand the
/// socket to a reader thread.
fn accept_connection(shared: &Arc<Shared>, stream: TcpStream) {
    // Responses are small framed writes; Nagle would stall consecutive
    // ones behind delayed ACKs.
    let _ = stream.set_nodelay(true);
    let conn = Arc::new(Conn {
        stream,
        write: Mutex::new(()),
        inflight: AtomicUsize::new(0),
    });
    if shared.active_conns.load(Ordering::SeqCst) >= shared.config.max_conns {
        shared.instruments.shed.inc();
        let _ = conn.send(&[Frame::Busy {
            id: 0,
            retry_after_ms: shared.config.retry_after_ms,
        }]);
        let _ = conn.stream.shutdown(Shutdown::Both);
        return;
    }
    shared.active_conns.fetch_add(1, Ordering::SeqCst);
    shared.conns.lock().unwrap().push(Arc::downgrade(&conn));
    let shared = Arc::clone(shared);
    let _ = thread::Builder::new()
        .name("pq-serve-conn".into())
        .spawn(move || {
            let _ = connection_loop(&shared, &conn);
            let _ = conn.stream.shutdown(Shutdown::Both);
            shared.active_conns.fetch_sub(1, Ordering::SeqCst);
        });
}

/// Parse and admit frames from one connection until EOF or a protocol
/// violation. Blocking reads keep this thread cheap; all real work
/// happens in the pool.
fn connection_loop(shared: &Arc<Shared>, conn: &Arc<Conn>) -> io::Result<()> {
    // The socket was set non-blocking by accept() inheritance on some
    // platforms; force blocking for the reader.
    conn.stream.set_nonblocking(false)?;
    let mut read = (&conn.stream).take(u64::MAX); // plain Read adapter
                                                  // Handshake: the first frame must be Hello.
    let max_frame = match wire::read_frame(&mut read, MAX_FRAME_LEN) {
        Ok(Frame::Hello { version, max_frame }) => {
            if version == 0 {
                let _ = conn.send(&[protocol_error(0, ErrorCode::Unsupported, "version 0")]);
                return Ok(());
            }
            let version = version.min(PROTOCOL_VERSION);
            let max_frame = max_frame.clamp(1024, MAX_FRAME_LEN);
            conn.send(&[Frame::HelloAck { version, max_frame }])?;
            max_frame
        }
        Ok(_) => {
            let _ = conn.send(&[protocol_error(
                0,
                ErrorCode::Protocol,
                "expected Hello as the first frame",
            )]);
            return Ok(());
        }
        Err(e) => {
            let _ = conn.send(&[protocol_error(0, ErrorCode::Protocol, &e.to_string())]);
            return Ok(());
        }
    };

    loop {
        let frame = match wire::read_frame(&mut read, max_frame) {
            Ok(f) => f,
            Err(WireError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(WireError::Io(e)) => return Err(e),
            Err(e) => {
                // Malformed or oversized: the stream is no longer framed;
                // answer (best effort) and close.
                let _ = conn.send(&[protocol_error(0, ErrorCode::Protocol, &e.to_string())]);
                return Ok(());
            }
        };
        match frame {
            Frame::Request { id, req, trace } => admit(shared, conn, id, Work::Query(req, trace)),
            Frame::MetricsReq { id } => {
                shared.instruments.req_metrics.inc();
                shared.touch_uptime();
                let text = to_prometheus(&shared.instruments.plane.snapshot());
                let _ = conn.send(&[Frame::MetricsText { id, text }]);
            }
            Frame::HealthReq { id } => {
                // Answered inline on the reader thread: health must keep
                // working when the pool is saturated or draining.
                shared.instruments.req_health.inc();
                shared.touch_uptime();
                let health = shared.health_info();
                let _ = conn.send(&[Frame::HealthAck { id, health }]);
            }
            Frame::ShardMapReq { id } => {
                // Inline like health: topology must stay answerable under
                // load so a router's probe loop never starves.
                let map = shared.shard_map();
                let _ = conn.send(&[Frame::ShardMapAck { id, map }]);
            }
            Frame::MetricsGet { id } => admit(shared, conn, id, Work::MetricsGet),
            Frame::MetricsSubscribe {
                id,
                interval_ms,
                max_updates,
            } => {
                // Echo the *effective* cadence before any update — the
                // clamp below used to be silent, so a watcher asking for
                // 1ms believed it was getting 1ms while the server sent
                // 10ms. The ack precedes the first update because both
                // are sent through the connection's serialized writer.
                let effective_ms = interval_ms.clamp(10, 60_000);
                let _ = conn.send(&[Frame::SubscribeAck {
                    id,
                    interval_ms: effective_ms,
                    max_updates,
                }]);
                let interval = Duration::from_millis(u64::from(effective_ms));
                admit(
                    shared,
                    conn,
                    id,
                    Work::Subscribe {
                        interval,
                        max_updates,
                    },
                );
            }
            Frame::StandingQueryReq {
                id,
                cap,
                max_windows,
                stop_after_seal,
                query,
                trace,
            } => register_standing(
                shared,
                conn,
                id,
                cap,
                max_windows,
                stop_after_seal,
                &query,
                trace,
            ),
            Frame::TraceDumpReq { id, max, slow_only } => {
                // Inline like health: a trace dump is a diagnostic read and
                // must keep working when the worker pool is saturated — that
                // saturation is usually exactly what the caller is debugging.
                let traces = shared.instruments.plane.traces();
                let max = (max as usize).clamp(1, MAX_TRACES_PER_DUMP);
                let mut out: Vec<Trace> = if slow_only {
                    traces.slowest(max)
                } else {
                    let mut recent = traces.recent();
                    recent.reverse(); // newest first
                    recent.truncate(max);
                    recent
                };
                for t in &mut out {
                    t.spans.truncate(MAX_SPANS_PER_TRACE);
                }
                let _ = conn.send(&[Frame::TraceDumpAck { id, traces: out }]);
            }
            Frame::ProfileDumpReq { id } => {
                // Inline like a trace dump: a profile read is a diagnostic
                // and must keep working when the worker pool is saturated.
                // Serving it here also keeps the dump path outside the
                // `serve/worker_exec` scope, so a dump never perturbs the
                // numbers it reports.
                let bytes = pq_prof::ProfileReport::capture().encode();
                let _ = conn.send(&wire::prof_result_frames(id, &bytes));
            }
            Frame::StandingQueryCancel { id, sub } => cancel_standing(shared, conn, id, sub),
            Frame::ShutdownReq { id } => {
                let _ = conn.send(&[Frame::ShutdownAck { id }]);
                shared.initiate_shutdown();
            }
            Frame::Hello { .. } => {
                let _ = conn.send(&[protocol_error(0, ErrorCode::Protocol, "duplicate Hello")]);
                return Ok(());
            }
            _ => {
                let _ = conn.send(&[protocol_error(
                    0,
                    ErrorCode::Protocol,
                    "server-to-client frame received from client",
                )]);
                return Ok(());
            }
        }
    }
}

fn protocol_error(id: u64, code: ErrorCode, message: &str) -> Frame {
    Frame::Error {
        id,
        code,
        gaps: Vec::new(),
        message: message.to_string(),
    }
}

/// Admission control: shed (never block, never silently drop) or enqueue.
fn admit(shared: &Arc<Shared>, conn: &Arc<Conn>, id: u64, work: Work) {
    let busy = |frame_id| {
        shared.instruments.shed.inc();
        let _ = conn.send(&[Frame::Busy {
            id: frame_id,
            retry_after_ms: shared.config.retry_after_ms,
        }]);
    };
    if shared.shutdown.load(Ordering::SeqCst) {
        let _ = conn.send(&[protocol_error(id, ErrorCode::ShuttingDown, "draining")]);
        return;
    }
    if conn.inflight.load(Ordering::SeqCst) >= shared.config.inflight_per_conn {
        busy(id);
        return;
    }
    // Subscriptions hold server-side state, so they carry their own cap
    // on top of the queue bound.
    if matches!(work, Work::Subscribe { .. })
        && shared.subs.lock().unwrap().len() >= shared.config.max_subs
    {
        busy(id);
        return;
    }
    let mut queue = shared.queue.lock().unwrap();
    if queue.len() >= shared.config.queue_cap {
        drop(queue);
        busy(id);
        return;
    }
    conn.inflight.fetch_add(1, Ordering::SeqCst);
    queue.push_back(Job {
        conn: Arc::clone(conn),
        id,
        work,
        admitted: Instant::now(),
    });
    shared.instruments.queue_depth.set(queue.len() as u64);
    drop(queue);
    shared.queue_cv.notify_one();
}

/// One worker: pop, execute, respond, repeat. Exits when shutdown is set
/// and the queue has drained.
fn worker_loop(shared: &Arc<Shared>) {
    // This worker's archive shard: its own handle, opened lazily.
    let mut reader: Option<StoreReader<BufReader<File>>> = None;
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    shared.instruments.queue_depth.set(queue.len() as u64);
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (q, _) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(100))
                    .unwrap();
                queue = q;
            }
        };
        let Some(job) = job else { return };
        if shared.shutdown.load(Ordering::SeqCst) && shared.past_drain_deadline() {
            let _ = job.conn.send(&[protocol_error(
                job.id,
                ErrorCode::ShuttingDown,
                "drain deadline passed",
            )]);
            job.conn.inflight.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        shared.busy_workers.fetch_add(1, Ordering::SeqCst);
        // Mark the queue→worker handoff before the simulated work delay so
        // the delay is attributed to execution, not admission wait.
        let picked_ns = shared.trace_clock.now_ns();
        let wait_ns = u64::try_from(job.admitted.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if !shared.config.work_delay.is_zero() {
            thread::sleep(shared.config.work_delay);
        }
        let kind = job.work.kind();
        match job.work {
            Work::Query(req, trace) => {
                let started_ns = shared.now_ns();
                let port = req.port();
                let traces = shared.instruments.plane.traces();
                // Continue the propagated context, or originate a root here
                // so locally-issued queries are traceable too. The echo is
                // the context exactly as the request carried it — old
                // clients that sent none get none back.
                let echo = trace;
                let mut tracer = if traces.is_enabled() {
                    let ctx = trace.unwrap_or_else(|| {
                        let tid = new_trace_id();
                        TraceContext::root(tid, traces.should_sample(tid))
                    });
                    Some(ActiveTrace::new(ctx, &shared.process))
                } else {
                    None
                };
                // Reserve ids up front: execute() parents segment_decode
                // under worker_exec before either interval is closed.
                let root_span = tracer.as_mut().map(ActiveTrace::reserve).unwrap_or(0);
                let exec_span = tracer.as_mut().map(ActiveTrace::reserve).unwrap_or(0);
                // The profiling scope closes with this block — before the
                // answer is sent below — so a client that reads its result
                // and immediately pulls a profile dump sees its own query's
                // time (the same read-your-writes contract the request
                // counters keep).
                let frames = {
                    pq_prof::scope!("serve/worker_exec");
                    execute(
                        shared,
                        &mut reader,
                        job.id,
                        req,
                        echo,
                        tracer.as_mut(),
                        exec_span,
                    )
                };
                let exec_end_ns = shared.trace_clock.now_ns();
                // Count before answering: a synchronous client that reads
                // its result and immediately asks for metrics must see its
                // own query in the counters (read-your-writes; the
                // get-vs-prom consistency test relies on it).
                let latency = u64::try_from(job.admitted.elapsed().as_nanos()).unwrap_or(u64::MAX);
                let slow = traces.is_slow(latency);
                let committed = tracer
                    .as_ref()
                    .map(|t| t.ctx().sampled || slow)
                    .unwrap_or(false);
                if committed {
                    let tid = tracer.as_ref().map(|t| t.ctx().trace_id).unwrap_or(0);
                    shared.instruments.request_ns.record_exemplar(latency, tid);
                } else {
                    shared.instruments.request_ns.record(latency);
                }
                let errored = matches!(frames.first(), Some(Frame::Error { .. }));
                if errored {
                    shared.instruments.errored(kind);
                } else {
                    shared.instruments.completed(kind);
                }
                if let Some(mut t) = tracer {
                    let ctx = t.ctx();
                    let admit_ns = picked_ns.saturating_sub(wait_ns);
                    t.record(
                        names::SPAN_ADMISSION_WAIT,
                        root_span,
                        admit_ns,
                        picked_ns,
                        "",
                    );
                    t.record_with_id(
                        exec_span,
                        names::SPAN_WORKER_EXEC,
                        root_span,
                        picked_ns,
                        exec_end_ns,
                        if errored { "error" } else { "ok" },
                    );
                    t.record_with_id(
                        root_span,
                        names::SPAN_SERVE_REQUEST,
                        ctx.parent_span,
                        admit_ns,
                        exec_end_ns,
                        kind,
                    );
                    if committed {
                        traces.commit(t.finish(root_span, latency, slow));
                    }
                }
                let sent = job.conn.send(&frames);
                job.conn.inflight.fetch_sub(1, Ordering::SeqCst);
                if shared.instruments.plane.tracing_enabled() {
                    shared.instruments.plane.spans().record(
                        names::SPAN_SERVE_REQUEST,
                        started_ns,
                        shared.now_ns(),
                        u32::from(port),
                    );
                }
                let _ = sent;
            }
            Work::MetricsGet => {
                shared.touch_uptime();
                let snap = shared.instruments.plane.snapshot();
                let frames = metrics_update_frames(
                    job.id,
                    0,
                    shared.now_ns(),
                    true,
                    &snapshot_to_samples(&snap),
                );
                let latency = u64::try_from(job.admitted.elapsed().as_nanos()).unwrap_or(u64::MAX);
                shared.instruments.request_ns.record(latency);
                shared.instruments.completed(kind);
                let _ = job.conn.send(&frames);
                job.conn.inflight.fetch_sub(1, Ordering::SeqCst);
            }
            Work::Subscribe {
                interval,
                max_updates,
            } => {
                // The first update carries the full snapshot so the client
                // can fold later deltas onto a complete baseline.
                shared.touch_uptime();
                let snap = shared.instruments.plane.snapshot();
                let now = shared.now_ns();
                let last = max_updates == 1;
                let frames =
                    metrics_update_frames(job.id, 0, now, last, &snapshot_to_samples(&snap));
                shared.instruments.metric_updates.inc();
                shared.instruments.completed(kind);
                let sent = job.conn.send(&frames);
                job.conn.inflight.fetch_sub(1, Ordering::SeqCst);
                if sent.is_ok() && !last {
                    let interval_ns = u64::try_from(interval.as_nanos()).unwrap_or(u64::MAX);
                    let mut subs = shared.subs.lock().unwrap();
                    subs.push(Sub {
                        conn: job.conn,
                        id: job.id,
                        interval,
                        next_due_ns: now.saturating_add(interval_ns),
                        // `checked_sub` maps the 0 = unbounded sentinel to
                        // `None` in one step.
                        remaining: max_updates.checked_sub(1),
                        seq: 1,
                        prev: snap,
                    });
                    shared.instruments.subscribers.set(subs.len() as u64);
                }
            }
        }
        shared.busy_workers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The publisher thread: wakes every few milliseconds, and for each due
/// subscription sends the series that changed since its previous update
/// (absolute values, so a missed frame self-heals on the next one).
/// Exits when shutdown is initiated; `drain_subscribers` then closes the
/// streams.
fn publisher_loop(shared: &Arc<Shared>) {
    const TICK: Duration = Duration::from_millis(10);
    while !shared.shutdown.load(Ordering::SeqCst) {
        thread::sleep(TICK);
        let now = shared.now_ns();
        {
            let subs = shared.subs.lock().unwrap();
            if !subs.iter().any(|s| s.next_due_ns <= now) {
                continue;
            }
        }
        shared.touch_uptime();
        let snap = shared.instruments.plane.snapshot();
        let mut subs = shared.subs.lock().unwrap();
        subs.retain_mut(|sub| {
            if sub.next_due_ns > now {
                return true;
            }
            let changed = delta::changed(&sub.prev, &snap);
            let last = sub.remaining == Some(1);
            let frames =
                metrics_update_frames(sub.id, sub.seq, now, last, &snapshot_to_samples(&changed));
            if sub.conn.send(&frames).is_err() {
                return false;
            }
            shared.instruments.metric_updates.inc();
            sub.prev = snap.clone();
            sub.seq += 1;
            if let Some(r) = &mut sub.remaining {
                *r -= 1;
                if *r == 0 {
                    return false;
                }
            }
            let interval_ns = u64::try_from(sub.interval.as_nanos()).unwrap_or(u64::MAX);
            sub.next_due_ns = now.saturating_add(interval_ns);
            true
        });
        shared.instruments.subscribers.set(subs.len() as u64);
    }
}

/// Send every remaining subscription one final `last` update carrying the
/// post-drain counter values, then forget them all.
fn drain_subscribers(shared: &Arc<Shared>) {
    shared.touch_uptime();
    let snap = shared.instruments.plane.snapshot();
    let now = shared.now_ns();
    let mut subs = shared.subs.lock().unwrap();
    for sub in subs.drain(..) {
        let changed = delta::changed(&sub.prev, &snap);
        let frames =
            metrics_update_frames(sub.id, sub.seq, now, true, &snapshot_to_samples(&changed));
        if sub.conn.send(&frames).is_ok() {
            shared.instruments.metric_updates.inc();
        }
    }
    shared.instruments.subscribers.set(0);
}

/// Register a standing continuous query on this connection. Runs inline
/// on the reader thread — parsing and validation are cheap, and the ack
/// must be on the wire before the evaluator can emit the first result
/// (it only sees the subscription after this function pushes it).
#[allow(clippy::too_many_arguments)]
fn register_standing(
    shared: &Arc<Shared>,
    conn: &Arc<Conn>,
    id: u64,
    cap: u32,
    max_windows: u32,
    stop_after_seal: bool,
    query: &str,
    trace: Option<TraceContext>,
) {
    if shared.shutdown.load(Ordering::SeqCst) {
        let _ = conn.send(&[protocol_error(id, ErrorCode::ShuttingDown, "draining")]);
        return;
    }
    let Some(live) = &shared.live else {
        let _ = conn.send(&[protocol_error(
            id,
            ErrorCode::NoLiveState,
            "standing queries evaluate over live state",
        )]);
        return;
    };
    let parsed = match pq_stream::parse(query) {
        Ok(q) => q,
        Err(e) => {
            let _ = conn.send(&[protocol_error(id, ErrorCode::BadQuery, &e.to_string())]);
            return;
        }
    };
    if let pq_stream::PortSel::One(port) = parsed.port {
        if !live.is_active(port) {
            let _ = conn.send(&[protocol_error(
                id,
                ErrorCode::UnknownPort,
                &format!("port {port} not activated"),
            )]);
            return;
        }
    }
    let mut streams = shared.streams.lock().unwrap();
    // Standing subscriptions hold evaluator state, so they share the
    // metrics-subscription cap and shed with Busy beyond it.
    if streams.len() >= shared.config.max_subs {
        shared.instruments.shed.inc();
        let _ = conn.send(&[Frame::Busy {
            id,
            retry_after_ms: shared.config.retry_after_ms,
        }]);
        return;
    }
    let cap = (cap as usize).clamp(1, ENTRIES_PER_FRAME);
    // The ack echoes the canonical rendering of the parsed query and the
    // effective cap, so the client knows exactly what was registered.
    if conn
        .send(&[Frame::StandingQueryAck {
            id,
            cap: cap as u32,
            query: parsed.to_string(),
            trace,
        }])
        .is_err()
    {
        return;
    }
    shared.instruments.completed("standing");
    streams.push(StreamSub {
        conn: Arc::clone(conn),
        id,
        state: Standing::new(parsed, MAX_OPEN_WINDOWS),
        cursors: HashMap::new(),
        rtt_cursor: 0,
        cap,
        remaining_windows: (max_windows > 0).then(|| u64::from(max_windows)),
        stop_after_seal,
        seq: 0,
        trace,
    });
    shared.instruments.stream_subs.set(streams.len() as u64);
}

/// Cancel a standing subscription: unregister it and answer with a final
/// `last=true` progress frame so the client's stream ends cleanly.
fn cancel_standing(shared: &Arc<Shared>, conn: &Arc<Conn>, id: u64, sub_id: u64) {
    let mut streams = shared.streams.lock().unwrap();
    let Some(pos) = streams
        .iter()
        .position(|s| s.id == sub_id && Arc::ptr_eq(&s.conn, conn))
    else {
        let _ = conn.send(&[protocol_error(
            id,
            ErrorCode::Protocol,
            "unknown standing subscription",
        )]);
        return;
    };
    let mut sub = streams.remove(pos);
    shared.instruments.stream_subs.set(streams.len() as u64);
    drop(streams);
    let frame = progress_frame(&mut sub, true);
    let _ = sub.conn.send(&[frame]);
}

/// A window-less progress frame: carries the subscription's watermark
/// (and the `last` flag when the stream is ending). `to == 0` marks it —
/// real windows always have `to > 0` because sizes are positive.
fn progress_frame(sub: &mut StreamSub, last: bool) -> Frame {
    sub.seq += 1;
    Frame::StandingQueryResult {
        id: sub.id,
        result: Box::new(StreamResult {
            seq: sub.seq,
            watermark_ns: sub.state.watermark(),
            port: 0,
            from: 0,
            to: 0,
            fired: false,
            forced: false,
            degraded: false,
            last,
            max: 0,
            min: u64::MAX,
            sum: 0,
            count: 0,
            last_t: 0,
            last_depth: 0,
            flows: Vec::new(),
            evictions: 0,
            evicted_weight: 0.0,
            gaps: Vec::new(),
            rtt: RttAgg::default(),
        }),
    }
}

/// The standing-query evaluator: one thread servicing every stream
/// subscription, mirroring the publisher's cadence. Each tick feeds new
/// checkpoint records through the window operators, advances watermarks,
/// and pushes closed windows to their clients.
fn stream_loop(shared: &Arc<Shared>) {
    const TICK: Duration = Duration::from_millis(10);
    while !shared.shutdown.load(Ordering::SeqCst) {
        thread::sleep(TICK);
        let Some(live) = &shared.live else { continue };
        let mut streams = shared.streams.lock().unwrap();
        if streams.is_empty() {
            continue;
        }
        streams.retain_mut(|sub| service_stream_sub(shared, live, sub));
        shared.instruments.stream_subs.set(streams.len() as u64);
    }
}

/// Service one subscription for one tick. Returns whether to keep it.
fn service_stream_sub(shared: &Arc<Shared>, live: &AnalysisProgram, sub: &mut StreamSub) -> bool {
    // Gather every checkpoint past this subscription's cursors, then
    // feed them through the window operator in global timestamp order:
    // each port's log is time-sorted, but draining whole ports one
    // after another would present a multi-port subscription with a
    // wildly out-of-order stream and spuriously drop the later ports'
    // history as late.
    let ports = match sub.state.pinned_port() {
        Some(p) => vec![p],
        None => live.ports(),
    };
    // Each entry: `(t_ns, port, rtt_sample, depth)` — depth records and
    // RTT samples share one time-ordered stream so a single watermark
    // governs both.
    let mut batch: Vec<(u64, u16, Option<u64>, u64)> = Vec::new();
    for port in ports {
        let cps = live.checkpoints(port);
        let cur = sub.cursors.entry(port).or_insert(0);
        while *cur < cps.len() {
            let cp = &cps[*cur];
            *cur += 1;
            let depth = cp.queue_monitor().map(|q| u64::from(q.top)).unwrap_or(0);
            batch.push((cp.frozen_at, port, None, depth));
        }
    }
    while sub.rtt_cursor < shared.rtt_samples.len() {
        let (t_ns, port, rtt_ns) = shared.rtt_samples[sub.rtt_cursor];
        sub.rtt_cursor += 1;
        batch.push((t_ns, port, Some(rtt_ns), 0));
    }
    batch.sort_by_key(|&(t_ns, port, rtt, depth)| (t_ns, port, rtt.is_some(), depth, rtt));
    for (t_ns, port, rtt, depth) in batch {
        let on_time = match rtt {
            Some(v) => sub.state.push_rtt(t_ns, port, v),
            None => sub.state.push(StreamRecord { t_ns, port, depth }),
        };
        if !on_time {
            shared.instruments.stream_late.inc();
        }
    }
    // The live program is immutable while serving (the trace ran before
    // bind), so with every cursor at the end of its checkpoint log the
    // source is proven exhausted: emit the bounded-source final
    // watermark, closing all remaining windows.
    if !sub.state.sealed() {
        sub.state.seal();
    }
    // A sampled standing query gets per-tick spans: `window_close` around
    // materialization, `emit` around the send. Only ticks that produced
    // frames commit a trace, so an idle subscription stays silent.
    let traces = shared.instruments.plane.traces();
    let mut tracer = match sub.trace {
        Some(ctx) if ctx.sampled && traces.is_enabled() => {
            Some(ActiveTrace::new(ctx, &shared.process))
        }
        _ => None,
    };
    let close_start_ns = shared.trace_clock.now_ns();
    let mut frames = Vec::new();
    let mut ended = false;
    let mut closed = 0u64;
    for close in sub.state.drain() {
        // One scope entry per closed window, so an idle tick records
        // nothing: calls == windows materialized.
        pq_prof::scope!("stream/window_close");
        shared.instruments.stream_windows_closed.inc();
        closed += 1;
        if close.forced {
            shared.instruments.stream_evictions_window.inc();
        }
        let mut result = close_to_result(shared, live, sub, &close);
        if close.fired {
            shared.instruments.stream_results.inc();
            if let Some(r) = &mut sub.remaining_windows {
                *r -= 1;
                if *r == 0 {
                    result.last = true;
                    ended = true;
                }
            }
        }
        frames.push(Frame::StandingQueryResult {
            id: sub.id,
            result: Box::new(result),
        });
        if ended {
            break;
        }
    }
    if !ended && sub.state.sealed() && sub.stop_after_seal {
        frames.push(progress_frame(sub, true));
        ended = true;
    }
    if frames.is_empty() {
        return true;
    }
    let emit_start_ns = shared.trace_clock.now_ns();
    let sent = sub.conn.send(&frames);
    if let Some(mut t) = tracer.take() {
        let ctx = t.ctx();
        let end_ns = shared.trace_clock.now_ns();
        let root = t.record(
            names::SPAN_WINDOW_CLOSE,
            ctx.parent_span,
            close_start_ns,
            emit_start_ns,
            &closed.to_string(),
        );
        t.record(
            names::SPAN_EMIT,
            ctx.parent_span,
            emit_start_ns,
            end_ns,
            &frames.len().to_string(),
        );
        let duration = end_ns.saturating_sub(close_start_ns);
        traces.commit(t.finish(root, duration, false));
    }
    if sent.is_err() {
        return false;
    }
    !ended
}

/// Materialize one closed window into its wire result. Fired windows
/// with `emit flows` run the *same* time-window query the one-shot path
/// runs — `[from, to)` maps to the inclusive interval `[from, to-1]` —
/// so a standing answer is bit-identical to an offline query over the
/// same closed window.
fn close_to_result(
    shared: &Arc<Shared>,
    live: &AnalysisProgram,
    sub: &mut StreamSub,
    close: &Closed,
) -> StreamResult {
    sub.seq += 1;
    let mut flows = Vec::new();
    let mut gaps = Vec::new();
    let mut degraded = close.forced;
    let mut evictions = 0u64;
    let mut evicted_weight = 0.0f64;
    if close.fired && sub.state.query.emit == Emit::Flows {
        let interval = QueryInterval::new(close.key.from, close.key.to - 1);
        let answer = live.query_time_windows(close.key.port, interval);
        degraded |= answer.degraded;
        gaps = answer.gaps;
        let mut topk = TopKSummary::new(sub.state.summary_cap(sub.cap));
        for (flow, est) in answer.estimates.ranked() {
            topk.offer(flow.0, est);
        }
        evictions = topk.evictions;
        evicted_weight = topk.evicted_weight;
        if evictions > 0 {
            // The summary no longer holds every flow: an honest answer
            // must say so, like any other coverage caveat.
            degraded = true;
            shared.instruments.stream_evictions_topk.add(evictions);
        }
        flows = topk
            .ranked(sub.state.query.top_k)
            .into_iter()
            .map(|(f, c)| (FlowId(f), c))
            .collect();
    }
    StreamResult {
        seq: sub.seq,
        watermark_ns: sub.state.watermark(),
        port: close.key.port,
        from: close.key.from,
        to: close.key.to,
        fired: close.fired,
        forced: close.forced,
        degraded,
        last: false,
        max: close.agg.max,
        min: close.agg.min,
        sum: close.agg.sum,
        count: close.agg.count,
        last_t: close.agg.last_t,
        last_depth: close.agg.last_depth,
        flows,
        evictions,
        evicted_weight,
        gaps,
        rtt: close.rtt,
    }
}

/// Close every standing subscription with a final `last` progress frame,
/// mirroring [`drain_subscribers`].
fn drain_stream_subs(shared: &Arc<Shared>) {
    let mut streams = shared.streams.lock().unwrap();
    for mut sub in streams.drain(..) {
        let frame = progress_frame(&mut sub, true);
        let _ = sub.conn.send(&[frame]);
    }
    shared.instruments.stream_subs.set(0);
}

/// Execute one query into its response frame sequence.
///
/// `echo` is the trace context exactly as the request carried it — it is
/// reflected on the answer header so the caller can match answers to the
/// trace it started. `tracer`/`exec_span` let the archive path attribute
/// segment-decode time as a child of the worker-exec span.
fn execute(
    shared: &Arc<Shared>,
    reader: &mut Option<StoreReader<BufReader<File>>>,
    id: u64,
    req: Request,
    echo: Option<TraceContext>,
    tracer: Option<&mut ActiveTrace>,
    exec_span: u64,
) -> Vec<Frame> {
    match req {
        Request::TimeWindows { port, from, to } => {
            let Some(live) = &shared.live else {
                return vec![protocol_error(id, ErrorCode::NoLiveState, "")];
            };
            if !live.is_active(port) {
                return vec![protocol_error(
                    id,
                    ErrorCode::UnknownPort,
                    &format!("port {port} not activated"),
                )];
            }
            let interval = QueryInterval::new(from, to);
            let result = live.query_time_windows(port, interval);
            let checkpoints = live.checkpoints(port).len() as u64;
            result_frames(
                id,
                checkpoints,
                result.estimates.ranked(),
                result.gaps,
                result.degraded,
                echo,
            )
        }
        Request::QueueMonitor { port, at } => {
            let Some(live) = &shared.live else {
                return vec![protocol_error(id, ErrorCode::NoLiveState, "")];
            };
            if !live.is_active(port) {
                return vec![protocol_error(
                    id,
                    ErrorCode::UnknownPort,
                    &format!("port {port} not activated"),
                )];
            }
            let Some(ans) = live.query_queue_monitor(port, at) else {
                return vec![protocol_error(
                    id,
                    ErrorCode::NoData,
                    "no queue-monitor checkpoint stored",
                )];
            };
            let mut counts: Vec<(FlowId, u64)> = ans.culprit_counts().into_iter().collect();
            counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            let mut frames = vec![Frame::MonitorHeader {
                id,
                degraded: ans.degraded,
                frozen_at: ans.frozen_at,
                staleness: ans.staleness,
                counts: counts.len() as u32,
                gaps: ans.gaps.len() as u32,
                trace: echo,
            }];
            frames.extend(chunk_counts(id, &counts));
            frames.extend(chunk_gaps(id, &ans.gaps));
            frames.push(Frame::ResultEnd { id });
            frames
        }
        Request::Replay { port, from, to, d } => {
            let Some(path) = &shared.archive else {
                return vec![protocol_error(id, ErrorCode::NoArchive, "")];
            };
            // This worker's shard: open on first use, reuse after.
            if reader.is_none() {
                match File::open(path).and_then(|f| StoreReader::open(BufReader::new(f))) {
                    Ok(r) => *reader = Some(r),
                    Err(e) => return vec![io_error(id, from, to, &e)],
                }
            }
            let r = reader.as_mut().unwrap();
            if !r.ports().contains(&port) {
                return vec![protocol_error(
                    id,
                    ErrorCode::UnknownPort,
                    &format!("port {port} not present in archive"),
                )];
            }
            let interval = QueryInterval::new(from, to);
            let coeffs = Coefficients::compute(r.tw_config(), d);
            let mut view = shared.cache.as_ref().map(|c| c.for_archive(0));
            let query = r.query_cached(
                port,
                interval,
                &coeffs,
                view.as_mut().map(|v| v as &mut dyn pq_store::SegmentCache),
            );
            if let Some(t) = tracer {
                // The reader's per-query stats carry decode time and cache
                // disposition; anchor the span so it *ends* now (the decode
                // happened somewhere inside query_cached).
                let stats = r.last_query_stats();
                if stats.segments > 0 {
                    let end_ns = shared.trace_clock.now_ns();
                    t.record(
                        names::SPAN_SEGMENT_DECODE,
                        exec_span,
                        end_ns.saturating_sub(stats.decode_ns),
                        end_ns,
                        stats.cache_tag(),
                    );
                }
            }
            match query {
                Ok(result) => {
                    let checkpoints = r.checkpoint_count(port);
                    result_frames(
                        id,
                        checkpoints,
                        result.estimates.ranked(),
                        result.gaps,
                        result.degraded,
                        echo,
                    )
                }
                Err(e) => {
                    // The reader may now be mid-seek; drop the shard so the
                    // next query reopens cleanly.
                    *reader = None;
                    vec![io_error(id, from, to, &e)]
                }
            }
        }
        Request::Rtt {
            port,
            from,
            to,
            max_flows,
        } => {
            shared.instruments.rtt_queries.inc();
            let measure_start = shared.trace_clock.now_ns();
            // Report-granular selection keyed by each report's start
            // time, like replay's checkpoint-timestamp keying: a report
            // belongs to the interval containing `min_t`. Keying (rather
            // than span intersection) partitions reports across disjoint
            // intervals, so a router slicing [from, to] by epoch merges
            // each report exactly once and stays bit-identical to a
            // single daemon answering the whole range. "No samples" is a
            // valid measurement, so the answer is an (empty) report,
            // never an error — which also keeps routed merges uniform.
            let mut merged = RttReport::empty(port);
            for r in shared
                .rtt
                .iter()
                .filter(|r| r.port == port && from <= r.min_t && r.min_t <= to)
            {
                merged.merge(r);
            }
            // Truncation happens here, at the answering hop, after every
            // merge — a router asking on a client's behalf sends
            // max_flows 0 and truncates its own merged answer instead.
            let dropped = merged.truncate_flows(max_flows as usize);
            let degraded = merged.degraded() || dropped > 0;
            let bytes = merged.encode();
            if let Some(t) = tracer {
                t.record(
                    names::SPAN_RTT_MEASURE,
                    exec_span,
                    measure_start,
                    shared.trace_clock.now_ns(),
                    &merged.sample_count().to_string(),
                );
            }
            wire::rtt_result_frames(id, degraded, &bytes, echo)
        }
    }
}

/// A typed I/O error frame. The gap summary is the whole queried
/// interval: from the client's point of view nothing in it was answered,
/// which is exactly what a coverage gap means — so degraded-query
/// semantics survive server-side failures.
fn io_error(id: u64, from: u64, to: u64, e: &io::Error) -> Frame {
    let interval = QueryInterval::new(from, to);
    Frame::Error {
        id,
        code: ErrorCode::Io,
        gaps: vec![CoverageGap {
            from: interval.from,
            to: interval.to,
        }],
        message: e.to_string(),
    }
}

/// Assemble a streamed time-window answer: header, bounded chunks, end.
fn result_frames(
    id: u64,
    checkpoints: u64,
    flows: Vec<(FlowId, f64)>,
    gaps: Vec<CoverageGap>,
    degraded: bool,
    trace: Option<TraceContext>,
) -> Vec<Frame> {
    let mut frames = vec![Frame::ResultHeader {
        id,
        degraded,
        checkpoints,
        flows: flows.len() as u32,
        gaps: gaps.len() as u32,
        trace,
    }];
    frames.extend(chunk_flows(id, &flows));
    frames.extend(chunk_gaps(id, &gaps));
    frames.push(Frame::ResultEnd { id });
    frames
}
