//! The shared LRU segment-decode cache.
//!
//! Decoding a `.pqa` segment is the expensive step of a replay query
//! (CRC check + varint/delta decode + register reconstruction); hot
//! intervals hit the same segments over and over. This cache keeps
//! decoded segments, keyed by `(archive id, segment offset, body CRC,
//! count)` — the CRC in the key means a rewritten archive can never serve
//! stale decodes — bounded by an approximate decoded-byte budget with
//! least-recently-used eviction.
//!
//! One cache is shared by every worker (behind a mutex: lookups are a
//! hash probe and an `Arc` bump, so the critical section is tiny next to
//! a decode). `DecodeBudget` enforcement is unchanged: misses decode
//! through [`StoreReader`](pq_store::StoreReader) with its per-segment
//! budget, and only clean decodes are inserted.
//!
//! Hits, misses, evictions, and resident bytes are exported as
//! `pq_serve_cache_*` (see [`pq_telemetry::names`]).

use pq_core::control::Checkpoint;
use pq_core::queue_monitor::Entry;
use pq_core::time_windows::Cell;
use pq_store::{SegmentCache, SegmentKey};
use pq_telemetry::{names, Counter, Gauge, Telemetry};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Approximate in-RAM bytes of one decoded checkpoint (register cells +
/// monitor entries + fixed overhead). Used only for cache budgeting, so
/// "approximate but monotone in actual size" is enough.
fn checkpoint_cost(cp: &Checkpoint) -> u64 {
    let tw = cp.windows.config();
    let cells = u64::from(tw.t) * (tw.cells() as u64) * (std::mem::size_of::<Cell>() as u64);
    let monitors: u64 = cp
        .queue_monitors
        .iter()
        .map(|m| (m.entries.len() * std::mem::size_of::<Entry>()) as u64)
        .sum();
    cells + monitors + 64
}

fn segment_cost(cps: &[Checkpoint]) -> u64 {
    cps.iter().map(checkpoint_cost).sum::<u64>() + 64
}

/// A cache key: which archive, which segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    archive: u64,
    segment: SegmentKey,
}

struct Slot {
    checkpoints: Arc<[Checkpoint]>,
    cost: u64,
    last_used: u64,
}

struct Instruments {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    resident_bytes: Gauge,
}

struct Inner {
    slots: HashMap<CacheKey, Slot>,
    resident: u64,
    tick: u64,
}

/// The byte-bounded, LRU, archive-aware decode cache. Cheaply cloneable;
/// all clones share storage.
#[derive(Clone)]
pub struct DecodeCache {
    inner: Arc<Mutex<Inner>>,
    instruments: Arc<Instruments>,
    capacity_bytes: u64,
}

impl DecodeCache {
    /// A cache holding at most ~`capacity_bytes` of decoded checkpoints.
    /// A capacity of 0 still constructs (every insert evicts immediately),
    /// but callers wanting "no cache" should simply not attach one.
    pub fn new(capacity_bytes: u64, plane: &Telemetry) -> DecodeCache {
        let reg = plane.registry();
        DecodeCache {
            inner: Arc::new(Mutex::new(Inner {
                slots: HashMap::new(),
                resident: 0,
                tick: 0,
            })),
            instruments: Arc::new(Instruments {
                hits: reg.counter(names::SERVE_CACHE_HIT, &[]),
                misses: reg.counter(names::SERVE_CACHE_MISS, &[]),
                evictions: reg.counter(names::SERVE_CACHE_EVICTIONS, &[]),
                resident_bytes: reg.gauge(names::SERVE_CACHE_BYTES, &[]),
            }),
            capacity_bytes,
        }
    }

    /// A [`SegmentCache`] view bound to one archive's id, for passing to
    /// [`StoreReader::query_cached`](pq_store::StoreReader::query_cached).
    pub fn for_archive(&self, archive: u64) -> ArchiveView {
        ArchiveView {
            cache: self.clone(),
            archive,
        }
    }

    /// (hits, misses, evictions) so far — a convenience for benches; the
    /// same numbers are in the telemetry registry.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        CacheStats {
            resident_bytes: inner.resident,
            segments: inner.slots.len(),
        }
    }

    fn get(&self, key: CacheKey) -> Option<Arc<[Checkpoint]>> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.slots.get_mut(&key) {
            Some(slot) => {
                slot.last_used = tick;
                self.instruments.hits.inc();
                Some(Arc::clone(&slot.checkpoints))
            }
            None => {
                self.instruments.misses.inc();
                None
            }
        }
    }

    fn insert(&self, key: CacheKey, checkpoints: Arc<[Checkpoint]>) {
        let cost = segment_cost(&checkpoints);
        if cost > self.capacity_bytes {
            // Larger than the whole budget: caching it would just evict
            // everything else for a single-use resident.
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.slots.insert(
            key,
            Slot {
                checkpoints,
                cost,
                last_used: tick,
            },
        ) {
            inner.resident -= old.cost;
        }
        inner.resident += cost;
        // Evict least-recently-used slots until back under budget. Linear
        // scan: archives hold hundreds of segments, not millions, and
        // eviction only runs on insert.
        while inner.resident > self.capacity_bytes {
            let Some((&victim, _)) = inner
                .slots
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, s)| s.last_used)
            else {
                break;
            };
            let slot = inner.slots.remove(&victim).unwrap();
            inner.resident -= slot.cost;
            self.instruments.evictions.inc();
        }
        self.instruments.resident_bytes.set(inner.resident);
    }
}

/// Point-in-time cache occupancy.
#[derive(Debug, Clone, Copy)]
pub struct CacheStats {
    /// Approximate decoded bytes resident.
    pub resident_bytes: u64,
    /// Segments resident.
    pub segments: usize,
}

/// A [`DecodeCache`] scoped to one archive id; implements the store's
/// [`SegmentCache`] hook.
pub struct ArchiveView {
    cache: DecodeCache,
    archive: u64,
}

impl SegmentCache for ArchiveView {
    fn get(&mut self, key: SegmentKey) -> Option<Arc<[Checkpoint]>> {
        self.cache.get(CacheKey {
            archive: self.archive,
            segment: key,
        })
    }

    fn insert(&mut self, key: SegmentKey, checkpoints: Arc<[Checkpoint]>) {
        self.cache.insert(
            CacheKey {
                archive: self.archive,
                segment: key,
            },
            checkpoints,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_core::params::TimeWindowConfig;
    use pq_core::snapshot::TimeWindowSnapshot;
    use pq_core::time_windows::TimeWindowSet;

    fn cp(frozen_at: u64) -> Checkpoint {
        let set = TimeWindowSet::new(TimeWindowConfig::new(0, 1, 3, 2));
        Checkpoint {
            frozen_at,
            on_demand: false,
            trigger: None,
            windows: TimeWindowSnapshot::capture(&set),
            queue_monitors: Vec::new(),
        }
    }

    fn key(offset: u64) -> SegmentKey {
        SegmentKey {
            offset,
            body_crc: 0xabcd,
            count: 1,
        }
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let plane = Telemetry::new();
        let cache = DecodeCache::new(1 << 20, &plane);
        let mut view = cache.for_archive(1);
        assert!(view.get(key(9)).is_none());
        view.insert(key(9), vec![cp(5)].into());
        assert!(view.get(key(9)).is_some());
        let snap = plane.snapshot();
        assert_eq!(snap.counter(names::SERVE_CACHE_HIT, &[]), Some(1));
        assert_eq!(snap.counter(names::SERVE_CACHE_MISS, &[]), Some(1));
    }

    #[test]
    fn archives_do_not_alias() {
        let plane = Telemetry::new();
        let cache = DecodeCache::new(1 << 20, &plane);
        cache.for_archive(1).insert(key(9), vec![cp(5)].into());
        assert!(cache.for_archive(2).get(key(9)).is_none());
    }

    #[test]
    fn lru_evicts_oldest_under_pressure() {
        let plane = Telemetry::new();
        let one = segment_cost(&[cp(0)]);
        let cache = DecodeCache::new(one * 2 + one / 2, &plane);
        let mut view = cache.for_archive(1);
        view.insert(key(1), vec![cp(1)].into());
        view.insert(key(2), vec![cp(2)].into());
        assert!(view.get(key(1)).is_some()); // refresh 1: now 2 is LRU
        view.insert(key(3), vec![cp(3)].into());
        assert!(view.get(key(2)).is_none(), "LRU entry evicted");
        assert!(view.get(key(1)).is_some());
        assert!(view.get(key(3)).is_some());
        assert!(
            plane
                .snapshot()
                .counter(names::SERVE_CACHE_EVICTIONS, &[])
                .unwrap()
                >= 1
        );
    }
}
