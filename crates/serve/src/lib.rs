//! # pq-serve — the concurrent diagnosis-query service
//!
//! PrintQueue's data plane answers *what was in the queue and why* only
//! if an operator can actually ask. This crate turns the repository's
//! in-process query machinery — live [`AnalysisProgram`] register state
//! and `.pqa` checkpoint archives — into a network service:
//!
//! * [`wire`] — a small, versioned, length-prefixed binary protocol.
//!   Requests name a port, a [`QueryInterval`], and a query kind
//!   (time-window §6.3, queue-monitor §5, or replay-from-archive);
//!   answers stream back in bounded frames and always carry the
//!   degraded flag and [`CoverageGap`]s of the in-process API, so a
//!   remote answer is exactly as honest as a local one.
//! * [`server`] — the daemon: a fixed worker pool, sharded archive
//!   readers, bounded admission queue with explicit `Busy` load
//!   shedding (never a silent drop), and graceful drain on shutdown.
//! * [`cache`] — a shared LRU cache of decoded segments keyed by
//!   `(archive, offset, CRC)`, so hot intervals skip the expensive
//!   decode path.
//! * [`client`] — a blocking client that reassembles streamed answers
//!   into the same shapes local queries return, enabling bit-identical
//!   output.
//!
//! Everything observable is exported under the `pq_serve_*` telemetry
//! namespace via [`pq_telemetry`] — and the wire carries that
//! observability too: `HealthReq` answers a health summary inline (it
//! works even when the pool is saturated), `MetricsGet` returns one
//! structured snapshot, and `MetricsSubscribe` streams periodic
//! changed-series updates that `pqsim watch` folds into a live
//! dashboard and alert evaluation.
//!
//! The daemon also evaluates **standing continuous queries**
//! (`StandingQueryReq`): a dedicated evaluator thread runs `pq-stream`
//! window operators over the checkpoint stream and pushes each closed
//! window's answer — culprit flows included — as it materializes,
//! under the `pq_stream_*` telemetry namespace.
//!
//! [`AnalysisProgram`]: pq_core::control::AnalysisProgram
//! [`QueryInterval`]: pq_core::snapshot::QueryInterval
//! [`CoverageGap`]: pq_core::control::CoverageGap

pub mod cache;
pub mod client;
pub mod server;
pub mod wire;

pub use cache::{CacheStats, DecodeCache};
pub use client::{
    Client, ClientError, MetricsUpdate, RemoteMonitor, RemoteResult, RemoteRtt, RetryPolicy,
    StandingAck,
};
pub use server::{ServeConfig, Server, ServerHandle, Sources};
pub use wire::{
    samples_to_snapshot, snapshot_to_samples, ErrorCode, Frame, HealthInfo, Request, ShardMap,
    ShardMapEntry, StreamResult, WireError, WireSample, WireValue, MAX_BACKENDS_PER_MAP,
    MAX_FRAME_LEN, METRIC_SAMPLES_PER_FRAME, PROTOCOL_VERSION,
};
