//! The query client: a thin, blocking connection speaking the §[`wire`]
//! protocol.
//!
//! The client reassembles streamed response frames into the same shapes
//! the in-process query paths return ([`FlowEstimates`], coverage gaps,
//! degraded flags), so `pqsim query --remote` can print byte-identical
//! output through the same formatting code as local queries. Flow values
//! arrive as raw `f64` bits, so nothing is lost in transit.

use crate::wire::{
    self, samples_to_snapshot, ErrorCode, Frame, HealthInfo, Request, ShardMap, StreamResult,
    WireError, WireSample, MAX_FRAME_LEN, MAX_PROF_DUMP_LEN, MAX_RTT_REPORT_LEN, PROTOCOL_VERSION,
};
use pq_core::control::CoverageGap;
use pq_core::snapshot::FlowEstimates;
use pq_packet::FlowId;
use pq_rtt::RttReport;
use pq_telemetry::{RegistrySnapshot, Trace, TraceContext};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Bounded retry with full jitter for `Busy{retry_after}` responses.
///
/// A server sheds load with an explicit backoff hint; honoring it is the
/// difference between a retry storm and a polite client. The policy is
/// opt-in: [`Client::query`] still surfaces [`ClientError::Busy`] raw,
/// while [`Client::query_retry`] (and the router's failover path) sleep a
/// jittered, capped backoff and try again a bounded number of times.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = behave like no policy).
    pub max_retries: u32,
    /// Floor for the backoff base when the server's hint is 0 (ms).
    pub base_ms: u64,
    /// Backoff ceiling per attempt (ms).
    pub cap_ms: u64,
    /// Jitter rng seed, so tests are deterministic.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_ms: 10,
            cap_ms: 500,
            seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `attempt` (1-based): full jitter in
    /// `[0, min(cap, max(hint, base) << (attempt-1))]`.
    pub fn backoff_ms(&self, attempt: u32, hint_ms: u32, rng: &mut SmallRng) -> u64 {
        let base = u64::from(hint_ms).max(self.base_ms);
        let ceiling = base
            .saturating_shl(attempt.saturating_sub(1).min(16))
            .min(self.cap_ms);
        rng.gen_range(0..=ceiling)
    }
}

/// `u64::checked_shl` with saturation instead of `None`.
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        self.checked_shl(shift).unwrap_or(u64::MAX)
    }
}

/// Everything that can go wrong on the client side of a query.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write).
    Io(io::Error),
    /// The peer violated framing (bad length prefix, malformed body).
    Wire(WireError),
    /// The peer broke the protocol above the framing layer (wrong frame
    /// order, mismatched request id, inconsistent totals).
    Protocol(String),
    /// The server shed this request (or refused the connection); retry
    /// after the hinted backoff.
    Busy {
        /// Server-suggested backoff before retrying.
        retry_after_ms: u32,
    },
    /// The server answered with a typed error frame.
    Remote {
        /// The typed failure code.
        code: ErrorCode,
        /// Human-readable detail (may be empty).
        message: String,
        /// Coverage-gap summary for the unanswered interval, so degraded
        /// -query semantics survive server-side failures.
        gaps: Vec<CoverageGap>,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Busy { retry_after_ms } => {
                write!(f, "server busy, retry after {retry_after_ms} ms")
            }
            ClientError::Remote {
                code,
                message,
                gaps,
            } => {
                write!(f, "server error: {code}")?;
                if !message.is_empty() {
                    write!(f, ": {message}")?;
                }
                if !gaps.is_empty() {
                    write!(f, " ({} unanswered gap(s))", gaps.len())?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        match e {
            WireError::Io(e) => ClientError::Io(e),
            other => ClientError::Wire(other),
        }
    }
}

/// A reassembled time-window answer — the remote mirror of the core's
/// `QueryResult`, plus the server's checkpoint count for the header line.
#[derive(Debug, Clone)]
pub struct RemoteResult {
    /// Per-flow estimated packet counts (bit-identical to local).
    pub estimates: FlowEstimates,
    /// Coverage gaps overlapping the queried interval.
    pub gaps: Vec<CoverageGap>,
    /// True when any gap overlapped the interval.
    pub degraded: bool,
    /// Checkpoints the server holds for the queried port.
    pub checkpoints: u64,
    /// The trace context echoed by the server — present iff the request
    /// carried one, so the caller can match the answer to its trace.
    pub trace: Option<TraceContext>,
}

/// A reassembled queue-monitor answer.
#[derive(Debug, Clone)]
pub struct RemoteMonitor {
    /// When the answering snapshot was frozen.
    pub frozen_at: u64,
    /// Distance between the requested instant and the freeze.
    pub staleness: u64,
    /// True when the instant fell in a gap or the snapshot is stale.
    pub degraded: bool,
    /// Coverage gaps containing the requested instant.
    pub gaps: Vec<CoverageGap>,
    /// Original-culprit appearance counts, descending.
    pub counts: Vec<(FlowId, u64)>,
    /// The trace context echoed by the server (iff the request carried one).
    pub trace: Option<TraceContext>,
}

/// A reassembled RTT answer: the decoded canonical report plus the
/// server's degraded verdict (report-level degradation OR a `max_flows`
/// truncation the report itself cannot express).
#[derive(Debug, Clone)]
pub struct RemoteRtt {
    /// The decoded report (codec-validated canonical form).
    pub report: RttReport,
    /// Bounded-memory loss anywhere in the lineage, or flows dropped by
    /// the requested `max_flows` cap.
    pub degraded: bool,
    /// The trace context echoed by the server (iff the request carried one).
    pub trace: Option<TraceContext>,
}

/// One reassembled metrics update (from `MetricsGet` or a subscription).
#[derive(Debug, Clone)]
pub struct MetricsUpdate {
    /// Update ordinal within its subscription (0 = the full baseline).
    pub seq: u64,
    /// Server clock (nanos since server start) when the update was cut.
    pub t_ns: u64,
    /// True when the server will send no further updates for this stream.
    pub last: bool,
    /// The carried series, as absolute values. For `seq > 0` this holds
    /// only series that changed; fold onto the baseline with
    /// [`RegistrySnapshot::apply`].
    pub changed: RegistrySnapshot,
}

/// The server's acknowledgment of a standing-query registration.
#[derive(Debug, Clone)]
pub struct StandingAck {
    /// Subscription id; every result frame arrives tagged with it.
    pub sub: u64,
    /// Effective per-window flow cap after server-side clamping.
    pub cap: u32,
    /// Canonical rendering of the query as the server parsed it.
    pub query: String,
    /// The trace context echoed by the server (iff the request carried
    /// one); a sampled context makes the evaluator emit per-tick spans.
    pub trace: Option<TraceContext>,
}

/// A connected, handshaken query client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    max_frame: u32,
    next_id: u64,
    /// Request id of the active metrics subscription, if any.
    sub_id: Option<u64>,
    /// Effective cadence of the active subscription, as echoed by the
    /// server's `SubscribeAck` after clamping.
    sub_interval_ms: Option<u32>,
    /// The protocol version the handshake settled on; the trace-context
    /// extension is only attached when the peer negotiated v2+.
    version: u16,
    /// Trace context attached to outgoing requests (see
    /// [`set_trace_context`](Self::set_trace_context)).
    trace: Option<TraceContext>,
}

impl Client {
    /// Connect and handshake. Returns [`ClientError::Busy`] if the server
    /// refused the connection at its accept cap.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        Client::handshake(TcpStream::connect(addr)?)
    }

    /// Like [`connect`](Self::connect), but with a bound on connection
    /// establishment and on every subsequent read/write. A dead or
    /// wedged peer surfaces as [`ClientError::Io`] (`TimedOut`/
    /// `WouldBlock`) instead of hanging the caller — the property the
    /// router's failover path depends on.
    pub fn connect_timeout(
        addr: &std::net::SocketAddr,
        connect: Duration,
        io: Duration,
    ) -> Result<Client, ClientError> {
        let stream = TcpStream::connect_timeout(addr, connect)?;
        stream.set_read_timeout(Some(io))?;
        stream.set_write_timeout(Some(io))?;
        Client::handshake(stream)
    }

    /// Connect offering a specific protocol version. Primarily a
    /// compatibility hook: a client that offers version 1 behaves exactly
    /// like a pre-tracing build — the negotiated version gates the trace
    /// extension off, so its requests are bit-identical to v1 frames.
    pub fn connect_with_version<A: ToSocketAddrs>(
        addr: A,
        version: u16,
    ) -> Result<Client, ClientError> {
        Client::handshake_version(TcpStream::connect(addr)?, version)
    }

    fn handshake(stream: TcpStream) -> Result<Client, ClientError> {
        Client::handshake_version(stream, PROTOCOL_VERSION)
    }

    fn handshake_version(stream: TcpStream, offered: u16) -> Result<Client, ClientError> {
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream);
        wire::write_frame(
            &mut writer,
            &Frame::Hello {
                version: offered,
                max_frame: MAX_FRAME_LEN,
            },
        )?;
        writer.flush()?;
        let mut client = Client {
            reader,
            writer,
            max_frame: MAX_FRAME_LEN,
            next_id: 1,
            sub_id: None,
            sub_interval_ms: None,
            version: offered,
            trace: None,
        };
        match client.read()? {
            Frame::HelloAck { version, max_frame } => {
                if version == 0 || version > offered {
                    return Err(ClientError::Protocol(format!(
                        "server negotiated unsupported version {version}"
                    )));
                }
                client.max_frame = max_frame.min(MAX_FRAME_LEN);
                client.version = version;
                Ok(client)
            }
            Frame::Busy { retry_after_ms, .. } => Err(ClientError::Busy { retry_after_ms }),
            Frame::Error { code, message, .. } => Err(ClientError::Protocol(format!(
                "handshake rejected: {code}: {message}"
            ))),
            other => Err(ClientError::Protocol(format!(
                "expected HelloAck, got {other:?}"
            ))),
        }
    }

    fn read(&mut self) -> Result<Frame, ClientError> {
        Ok(wire::read_frame(&mut self.reader, self.max_frame)?)
    }

    fn send(&mut self, frame: &Frame) -> Result<(), ClientError> {
        wire::write_frame(&mut self.writer, frame)?;
        self.writer.flush()?;
        Ok(())
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// The protocol version the handshake settled on.
    pub fn negotiated_version(&self) -> u16 {
        self.version
    }

    /// Attach a trace context to every subsequent request (`None` stops
    /// attaching). On a connection that negotiated v1 the context is
    /// silently withheld — the wire bytes stay pre-tracing-compatible.
    pub fn set_trace_context(&mut self, ctx: Option<TraceContext>) {
        self.trace = ctx;
    }

    /// The trace context currently attached to outgoing requests.
    pub fn trace_context(&self) -> Option<TraceContext> {
        self.trace
    }

    /// The context to put on the wire: gated on the negotiated version.
    fn attach(&self) -> Option<TraceContext> {
        if self.version >= 2 {
            self.trace
        } else {
            None
        }
    }

    /// Check a response frame's id and unwrap the frames every response
    /// kind shares (Busy, Error).
    fn expect_id(&self, got: u64, want: u64) -> Result<(), ClientError> {
        if got != want {
            return Err(ClientError::Protocol(format!(
                "response id {got} does not match request id {want}"
            )));
        }
        Ok(())
    }

    /// Run a time-window or replay query and reassemble the streamed
    /// answer. Queue-monitor requests must use
    /// [`queue_monitor`](Self::queue_monitor) instead.
    pub fn query(&mut self, req: Request) -> Result<RemoteResult, ClientError> {
        if matches!(req, Request::QueueMonitor { .. }) {
            return Err(ClientError::Protocol(
                "queue-monitor requests use Client::queue_monitor".into(),
            ));
        }
        if matches!(req, Request::Rtt { .. }) {
            return Err(ClientError::Protocol("rtt requests use Client::rtt".into()));
        }
        let id = self.fresh_id();
        let trace = self.attach();
        self.send(&Frame::Request { id, req, trace })?;
        let (degraded, checkpoints, want_flows, want_gaps, echo) = match self.read()? {
            Frame::ResultHeader {
                id: got,
                degraded,
                checkpoints,
                flows,
                gaps,
                trace,
            } => {
                self.expect_id(got, id)?;
                (degraded, checkpoints, flows as usize, gaps as usize, trace)
            }
            Frame::Busy {
                id: got,
                retry_after_ms,
            } => {
                if got != 0 {
                    self.expect_id(got, id)?;
                }
                return Err(ClientError::Busy { retry_after_ms });
            }
            Frame::Error {
                id: got,
                code,
                gaps,
                message,
            } => {
                self.expect_id(got, id)?;
                return Err(ClientError::Remote {
                    code,
                    message,
                    gaps,
                });
            }
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected ResultHeader, got {other:?}"
                )))
            }
        };
        let mut flows: Vec<(FlowId, f64)> = Vec::with_capacity(want_flows.min(1 << 16));
        let mut gaps: Vec<CoverageGap> = Vec::with_capacity(want_gaps.min(1 << 16));
        loop {
            match self.read()? {
                Frame::ResultFlows { id: got, flows: f } => {
                    self.expect_id(got, id)?;
                    flows.extend(f);
                }
                Frame::ResultGaps { id: got, gaps: g } => {
                    self.expect_id(got, id)?;
                    gaps.extend(g);
                }
                Frame::ResultEnd { id: got } => {
                    self.expect_id(got, id)?;
                    break;
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected result chunk, got {other:?}"
                    )))
                }
            }
            if flows.len() > want_flows || gaps.len() > want_gaps {
                return Err(ClientError::Protocol(
                    "more chunk entries than the header announced".into(),
                ));
            }
        }
        if flows.len() != want_flows || gaps.len() != want_gaps {
            return Err(ClientError::Protocol(format!(
                "header announced {want_flows} flows / {want_gaps} gaps, got {} / {}",
                flows.len(),
                gaps.len()
            )));
        }
        let mut estimates = FlowEstimates::default();
        for (flow, n) in flows {
            estimates.counts.insert(flow, n);
        }
        Ok(RemoteResult {
            estimates,
            gaps,
            degraded,
            checkpoints,
            trace: echo,
        })
    }

    /// Run a queue-monitor query and reassemble the streamed answer.
    pub fn queue_monitor(&mut self, port: u16, at: u64) -> Result<RemoteMonitor, ClientError> {
        let id = self.fresh_id();
        let trace = self.attach();
        self.send(&Frame::Request {
            id,
            req: Request::QueueMonitor { port, at },
            trace,
        })?;
        let (degraded, frozen_at, staleness, want_counts, want_gaps, echo) = match self.read()? {
            Frame::MonitorHeader {
                id: got,
                degraded,
                frozen_at,
                staleness,
                counts,
                gaps,
                trace,
            } => {
                self.expect_id(got, id)?;
                (
                    degraded,
                    frozen_at,
                    staleness,
                    counts as usize,
                    gaps as usize,
                    trace,
                )
            }
            Frame::Busy { retry_after_ms, .. } => return Err(ClientError::Busy { retry_after_ms }),
            Frame::Error {
                id: got,
                code,
                gaps,
                message,
            } => {
                self.expect_id(got, id)?;
                return Err(ClientError::Remote {
                    code,
                    message,
                    gaps,
                });
            }
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected MonitorHeader, got {other:?}"
                )))
            }
        };
        let mut counts: Vec<(FlowId, u64)> = Vec::with_capacity(want_counts.min(1 << 16));
        let mut gaps: Vec<CoverageGap> = Vec::with_capacity(want_gaps.min(1 << 16));
        loop {
            match self.read()? {
                Frame::MonitorCounts { id: got, counts: c } => {
                    self.expect_id(got, id)?;
                    counts.extend(c);
                }
                Frame::ResultGaps { id: got, gaps: g } => {
                    self.expect_id(got, id)?;
                    gaps.extend(g);
                }
                Frame::ResultEnd { id: got } => {
                    self.expect_id(got, id)?;
                    break;
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected monitor chunk, got {other:?}"
                    )))
                }
            }
            if counts.len() > want_counts || gaps.len() > want_gaps {
                return Err(ClientError::Protocol(
                    "more chunk entries than the header announced".into(),
                ));
            }
        }
        if counts.len() != want_counts || gaps.len() != want_gaps {
            return Err(ClientError::Protocol(format!(
                "header announced {want_counts} counts / {want_gaps} gaps, got {} / {}",
                counts.len(),
                gaps.len()
            )));
        }
        Ok(RemoteMonitor {
            frozen_at,
            staleness,
            degraded,
            gaps,
            counts,
            trace: echo,
        })
    }

    /// Fetch the server's Prometheus text exposition.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let id = self.fresh_id();
        self.send(&Frame::MetricsReq { id })?;
        match self.read()? {
            Frame::MetricsText { id: got, text } => {
                self.expect_id(got, id)?;
                Ok(text)
            }
            Frame::Error {
                id: got,
                code,
                gaps,
                message,
            } => {
                self.expect_id(got, id)?;
                Err(ClientError::Remote {
                    code,
                    message,
                    gaps,
                })
            }
            other => Err(ClientError::Protocol(format!(
                "expected MetricsText, got {other:?}"
            ))),
        }
    }

    /// Fetch the server's health summary (answered inline by the server's
    /// reader thread, so it works even when the worker pool is saturated).
    pub fn health(&mut self) -> Result<HealthInfo, ClientError> {
        let id = self.fresh_id();
        self.send(&Frame::HealthReq { id })?;
        match self.read()? {
            Frame::HealthAck { id: got, health } => {
                self.expect_id(got, id)?;
                Ok(health)
            }
            Frame::Error {
                id: got,
                code,
                gaps,
                message,
            } => {
                self.expect_id(got, id)?;
                Err(ClientError::Remote {
                    code,
                    message,
                    gaps,
                })
            }
            other => Err(ClientError::Protocol(format!(
                "expected HealthAck, got {other:?}"
            ))),
        }
    }

    /// Fetch one full structured metrics snapshot.
    pub fn metrics_snapshot(&mut self) -> Result<MetricsUpdate, ClientError> {
        let id = self.fresh_id();
        self.send(&Frame::MetricsGet { id })?;
        self.read_update(id)
    }

    /// Start a metrics subscription and return its first (full-snapshot)
    /// update. `interval_ms` is clamped server-side to [10, 60000]; the
    /// effective cadence the server acked is readable afterwards via
    /// [`subscribed_interval_ms`](Self::subscribed_interval_ms).
    /// `max_updates == 0` means unbounded. Fetch later updates with
    /// [`next_update`](Self::next_update); the stream ends when an update
    /// arrives with `last == true`.
    pub fn subscribe(
        &mut self,
        interval_ms: u32,
        max_updates: u32,
    ) -> Result<MetricsUpdate, ClientError> {
        let id = self.fresh_id();
        self.send(&Frame::MetricsSubscribe {
            id,
            interval_ms,
            max_updates,
        })?;
        // The ack always precedes the first update (both go through the
        // server's serialized writer); an admission shed still arrives
        // as `Busy` right after it and surfaces from `read_update`.
        match self.read()? {
            Frame::SubscribeAck {
                id: got,
                interval_ms: effective,
                ..
            } => {
                self.expect_id(got, id)?;
                self.sub_interval_ms = Some(effective);
            }
            Frame::Busy { retry_after_ms, .. } => return Err(ClientError::Busy { retry_after_ms }),
            Frame::Error {
                id: got,
                code,
                gaps,
                message,
            } => {
                self.expect_id(got, id)?;
                return Err(ClientError::Remote {
                    code,
                    message,
                    gaps,
                });
            }
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected SubscribeAck, got {other:?}"
                )))
            }
        }
        let update = self.read_update(id)?;
        self.sub_id = (!update.last).then_some(id);
        Ok(update)
    }

    /// The effective update cadence of the most recent subscription, as
    /// echoed by the server after clamping (`None` before any
    /// subscribe). A watcher that asked for 1ms learns here that it is
    /// actually getting 10ms.
    pub fn subscribed_interval_ms(&self) -> Option<u32> {
        self.sub_interval_ms
    }

    /// Block for the next update of the active subscription.
    pub fn next_update(&mut self) -> Result<MetricsUpdate, ClientError> {
        let Some(id) = self.sub_id else {
            return Err(ClientError::Protocol("no active subscription".into()));
        };
        let update = self.read_update(id)?;
        if update.last {
            self.sub_id = None;
        }
        Ok(update)
    }

    /// Read one `MetricsHeader` + chunks + `ResultEnd` sequence for `id`.
    fn read_update(&mut self, id: u64) -> Result<MetricsUpdate, ClientError> {
        let (seq, t_ns, total, last) = match self.read()? {
            Frame::MetricsHeader {
                id: got,
                seq,
                t_ns,
                total,
                last,
            } => {
                self.expect_id(got, id)?;
                (seq, t_ns, total as usize, last)
            }
            Frame::Busy {
                id: got,
                retry_after_ms,
            } => {
                if got != 0 {
                    self.expect_id(got, id)?;
                }
                return Err(ClientError::Busy { retry_after_ms });
            }
            Frame::Error {
                id: got,
                code,
                gaps,
                message,
            } => {
                self.expect_id(got, id)?;
                return Err(ClientError::Remote {
                    code,
                    message,
                    gaps,
                });
            }
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected MetricsHeader, got {other:?}"
                )))
            }
        };
        let mut samples: Vec<WireSample> = Vec::with_capacity(total.min(1 << 16));
        loop {
            match self.read()? {
                Frame::MetricsChunk {
                    id: got,
                    samples: s,
                } => {
                    self.expect_id(got, id)?;
                    samples.extend(s);
                }
                Frame::ResultEnd { id: got } => {
                    self.expect_id(got, id)?;
                    break;
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected metrics chunk, got {other:?}"
                    )))
                }
            }
            if samples.len() > total {
                return Err(ClientError::Protocol(
                    "more samples than the header announced".into(),
                ));
            }
        }
        if samples.len() != total {
            return Err(ClientError::Protocol(format!(
                "header announced {total} samples, got {}",
                samples.len()
            )));
        }
        Ok(MetricsUpdate {
            seq,
            t_ns,
            last,
            changed: samples_to_snapshot(&samples),
        })
    }

    /// Like [`query`](Self::query), but on `Busy{retry_after}` sleep a
    /// jittered, capped backoff (honoring the server's hint) and retry up
    /// to `policy.max_retries` times. Any other error is returned
    /// immediately; exhausting the budget returns the final `Busy`.
    ///
    /// A `Busy` shed also force-samples the attached trace context: a
    /// request that had to queue behind an overloaded server is exactly
    /// the tail this instrumentation exists to explain, so the retried
    /// attempt (and every downstream hop) records spans regardless of the
    /// probabilistic sampling decision.
    pub fn query_retry(
        &mut self,
        req: Request,
        policy: &RetryPolicy,
    ) -> Result<RemoteResult, ClientError> {
        let mut rng = SmallRng::seed_from_u64(policy.seed ^ self.next_id);
        let mut attempt = 0;
        loop {
            match self.query(req) {
                Err(ClientError::Busy { retry_after_ms }) if attempt < policy.max_retries => {
                    attempt += 1;
                    if let Some(ctx) = &mut self.trace {
                        ctx.sampled = true;
                    }
                    let ms = policy.backoff_ms(attempt, retry_after_ms, &mut rng);
                    std::thread::sleep(Duration::from_millis(ms));
                }
                other => return other,
            }
        }
    }

    /// Run an RTT query and reassemble + decode the chunked report.
    ///
    /// The payload is the `pq-rtt` canonical encoding; all structural
    /// validation happens in that codec, so a hostile or truncated
    /// payload surfaces as a protocol error, never a panic. Every length
    /// is checked against the header's announcement as chunks arrive, so
    /// a lying server cannot force unbounded buffering.
    pub fn rtt(
        &mut self,
        port: u16,
        from: u64,
        to: u64,
        max_flows: u32,
    ) -> Result<RemoteRtt, ClientError> {
        let id = self.fresh_id();
        let trace = self.attach();
        self.send(&Frame::Request {
            id,
            req: Request::Rtt {
                port,
                from,
                to,
                max_flows,
            },
            trace,
        })?;
        let (degraded, total, echo) = match self.read()? {
            Frame::RttHeader {
                id: got,
                degraded,
                total,
                trace,
            } => {
                self.expect_id(got, id)?;
                (degraded, total as usize, trace)
            }
            Frame::Busy {
                id: got,
                retry_after_ms,
            } => {
                if got != 0 {
                    self.expect_id(got, id)?;
                }
                return Err(ClientError::Busy { retry_after_ms });
            }
            Frame::Error {
                id: got,
                code,
                gaps,
                message,
            } => {
                self.expect_id(got, id)?;
                return Err(ClientError::Remote {
                    code,
                    message,
                    gaps,
                });
            }
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected RttHeader, got {other:?}"
                )))
            }
        };
        if total > MAX_RTT_REPORT_LEN as usize {
            return Err(ClientError::Protocol(
                "rtt report length exceeds cap".into(),
            ));
        }
        let mut bytes: Vec<u8> = Vec::with_capacity(total);
        loop {
            match self.read()? {
                Frame::RttChunk { id: got, bytes: b } => {
                    self.expect_id(got, id)?;
                    if bytes.len() + b.len() > total {
                        return Err(ClientError::Protocol(
                            "more chunk bytes than the header announced".into(),
                        ));
                    }
                    bytes.extend_from_slice(&b);
                }
                Frame::ResultEnd { id: got } => {
                    self.expect_id(got, id)?;
                    break;
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected rtt chunk, got {other:?}"
                    )))
                }
            }
        }
        if bytes.len() != total {
            return Err(ClientError::Protocol(format!(
                "header announced {total} report bytes, got {}",
                bytes.len()
            )));
        }
        let report = RttReport::decode(&bytes)
            .map_err(|e| ClientError::Protocol(format!("rtt report: {e}")))?;
        Ok(RemoteRtt {
            report,
            degraded,
            trace: echo,
        })
    }

    /// Like [`rtt`](Self::rtt), with the same bounded jittered retry
    /// (and force-sampling) on `Busy` as [`query_retry`](Self::query_retry).
    pub fn rtt_retry(
        &mut self,
        port: u16,
        from: u64,
        to: u64,
        max_flows: u32,
        policy: &RetryPolicy,
    ) -> Result<RemoteRtt, ClientError> {
        let mut rng = SmallRng::seed_from_u64(policy.seed ^ self.next_id);
        let mut attempt = 0;
        loop {
            match self.rtt(port, from, to, max_flows) {
                Err(ClientError::Busy { retry_after_ms }) if attempt < policy.max_retries => {
                    attempt += 1;
                    if let Some(ctx) = &mut self.trace {
                        ctx.sampled = true;
                    }
                    let ms = policy.backoff_ms(attempt, retry_after_ms, &mut rng);
                    std::thread::sleep(Duration::from_millis(ms));
                }
                other => return other,
            }
        }
    }

    /// Like [`queue_monitor`](Self::queue_monitor), with the same
    /// bounded jittered retry (and force-sampling) on `Busy` as
    /// [`query_retry`](Self::query_retry).
    pub fn queue_monitor_retry(
        &mut self,
        port: u16,
        at: u64,
        policy: &RetryPolicy,
    ) -> Result<RemoteMonitor, ClientError> {
        let mut rng = SmallRng::seed_from_u64(policy.seed ^ self.next_id);
        let mut attempt = 0;
        loop {
            match self.queue_monitor(port, at) {
                Err(ClientError::Busy { retry_after_ms }) if attempt < policy.max_retries => {
                    attempt += 1;
                    if let Some(ctx) = &mut self.trace {
                        ctx.sampled = true;
                    }
                    let ms = policy.backoff_ms(attempt, retry_after_ms, &mut rng);
                    std::thread::sleep(Duration::from_millis(ms));
                }
                other => return other,
            }
        }
    }

    /// Fetch the peer's recently committed traces (newest first), or only
    /// its slowest when `slow_only`. `max` is clamped server-side. A v1
    /// peer answers with a protocol error, surfaced as
    /// [`ClientError::Remote`].
    pub fn trace_dump(&mut self, max: u32, slow_only: bool) -> Result<Vec<Trace>, ClientError> {
        let id = self.fresh_id();
        self.send(&Frame::TraceDumpReq { id, max, slow_only })?;
        match self.read()? {
            Frame::TraceDumpAck { id: got, traces } => {
                self.expect_id(got, id)?;
                Ok(traces)
            }
            Frame::Error {
                id: got,
                code,
                gaps,
                message,
            } => {
                if got != 0 {
                    self.expect_id(got, id)?;
                }
                Err(ClientError::Remote {
                    code,
                    message,
                    gaps,
                })
            }
            other => Err(ClientError::Protocol(format!(
                "expected TraceDumpAck, got {other:?}"
            ))),
        }
    }

    /// Fetch the peer's raw encoded profile dump (the `pq-prof`
    /// canonical bytes, reassembled from chunks but not decoded). The
    /// routed-dump byte-identity check compares these bytes directly. A
    /// v1 peer answers with a protocol error, surfaced as
    /// [`ClientError::Remote`].
    pub fn profile_dump_bytes(&mut self) -> Result<Vec<u8>, ClientError> {
        let id = self.fresh_id();
        self.send(&Frame::ProfileDumpReq { id })?;
        let total = match self.read()? {
            Frame::ProfHeader { id: got, total } => {
                self.expect_id(got, id)?;
                total as usize
            }
            Frame::Error {
                id: got,
                code,
                gaps,
                message,
            } => {
                if got != 0 {
                    self.expect_id(got, id)?;
                }
                return Err(ClientError::Remote {
                    code,
                    message,
                    gaps,
                });
            }
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected ProfHeader, got {other:?}"
                )))
            }
        };
        if total > MAX_PROF_DUMP_LEN as usize {
            return Err(ClientError::Protocol(
                "profile dump length exceeds cap".into(),
            ));
        }
        let mut bytes: Vec<u8> = Vec::with_capacity(total);
        loop {
            match self.read()? {
                Frame::ProfChunk { id: got, bytes: b } => {
                    self.expect_id(got, id)?;
                    if bytes.len() + b.len() > total {
                        return Err(ClientError::Protocol(
                            "more chunk bytes than the header announced".into(),
                        ));
                    }
                    bytes.extend_from_slice(&b);
                }
                Frame::ResultEnd { id: got } => {
                    self.expect_id(got, id)?;
                    break;
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected prof chunk, got {other:?}"
                    )))
                }
            }
        }
        if bytes.len() != total {
            return Err(ClientError::Protocol(format!(
                "header announced {total} dump bytes, got {}",
                bytes.len()
            )));
        }
        Ok(bytes)
    }

    /// Fetch and decode the peer's profile dump. A daemon answers with
    /// its own process profile; a router answers with the merged dump of
    /// all its live backends.
    pub fn profile_dump(&mut self) -> Result<pq_prof::ProfileReport, ClientError> {
        let bytes = self.profile_dump_bytes()?;
        pq_prof::ProfileReport::decode(&bytes)
            .map_err(|e| ClientError::Protocol(format!("profile dump: {e}")))
    }

    /// Connect with the same bounded-retry treatment for accept-time
    /// `Busy` refusals (the connection cap sheds before the handshake, so
    /// retrying means reconnecting).
    pub fn connect_retry<A: ToSocketAddrs + Copy>(
        addr: A,
        policy: &RetryPolicy,
    ) -> Result<Client, ClientError> {
        let mut rng = SmallRng::seed_from_u64(policy.seed);
        let mut attempt = 0;
        loop {
            match Client::connect(addr) {
                Err(ClientError::Busy { retry_after_ms }) if attempt < policy.max_retries => {
                    attempt += 1;
                    let ms = policy.backoff_ms(attempt, retry_after_ms, &mut rng);
                    std::thread::sleep(Duration::from_millis(ms));
                }
                other => return other,
            }
        }
    }

    /// Fetch the serving topology (answered inline, like health).
    pub fn shard_map(&mut self) -> Result<ShardMap, ClientError> {
        let id = self.fresh_id();
        self.send(&Frame::ShardMapReq { id })?;
        match self.read()? {
            Frame::ShardMapAck { id: got, map } => {
                self.expect_id(got, id)?;
                Ok(map)
            }
            Frame::Error {
                id: got,
                code,
                gaps,
                message,
            } => {
                self.expect_id(got, id)?;
                Err(ClientError::Remote {
                    code,
                    message,
                    gaps,
                })
            }
            other => Err(ClientError::Protocol(format!(
                "expected ShardMapAck, got {other:?}"
            ))),
        }
    }

    /// Register a standing continuous query. `query` is the `pq-stream`
    /// text form; `cap` bounds per-window flow state (clamped
    /// server-side); `max_windows == 0` means unbounded, otherwise the
    /// stream ends after that many *fired* windows; `stop_after_seal`
    /// ends it once the source is exhausted and every window has closed.
    /// Fetch results with [`next_stream_result`](Self::next_stream_result)
    /// until one arrives with `last == true`.
    pub fn standing(
        &mut self,
        query: &str,
        cap: u32,
        max_windows: u32,
        stop_after_seal: bool,
    ) -> Result<StandingAck, ClientError> {
        let id = self.fresh_id();
        let trace = self.attach();
        self.send(&Frame::StandingQueryReq {
            id,
            cap,
            max_windows,
            stop_after_seal,
            query: query.to_string(),
            trace,
        })?;
        match self.read()? {
            Frame::StandingQueryAck {
                id: got,
                cap,
                query,
                trace,
            } => {
                self.expect_id(got, id)?;
                Ok(StandingAck {
                    sub: id,
                    cap,
                    query,
                    trace,
                })
            }
            Frame::Busy { retry_after_ms, .. } => Err(ClientError::Busy { retry_after_ms }),
            Frame::Error {
                id: got,
                code,
                gaps,
                message,
            } => {
                self.expect_id(got, id)?;
                Err(ClientError::Remote {
                    code,
                    message,
                    gaps,
                })
            }
            other => Err(ClientError::Protocol(format!(
                "expected StandingQueryAck, got {other:?}"
            ))),
        }
    }

    /// Block for the next result on standing subscription `sub`. A
    /// result with `to == 0` is a window-less progress frame (watermark
    /// only); one with `last == true` ends the stream.
    pub fn next_stream_result(&mut self, sub: u64) -> Result<StreamResult, ClientError> {
        match self.read()? {
            Frame::StandingQueryResult { id: got, result } => {
                self.expect_id(got, sub)?;
                Ok(*result)
            }
            Frame::Error {
                id: got,
                code,
                gaps,
                message,
            } => {
                self.expect_id(got, sub)?;
                Err(ClientError::Remote {
                    code,
                    message,
                    gaps,
                })
            }
            other => Err(ClientError::Protocol(format!(
                "expected StandingQueryResult, got {other:?}"
            ))),
        }
    }

    /// Cancel standing subscription `sub` and drain the stream to its
    /// final `last == true` frame (results already in flight may precede
    /// it), leaving the connection cleanly framed for further requests.
    pub fn cancel_standing(&mut self, sub: u64) -> Result<(), ClientError> {
        let id = self.fresh_id();
        self.send(&Frame::StandingQueryCancel { id, sub })?;
        loop {
            match self.read()? {
                Frame::StandingQueryResult { id: got, result } => {
                    self.expect_id(got, sub)?;
                    if result.last {
                        return Ok(());
                    }
                }
                Frame::Error {
                    id: got,
                    code,
                    gaps,
                    message,
                } => {
                    if got != id {
                        self.expect_id(got, sub)?;
                    }
                    return Err(ClientError::Remote {
                        code,
                        message,
                        gaps,
                    });
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected StandingQueryResult, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Ask the server to drain and stop. Returns once acknowledged.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        let id = self.fresh_id();
        self.send(&Frame::ShutdownReq { id })?;
        match self.read()? {
            Frame::ShutdownAck { id: got } => {
                self.expect_id(got, id)?;
                Ok(())
            }
            other => Err(ClientError::Protocol(format!(
                "expected ShutdownAck, got {other:?}"
            ))),
        }
    }
}
