//! The `pq-serve` wire protocol: versioned, length-prefixed binary frames.
//!
//! Every frame on the wire is
//!
//! ```text
//! u32 len (LE)  — length of what follows: the type byte + payload
//! u8  type      — frame discriminant (client frames < 0x80, server ≥ 0x80)
//! …payload      — fixed-width little-endian fields, no padding
//! ```
//!
//! A connection opens with `Hello` / `HelloAck` version negotiation: the
//! client states the highest protocol version it speaks and its receive
//! frame cap; the server answers with `min(client, server)` of each. A
//! server that cannot serve any version the client offered answers with a
//! typed [`ErrorCode::Unsupported`] error and closes.
//!
//! Query responses are **streamed in bounded frames**: a header stating
//! totals, then flow/gap chunks of at most [`ENTRIES_PER_FRAME`] entries,
//! then `ResultEnd`. No single frame ever exceeds [`MAX_FRAME_LEN`], so
//! neither side needs more than one frame of buffer per connection.
//!
//! Decoding is adversarial-input-safe in the `pq-store` `DecodeBudget`
//! tradition: the length prefix is validated against the negotiated cap
//! *before* any allocation, and every collection count inside a frame is
//! validated against the bytes actually present before a `Vec` is sized.
//! Malformed input yields a [`WireError`], never a panic and never an
//! allocation larger than the input itself.
//!
//! Flow estimates travel as raw `f64` bit patterns, so a remote answer is
//! bit-identical to the local one — the CI smoke test diffs the two.

use pq_core::control::CoverageGap;
use pq_packet::FlowId;
use pq_stream::{RttAgg, RTT_BUCKETS};
use pq_telemetry::{
    BucketExemplar, HistogramSnapshot, MetricKey, MetricValue, RegistrySnapshot, Trace,
    TraceContext, TraceSpan, NUM_BUCKETS,
};
use std::fmt;
use std::io::{self, Read, Write};

/// Highest protocol version this build speaks.
///
/// v2 adds the optional trace-context extension on query frames (and its
/// echo on answer headers), the `TraceDump` message pair, and histogram
/// exemplars inside metric samples. A v2 peer never sends the extension
/// to a v1 peer — the negotiated version gates it — so v1 byte layouts
/// are unchanged.
pub const PROTOCOL_VERSION: u16 = 2;

/// Hard cap on a frame's `len` field (type byte + payload).
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Most collection entries (flows, gaps, monitor counts) per chunk frame.
pub const ENTRIES_PER_FRAME: usize = 512;

/// Most metric samples per `MetricsChunk` frame. Lower than
/// [`ENTRIES_PER_FRAME`] because one sample can carry a full histogram
/// (65 buckets); the worst-case chunk still stays far under
/// [`MAX_FRAME_LEN`].
pub const METRIC_SAMPLES_PER_FRAME: usize = 128;

/// Most label pairs one metric sample may carry on the wire.
pub const MAX_LABELS_PER_SAMPLE: usize = 16;

/// Most backend entries one `ShardMapAck` may carry.
pub const MAX_BACKENDS_PER_MAP: usize = 64;

/// First byte of the optional trace-context extension block.
///
/// The extension is a fixed [`TRACE_EXT_LEN`]-byte trailer after a
/// frame's declared fields: magic, flags (bit 0 = sampled, all other
/// bits must be zero), `trace_id` (u128 LE), parent `span_id` (u64 LE).
/// A frame without the extension encodes zero extra bytes, which is
/// exactly the v1 layout.
pub const TRACE_EXT_MAGIC: u8 = 0x7C;

/// Encoded size of the trace-context extension block.
pub const TRACE_EXT_LEN: usize = 26;

/// Most traces one `TraceDumpAck` may carry.
pub const MAX_TRACES_PER_DUMP: usize = 32;

/// Most payload bytes one `RttChunk` frame may carry. An encoded
/// `pq-rtt` report travels as an opaque byte blob split into chunks of
/// at most this size, keeping every frame far under [`MAX_FRAME_LEN`].
pub const RTT_BYTES_PER_FRAME: usize = 64 * 1024;

/// Cap on the total encoded-report length an [`Frame::RttHeader`] may
/// announce. Bounds the client-side reassembly buffer before any chunk
/// is accepted; a genuine report (flow/sample caps enforced by the
/// `pq-rtt` codec) stays far below this.
pub const MAX_RTT_REPORT_LEN: u32 = 16 << 20;

/// Most payload bytes one `ProfChunk` frame may carry. An encoded
/// `pq-prof` report travels exactly like an RTT report: an opaque byte
/// blob split into bounded chunks.
pub const PROF_BYTES_PER_FRAME: usize = 64 * 1024;

/// Cap on the total encoded-dump length a [`Frame::ProfHeader`] may
/// announce. Matches `pq_prof::MAX_ENCODED_LEN` so a header can never
/// promise more than the codec itself would accept.
pub const MAX_PROF_DUMP_LEN: u32 = 16 << 20;

/// First byte of the optional RTT-aggregate suffix on a
/// [`Frame::StandingQueryResult`]. Like the trace extension, absence
/// encodes zero bytes — a result from a window that saw no RTT samples
/// is byte-identical to the pre-RTT layout.
pub const RTT_SUFFIX_MAGIC: u8 = 0x7E;

/// Most spans one dumped trace may carry.
pub const MAX_SPANS_PER_TRACE: usize = 128;

/// Typed failure codes carried by [`Frame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The peer violated the framing or sent an unknown frame type.
    Protocol,
    /// Version negotiation failed.
    Unsupported,
    /// The requested port exists in neither the live state nor the archive.
    UnknownPort,
    /// A live-state query reached a server with no live registers loaded.
    NoLiveState,
    /// A replay query reached a server with no archive loaded.
    NoArchive,
    /// The server hit an I/O error executing the query.
    Io,
    /// The server is draining for shutdown.
    ShuttingDown,
    /// The query was well-formed but no stored checkpoint can answer it
    /// (e.g. a queue-monitor query before the first poll).
    NoData,
    /// A standing-query text failed to parse or validate; the message
    /// carries the parser's diagnosis.
    BadQuery,
}

impl ErrorCode {
    fn to_u16(self) -> u16 {
        match self {
            ErrorCode::Protocol => 1,
            ErrorCode::Unsupported => 2,
            ErrorCode::UnknownPort => 3,
            ErrorCode::NoLiveState => 4,
            ErrorCode::NoArchive => 5,
            ErrorCode::Io => 6,
            ErrorCode::ShuttingDown => 7,
            ErrorCode::NoData => 8,
            ErrorCode::BadQuery => 9,
        }
    }

    /// Decode a wire error-code value.
    pub fn from_u16(v: u16) -> Result<ErrorCode, WireError> {
        Ok(match v {
            1 => ErrorCode::Protocol,
            2 => ErrorCode::Unsupported,
            3 => ErrorCode::UnknownPort,
            4 => ErrorCode::NoLiveState,
            5 => ErrorCode::NoArchive,
            6 => ErrorCode::Io,
            7 => ErrorCode::ShuttingDown,
            8 => ErrorCode::NoData,
            9 => ErrorCode::BadQuery,
            _ => return Err(WireError::malformed("unknown error code")),
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::Protocol => "protocol violation",
            ErrorCode::Unsupported => "unsupported protocol version",
            ErrorCode::UnknownPort => "unknown port",
            ErrorCode::NoLiveState => "no live state loaded",
            ErrorCode::NoArchive => "no archive loaded",
            ErrorCode::Io => "server i/o error",
            ErrorCode::ShuttingDown => "server shutting down",
            ErrorCode::NoData => "no stored checkpoint can answer the query",
            ErrorCode::BadQuery => "bad standing query",
        };
        f.write_str(s)
    }
}

/// A query request, as carried inside [`Frame::Request`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Request {
    /// §6.3 time-window query against the live analysis program.
    TimeWindows { port: u16, from: u64, to: u64 },
    /// §5 queue-monitor (original-culprit) query against live state.
    QueueMonitor { port: u16, at: u64 },
    /// Time-window query replayed from the `.pqa` archive; `d` is the
    /// coefficient delay parameter (matches `replay-query --d`).
    Replay {
        port: u16,
        from: u64,
        to: u64,
        d: u64,
    },
    /// Per-flow RTT report over `[from, to]`, merged from the server's
    /// RTT measurements (live hook reports and/or archive spill
    /// segments). `max_flows` bounds the per-flow list in the answer
    /// (0 = unlimited); truncation is applied only by the hop that
    /// answers the client, so a router scatters with 0 and truncates
    /// after its merge — keeping routed answers bit-identical to a
    /// single daemon holding all the data.
    Rtt {
        port: u16,
        from: u64,
        to: u64,
        max_flows: u32,
    },
}

impl Request {
    /// The `kind` label this request reports under in `pq_serve_*` metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::TimeWindows { .. } => "time_windows",
            Request::QueueMonitor { .. } => "queue_monitor",
            Request::Replay { .. } => "replay",
            Request::Rtt { .. } => "rtt",
        }
    }

    /// The port the request targets.
    pub fn port(&self) -> u16 {
        match self {
            Request::TimeWindows { port, .. }
            | Request::QueueMonitor { port, .. }
            | Request::Replay { port, .. }
            | Request::Rtt { port, .. } => *port,
        }
    }
}

/// A server's health self-report, carried by [`Frame::HealthAck`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HealthInfo {
    /// Nanoseconds since the daemon started.
    pub uptime_ns: u64,
    /// Configured worker-pool size.
    pub workers: u32,
    /// Workers currently executing a job (utilization numerator).
    pub busy_workers: u32,
    /// Current admission-queue depth.
    pub queue_depth: u32,
    /// Admission-queue capacity.
    pub queue_cap: u32,
    /// Connections currently open.
    pub active_conns: u32,
    /// Connection cap.
    pub max_conns: u32,
    /// Metrics subscriptions currently attached.
    pub subscribers: u32,
    /// True once shutdown has been initiated (draining).
    pub draining: bool,
    /// Build version (`pq_build_info` label; `unknown` if unstamped).
    pub version: String,
    /// Build git commit (`pq_build_info` label; `unknown` if unstamped).
    pub commit: String,
    /// Shard identity this daemon serves under (empty when unsharded).
    pub shard: String,
}

/// One backend entry in a [`ShardMap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMapEntry {
    /// Shard identity the backend serves under.
    pub shard: String,
    /// Address the backend listens on.
    pub addr: String,
    /// False while the router holds the backend in quarantine.
    pub healthy: bool,
}

/// The topology a router (or a lone daemon, for itself) answers to a
/// [`Frame::ShardMapReq`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardMap {
    /// Monotone map generation; bumps on quarantine/readmission.
    pub generation: u64,
    /// Owners per shard key.
    pub replication: u32,
    /// Time-epoch width for (port, epoch) shard keys; 0 means a single
    /// epoch, i.e. port-only sharding.
    pub epoch_ns: u64,
    /// The backend set.
    pub backends: Vec<ShardMapEntry>,
}

/// One metric sample inside a [`Frame::MetricsChunk`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireSample {
    /// Metric name.
    pub name: String,
    /// Label pairs (sorted, as snapshots store them).
    pub labels: Vec<(String, String)>,
    /// The value, tagged by kind.
    pub value: WireValue,
}

/// The value half of a [`WireSample`].
#[derive(Debug, Clone, PartialEq)]
pub enum WireValue {
    /// Monotonic counter value (absolute).
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram state; `buckets` holds only occupied `(index, count)`
    /// pairs.
    Histogram {
        /// Total samples recorded.
        count: u64,
        /// Sum of all samples.
        sum: u64,
        /// Smallest sample (`u64::MAX` when empty).
        min: u64,
        /// Largest sample (0 when empty).
        max: u64,
        /// Occupied `(bucket index, count)` pairs, index-ascending.
        buckets: Vec<(u8, u64)>,
        /// Per-bucket exemplars: the last `trace_id` observed per
        /// occupied bucket, for alert → trace linkage.
        exemplars: Vec<BucketExemplar>,
    },
}

/// One closed-window answer on a standing-query subscription, carried
/// by [`Frame::StandingQueryResult`]. The depth aggregate travels as
/// the raw `(max, min, sum, count, last_t, last_depth)` integers the
/// window operator maintains — order-independent and mergeable — and
/// flow estimates as raw `f64` bits, keeping the bit-identity contract
/// the one-shot query path already honors.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamResult {
    /// Update ordinal on this subscription.
    pub seq: u64,
    /// The subscription's watermark after this close.
    pub watermark_ns: u64,
    pub port: u16,
    /// Window span `[from, to)` in sim nanoseconds.
    pub from: u64,
    pub to: u64,
    /// The query predicate held (or the query has none). Non-fired
    /// closes still travel — the router needs every shard's aggregate
    /// to evaluate the predicate on the merged window — but clients
    /// only print fired ones.
    pub fired: bool,
    /// Closed early by the open-window cap, not the watermark.
    pub forced: bool,
    /// The flow query behind this window saw coverage gaps or the
    /// routed merge lost a shard.
    pub degraded: bool,
    /// Final frame of this subscription (cancel, drain, or the
    /// requested window budget being reached).
    pub last: bool,
    /// Depth aggregate over the window's checkpoint records.
    pub max: u64,
    pub min: u64,
    pub sum: u64,
    pub count: u64,
    pub last_t: u64,
    pub last_depth: u64,
    /// Ranked culprit flows (empty for `emit depth` or non-fired
    /// closes); bounded by the subscription cap, itself capped at
    /// [`ENTRIES_PER_FRAME`].
    pub flows: Vec<(FlowId, f64)>,
    /// Bounded-state evictions this window's summary performed.
    pub evictions: u64,
    /// Upper bound on the flow weight those evictions displaced.
    pub evicted_weight: f64,
    /// Coverage gaps overlapping the window span.
    pub gaps: Vec<CoverageGap>,
    /// Passive RTT aggregate over the window (empty unless the source
    /// feeds RTT samples). Travels as an optional magic-led suffix —
    /// an empty aggregate encodes zero extra bytes, so results without
    /// RTT data keep the pre-RTT byte layout.
    pub rtt: RttAgg,
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    // -- client → server ---------------------------------------------------
    /// Connection opener: highest version spoken, receive frame cap.
    Hello { version: u16, max_frame: u32 },
    /// A query; `id` is echoed in every frame of the response. `trace`
    /// carries the caller's trace context when tracing is on and the
    /// negotiated version is ≥ 2; `None` encodes zero extra bytes.
    Request {
        id: u64,
        req: Request,
        trace: Option<TraceContext>,
    },
    /// Ask for the server's Prometheus text exposition.
    MetricsReq { id: u64 },
    /// Ask the server to drain in-flight queries and exit.
    ShutdownReq { id: u64 },
    /// Ask for the server's health self-report.
    HealthReq { id: u64 },
    /// Ask for one structured metrics snapshot (streamed like a
    /// subscription update with `seq` 0 and `last` set).
    MetricsGet { id: u64 },
    /// Subscribe to periodic metrics updates every `interval_ms`;
    /// `max_updates` 0 means unbounded (until shutdown or disconnect).
    MetricsSubscribe {
        id: u64,
        interval_ms: u32,
        max_updates: u32,
    },
    /// Ask for the serving topology: a router answers with its backend
    /// set, a lone daemon with a one-entry map describing itself.
    ShardMapReq { id: u64 },
    /// Register a standing continuous query. `query` is the text form
    /// parsed by `pq-stream`; `cap` bounds per-window summary state
    /// (clamped to [`ENTRIES_PER_FRAME`]); `max_windows` 0 means
    /// unbounded, otherwise the subscription ends after that many
    /// *fired* windows; `stop_after_seal` ends it once the source is
    /// exhausted and every window has closed (CI one-shot mode).
    StandingQueryReq {
        id: u64,
        cap: u32,
        max_windows: u32,
        stop_after_seal: bool,
        query: String,
        trace: Option<TraceContext>,
    },
    /// Cancel the standing subscription registered under `sub`; the
    /// server answers with a final `last=true` result frame on `sub`.
    StandingQueryCancel { id: u64, sub: u64 },
    /// Ask for the server's recent completed traces (newest first),
    /// `max`-bounded; `slow_only` restricts to the slow-query log.
    TraceDumpReq { id: u64, max: u32, slow_only: bool },
    /// Ask for the server's profile dump (scopes, locks, sampled
    /// stacks). Per-process like `TraceDumpReq` in spirit — but a
    /// router answers with the *merged* dump of all its live backends,
    /// its own profile excluded, so one request profiles the fleet.
    ProfileDumpReq { id: u64 },

    // -- server → client ---------------------------------------------------
    /// Accepted version and frame cap (`min` of both sides).
    HelloAck { version: u16, max_frame: u32 },
    /// Start of a time-window answer: totals for the chunks that follow.
    /// `trace` echoes the request's context iff the request carried one.
    ResultHeader {
        id: u64,
        degraded: bool,
        /// Checkpoints the serving side holds for the port (the local
        /// query path prints this; carrying it keeps output identical).
        checkpoints: u64,
        flows: u32,
        gaps: u32,
        trace: Option<TraceContext>,
    },
    /// Up to [`ENTRIES_PER_FRAME`] per-flow estimates (`f64` bits).
    ResultFlows { id: u64, flows: Vec<(FlowId, f64)> },
    /// Up to [`ENTRIES_PER_FRAME`] coverage gaps.
    ResultGaps { id: u64, gaps: Vec<CoverageGap> },
    /// End of a streamed answer.
    ResultEnd { id: u64 },
    /// Start of a queue-monitor answer. `trace` echoes the request's
    /// context iff the request carried one.
    MonitorHeader {
        id: u64,
        degraded: bool,
        frozen_at: u64,
        staleness: u64,
        counts: u32,
        gaps: u32,
        trace: Option<TraceContext>,
    },
    /// Up to [`ENTRIES_PER_FRAME`] original-culprit counts.
    MonitorCounts { id: u64, counts: Vec<(FlowId, u64)> },
    /// Typed failure, with the coverage-gap summary the local path would
    /// have seen (so degraded-query semantics survive the wire).
    Error {
        id: u64,
        code: ErrorCode,
        gaps: Vec<CoverageGap>,
        message: String,
    },
    /// Load shed: retry after the given backoff. `id` 0 means the whole
    /// connection was refused at accept time.
    Busy { id: u64, retry_after_ms: u32 },
    /// Prometheus text exposition.
    MetricsText { id: u64, text: String },
    /// Shutdown acknowledged; the server drains and exits.
    ShutdownAck { id: u64 },
    /// Health self-report.
    HealthAck { id: u64, health: HealthInfo },
    /// Start of one metrics update: `seq` counts updates on this
    /// subscription, `t_ns` is the server clock, `total` the sample count
    /// across the chunks that follow, `last` marks the final update of a
    /// subscription (shutdown drain or `max_updates` reached).
    MetricsHeader {
        id: u64,
        seq: u64,
        t_ns: u64,
        total: u32,
        last: bool,
    },
    /// Up to [`METRIC_SAMPLES_PER_FRAME`] metric samples. Terminated by
    /// `ResultEnd`, like every streamed answer.
    MetricsChunk { id: u64, samples: Vec<WireSample> },
    /// The serving topology (answer to `ShardMapReq`).
    ShardMapAck { id: u64, map: ShardMap },
    /// Standing query admitted: `query` echoes the canonical form the
    /// evaluator actually runs, `cap` the effective (clamped) summary
    /// cap. Results follow asynchronously under the same `id`. `trace`
    /// echoes the registration's context iff it carried one.
    StandingQueryAck {
        id: u64,
        cap: u32,
        query: String,
        trace: Option<TraceContext>,
    },
    /// One closed window on a standing subscription (`id` is the
    /// registering request's id).
    StandingQueryResult { id: u64, result: Box<StreamResult> },
    /// Acknowledges a `MetricsSubscribe` with the *effective* interval
    /// and update budget after server-side clamping, so operators are
    /// never misled about the cadence they actually get.
    SubscribeAck {
        id: u64,
        interval_ms: u32,
        max_updates: u32,
    },
    /// Recent completed traces, newest first (answer to `TraceDumpReq`).
    /// Per-process: a router answers with its own traces, not its
    /// backends' — `pqsim trace` stitches dumps from several addresses.
    TraceDumpAck { id: u64, traces: Vec<Trace> },
    /// Start of an RTT answer: the report travels as the `pq-rtt`
    /// canonical encoding, split into [`Frame::RttChunk`] blobs of at
    /// most [`RTT_BYTES_PER_FRAME`] bytes and terminated by
    /// `ResultEnd`. `total` is the byte length of the full encoding
    /// (capped by [`MAX_RTT_REPORT_LEN`]); `degraded` reports
    /// bounded-memory loss (collisions, evictions, sample clips) or a
    /// `max_flows` truncation. Validation of the payload itself lives
    /// in the `pq-rtt` codec, which the client runs on the reassembled
    /// bytes. `trace` echoes the request's context iff it carried one.
    RttHeader {
        id: u64,
        degraded: bool,
        total: u32,
        trace: Option<TraceContext>,
    },
    /// One bounded slice of an encoded RTT report.
    RttChunk { id: u64, bytes: Vec<u8> },
    /// Start of a profile-dump answer: the report travels as the
    /// `pq-prof` canonical encoding, split into [`Frame::ProfChunk`]
    /// blobs of at most [`PROF_BYTES_PER_FRAME`] bytes and terminated
    /// by `ResultEnd`. `total` is the byte length of the full encoding
    /// (capped by [`MAX_PROF_DUMP_LEN`]); payload validation lives in
    /// the `pq-prof` codec, which the client runs on the reassembled
    /// bytes.
    ProfHeader { id: u64, total: u32 },
    /// One bounded slice of an encoded profile dump.
    ProfChunk { id: u64, bytes: Vec<u8> },
}

/// Why a frame failed to decode.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The length prefix exceeded the negotiated frame cap; the frame was
    /// *not* read (and must not be — honoring the cap is what bounds
    /// allocation).
    TooLarge { claimed: u32, cap: u32 },
    /// The frame body contradicted itself (truncated fields, counts
    /// exceeding the bytes present, bad UTF-8, unknown discriminants).
    Malformed(&'static str),
}

impl WireError {
    pub(crate) fn malformed(what: &'static str) -> WireError {
        WireError::Malformed(what)
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o: {e}"),
            WireError::TooLarge { claimed, cap } => {
                write!(f, "frame length {claimed} exceeds cap {cap}")
            }
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> WireError {
        WireError::Io(e)
    }
}

// -- encoding ---------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append the optional trace-context extension: nothing for `None`
/// (the v1 layout), the fixed [`TRACE_EXT_LEN`]-byte block for `Some`.
fn put_trace_ext(out: &mut Vec<u8>, trace: &Option<TraceContext>) {
    if let Some(ctx) = trace {
        out.push(TRACE_EXT_MAGIC);
        out.push(u8::from(ctx.sampled));
        put_u128(out, ctx.trace_id);
        put_u64(out, ctx.parent_span);
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Append the optional RTT-aggregate suffix: nothing for an empty
/// aggregate (the pre-RTT layout), otherwise magic + the aggregate's
/// scalar fields + occupied `(bucket, count)` pairs, index-ascending.
fn put_rtt_suffix(out: &mut Vec<u8>, rtt: &RttAgg) {
    if rtt.count == 0 {
        return;
    }
    out.push(RTT_SUFFIX_MAGIC);
    put_u64(out, rtt.count);
    put_u64(out, rtt.sum);
    put_u64(out, rtt.min);
    put_u64(out, rtt.max);
    put_u64(out, rtt.last_t);
    put_u64(out, rtt.last_rtt);
    let occupied: Vec<(u8, u64)> = rtt
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, &n)| n != 0)
        .map(|(i, &n)| (i as u8, n))
        .collect();
    out.push(occupied.len() as u8);
    for (i, n) in occupied {
        out.push(i);
        put_u64(out, n);
    }
}

fn put_sample(out: &mut Vec<u8>, sample: &WireSample) {
    put_string(out, &sample.name);
    debug_assert!(sample.labels.len() <= MAX_LABELS_PER_SAMPLE);
    out.push(sample.labels.len() as u8);
    for (k, v) in &sample.labels {
        put_string(out, k);
        put_string(out, v);
    }
    match &sample.value {
        WireValue::Counter(v) => {
            out.push(0);
            put_u64(out, *v);
        }
        WireValue::Gauge(v) => {
            out.push(1);
            put_u64(out, *v);
        }
        WireValue::Histogram {
            count,
            sum,
            min,
            max,
            buckets,
            exemplars,
        } => {
            out.push(2);
            put_u64(out, *count);
            put_u64(out, *sum);
            put_u64(out, *min);
            put_u64(out, *max);
            debug_assert!(buckets.len() <= NUM_BUCKETS);
            out.push(buckets.len() as u8);
            for (i, n) in buckets {
                out.push(*i);
                put_u64(out, *n);
            }
            debug_assert!(exemplars.len() <= NUM_BUCKETS);
            out.push(exemplars.len() as u8);
            for e in exemplars {
                out.push(e.bucket);
                put_u128(out, e.trace_id);
                put_u64(out, e.value);
            }
        }
    }
}

/// Encode a frame body (type byte + payload), without the length prefix.
pub fn encode_body(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    match frame {
        Frame::Hello { version, max_frame } => {
            out.push(0x01);
            put_u16(&mut out, *version);
            put_u32(&mut out, *max_frame);
        }
        Frame::Request { id, req, trace } => {
            out.push(0x02);
            put_u64(&mut out, *id);
            match req {
                Request::TimeWindows { port, from, to } => {
                    out.push(0);
                    put_u16(&mut out, *port);
                    put_u64(&mut out, *from);
                    put_u64(&mut out, *to);
                }
                Request::QueueMonitor { port, at } => {
                    out.push(1);
                    put_u16(&mut out, *port);
                    put_u64(&mut out, *at);
                }
                Request::Replay { port, from, to, d } => {
                    out.push(2);
                    put_u16(&mut out, *port);
                    put_u64(&mut out, *from);
                    put_u64(&mut out, *to);
                    put_u64(&mut out, *d);
                }
                Request::Rtt {
                    port,
                    from,
                    to,
                    max_flows,
                } => {
                    out.push(3);
                    put_u16(&mut out, *port);
                    put_u64(&mut out, *from);
                    put_u64(&mut out, *to);
                    put_u32(&mut out, *max_flows);
                }
            }
            put_trace_ext(&mut out, trace);
        }
        Frame::MetricsReq { id } => {
            out.push(0x03);
            put_u64(&mut out, *id);
        }
        Frame::ShutdownReq { id } => {
            out.push(0x04);
            put_u64(&mut out, *id);
        }
        Frame::HealthReq { id } => {
            out.push(0x05);
            put_u64(&mut out, *id);
        }
        Frame::MetricsGet { id } => {
            out.push(0x06);
            put_u64(&mut out, *id);
        }
        Frame::MetricsSubscribe {
            id,
            interval_ms,
            max_updates,
        } => {
            out.push(0x07);
            put_u64(&mut out, *id);
            put_u32(&mut out, *interval_ms);
            put_u32(&mut out, *max_updates);
        }
        Frame::ShardMapReq { id } => {
            out.push(0x08);
            put_u64(&mut out, *id);
        }
        Frame::StandingQueryReq {
            id,
            cap,
            max_windows,
            stop_after_seal,
            query,
            trace,
        } => {
            out.push(0x09);
            put_u64(&mut out, *id);
            put_u32(&mut out, *cap);
            put_u32(&mut out, *max_windows);
            out.push(u8::from(*stop_after_seal));
            put_string(&mut out, query);
            put_trace_ext(&mut out, trace);
        }
        Frame::StandingQueryCancel { id, sub } => {
            out.push(0x0A);
            put_u64(&mut out, *id);
            put_u64(&mut out, *sub);
        }
        Frame::TraceDumpReq { id, max, slow_only } => {
            out.push(0x0B);
            put_u64(&mut out, *id);
            put_u32(&mut out, *max);
            out.push(u8::from(*slow_only));
        }
        Frame::ProfileDumpReq { id } => {
            out.push(0x0C);
            put_u64(&mut out, *id);
        }
        Frame::HelloAck { version, max_frame } => {
            out.push(0x81);
            put_u16(&mut out, *version);
            put_u32(&mut out, *max_frame);
        }
        Frame::ResultHeader {
            id,
            degraded,
            checkpoints,
            flows,
            gaps,
            trace,
        } => {
            out.push(0x82);
            put_u64(&mut out, *id);
            out.push(u8::from(*degraded));
            put_u64(&mut out, *checkpoints);
            put_u32(&mut out, *flows);
            put_u32(&mut out, *gaps);
            put_trace_ext(&mut out, trace);
        }
        Frame::ResultFlows { id, flows } => {
            out.push(0x83);
            put_u64(&mut out, *id);
            put_u32(&mut out, flows.len() as u32);
            for (flow, est) in flows {
                put_u32(&mut out, flow.0);
                put_u64(&mut out, est.to_bits());
            }
        }
        Frame::ResultGaps { id, gaps } => {
            out.push(0x84);
            put_u64(&mut out, *id);
            put_u32(&mut out, gaps.len() as u32);
            for g in gaps {
                put_u64(&mut out, g.from);
                put_u64(&mut out, g.to);
            }
        }
        Frame::ResultEnd { id } => {
            out.push(0x85);
            put_u64(&mut out, *id);
        }
        Frame::MonitorHeader {
            id,
            degraded,
            frozen_at,
            staleness,
            counts,
            gaps,
            trace,
        } => {
            out.push(0x86);
            put_u64(&mut out, *id);
            out.push(u8::from(*degraded));
            put_u64(&mut out, *frozen_at);
            put_u64(&mut out, *staleness);
            put_u32(&mut out, *counts);
            put_u32(&mut out, *gaps);
            put_trace_ext(&mut out, trace);
        }
        Frame::MonitorCounts { id, counts } => {
            out.push(0x87);
            put_u64(&mut out, *id);
            put_u32(&mut out, counts.len() as u32);
            for (flow, n) in counts {
                put_u32(&mut out, flow.0);
                put_u64(&mut out, *n);
            }
        }
        Frame::Error {
            id,
            code,
            gaps,
            message,
        } => {
            out.push(0x88);
            put_u64(&mut out, *id);
            put_u16(&mut out, code.to_u16());
            put_u32(&mut out, gaps.len() as u32);
            for g in gaps {
                put_u64(&mut out, g.from);
                put_u64(&mut out, g.to);
            }
            put_u32(&mut out, message.len() as u32);
            out.extend_from_slice(message.as_bytes());
        }
        Frame::Busy { id, retry_after_ms } => {
            out.push(0x89);
            put_u64(&mut out, *id);
            put_u32(&mut out, *retry_after_ms);
        }
        Frame::MetricsText { id, text } => {
            out.push(0x8A);
            put_u64(&mut out, *id);
            put_u32(&mut out, text.len() as u32);
            out.extend_from_slice(text.as_bytes());
        }
        Frame::ShutdownAck { id } => {
            out.push(0x8B);
            put_u64(&mut out, *id);
        }
        Frame::HealthAck { id, health } => {
            out.push(0x8C);
            put_u64(&mut out, *id);
            put_u64(&mut out, health.uptime_ns);
            put_u32(&mut out, health.workers);
            put_u32(&mut out, health.busy_workers);
            put_u32(&mut out, health.queue_depth);
            put_u32(&mut out, health.queue_cap);
            put_u32(&mut out, health.active_conns);
            put_u32(&mut out, health.max_conns);
            put_u32(&mut out, health.subscribers);
            out.push(u8::from(health.draining));
            put_string(&mut out, &health.version);
            put_string(&mut out, &health.commit);
            put_string(&mut out, &health.shard);
        }
        Frame::MetricsHeader {
            id,
            seq,
            t_ns,
            total,
            last,
        } => {
            out.push(0x8D);
            put_u64(&mut out, *id);
            put_u64(&mut out, *seq);
            put_u64(&mut out, *t_ns);
            put_u32(&mut out, *total);
            out.push(u8::from(*last));
        }
        Frame::MetricsChunk { id, samples } => {
            out.push(0x8E);
            put_u64(&mut out, *id);
            put_u32(&mut out, samples.len() as u32);
            for s in samples {
                put_sample(&mut out, s);
            }
        }
        Frame::ShardMapAck { id, map } => {
            out.push(0x8F);
            put_u64(&mut out, *id);
            put_u64(&mut out, map.generation);
            put_u32(&mut out, map.replication);
            put_u64(&mut out, map.epoch_ns);
            debug_assert!(map.backends.len() <= MAX_BACKENDS_PER_MAP);
            put_u32(&mut out, map.backends.len() as u32);
            for b in &map.backends {
                put_string(&mut out, &b.shard);
                put_string(&mut out, &b.addr);
                out.push(u8::from(b.healthy));
            }
        }
        Frame::StandingQueryAck {
            id,
            cap,
            query,
            trace,
        } => {
            out.push(0x90);
            put_u64(&mut out, *id);
            put_u32(&mut out, *cap);
            put_string(&mut out, query);
            put_trace_ext(&mut out, trace);
        }
        Frame::StandingQueryResult { id, result } => {
            out.push(0x91);
            put_u64(&mut out, *id);
            put_u64(&mut out, result.seq);
            put_u64(&mut out, result.watermark_ns);
            put_u16(&mut out, result.port);
            put_u64(&mut out, result.from);
            put_u64(&mut out, result.to);
            let flags = u8::from(result.fired)
                | u8::from(result.forced) << 1
                | u8::from(result.degraded) << 2
                | u8::from(result.last) << 3;
            out.push(flags);
            put_u64(&mut out, result.max);
            put_u64(&mut out, result.min);
            put_u64(&mut out, result.sum);
            put_u64(&mut out, result.count);
            put_u64(&mut out, result.last_t);
            put_u64(&mut out, result.last_depth);
            debug_assert!(result.flows.len() <= ENTRIES_PER_FRAME);
            put_u32(&mut out, result.flows.len() as u32);
            for (flow, est) in &result.flows {
                put_u32(&mut out, flow.0);
                put_u64(&mut out, est.to_bits());
            }
            put_u64(&mut out, result.evictions);
            put_u64(&mut out, result.evicted_weight.to_bits());
            put_u32(&mut out, result.gaps.len() as u32);
            for g in &result.gaps {
                put_u64(&mut out, g.from);
                put_u64(&mut out, g.to);
            }
            put_rtt_suffix(&mut out, &result.rtt);
        }
        Frame::SubscribeAck {
            id,
            interval_ms,
            max_updates,
        } => {
            out.push(0x92);
            put_u64(&mut out, *id);
            put_u32(&mut out, *interval_ms);
            put_u32(&mut out, *max_updates);
        }
        Frame::TraceDumpAck { id, traces } => {
            out.push(0x93);
            put_u64(&mut out, *id);
            debug_assert!(traces.len() <= MAX_TRACES_PER_DUMP);
            put_u32(&mut out, traces.len() as u32);
            for t in traces {
                put_u128(&mut out, t.trace_id);
                put_u64(&mut out, t.root_span);
                put_u64(&mut out, t.duration_ns);
                out.push(u8::from(t.slow));
                debug_assert!(t.spans.len() <= MAX_SPANS_PER_TRACE);
                put_u32(&mut out, t.spans.len() as u32);
                for s in &t.spans {
                    put_u64(&mut out, s.span_id);
                    put_u64(&mut out, s.parent_span);
                    put_u64(&mut out, s.start_ns);
                    put_u64(&mut out, s.end_ns);
                    put_string(&mut out, &s.name);
                    put_string(&mut out, &s.process);
                    put_string(&mut out, &s.tag);
                }
            }
        }
        Frame::RttHeader {
            id,
            degraded,
            total,
            trace,
        } => {
            out.push(0x94);
            put_u64(&mut out, *id);
            out.push(u8::from(*degraded));
            debug_assert!(*total <= MAX_RTT_REPORT_LEN);
            put_u32(&mut out, *total);
            put_trace_ext(&mut out, trace);
        }
        Frame::RttChunk { id, bytes } => {
            out.push(0x95);
            put_u64(&mut out, *id);
            debug_assert!(bytes.len() <= RTT_BYTES_PER_FRAME);
            put_u32(&mut out, bytes.len() as u32);
            out.extend_from_slice(bytes);
        }
        Frame::ProfHeader { id, total } => {
            out.push(0x96);
            put_u64(&mut out, *id);
            debug_assert!(*total <= MAX_PROF_DUMP_LEN);
            put_u32(&mut out, *total);
        }
        Frame::ProfChunk { id, bytes } => {
            out.push(0x97);
            put_u64(&mut out, *id);
            debug_assert!(bytes.len() <= PROF_BYTES_PER_FRAME);
            put_u32(&mut out, bytes.len() as u32);
            out.extend_from_slice(bytes);
        }
    }
    out
}

/// Write one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    let body = encode_body(frame);
    debug_assert!(body.len() as u32 <= MAX_FRAME_LEN, "oversized frame built");
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&body)
}

// -- decoding ---------------------------------------------------------------

fn get_u8(cur: &mut &[u8]) -> Result<u8, WireError> {
    let (&v, rest) = cur
        .split_first()
        .ok_or(WireError::Malformed("truncated u8"))?;
    *cur = rest;
    Ok(v)
}

fn get_u16(cur: &mut &[u8]) -> Result<u16, WireError> {
    if cur.len() < 2 {
        return Err(WireError::Malformed("truncated u16"));
    }
    let (head, rest) = cur.split_at(2);
    *cur = rest;
    Ok(u16::from_le_bytes(head.try_into().unwrap()))
}

fn get_u32(cur: &mut &[u8]) -> Result<u32, WireError> {
    if cur.len() < 4 {
        return Err(WireError::Malformed("truncated u32"));
    }
    let (head, rest) = cur.split_at(4);
    *cur = rest;
    Ok(u32::from_le_bytes(head.try_into().unwrap()))
}

fn get_u64(cur: &mut &[u8]) -> Result<u64, WireError> {
    if cur.len() < 8 {
        return Err(WireError::Malformed("truncated u64"));
    }
    let (head, rest) = cur.split_at(8);
    *cur = rest;
    Ok(u64::from_le_bytes(head.try_into().unwrap()))
}

fn get_u128(cur: &mut &[u8]) -> Result<u128, WireError> {
    if cur.len() < 16 {
        return Err(WireError::Malformed("truncated u128"));
    }
    let (head, rest) = cur.split_at(16);
    *cur = rest;
    Ok(u128::from_le_bytes(head.try_into().unwrap()))
}

/// Parse the optional trace-context extension at the end of a frame.
///
/// All-or-nothing: either the remaining bytes are empty (`None`), or they
/// are exactly one well-formed extension block. Anything else is left in
/// the cursor for the trailing-bytes check to reject, except a magic-led
/// block with unknown flag bits, which fails here — accepting it would
/// break re-encode bit-identity.
fn get_trace_ext(cur: &mut &[u8]) -> Result<Option<TraceContext>, WireError> {
    if cur.len() != TRACE_EXT_LEN || cur[0] != TRACE_EXT_MAGIC {
        return Ok(None);
    }
    let _magic = get_u8(cur)?;
    let flags = get_u8(cur)?;
    if flags & !0x01 != 0 {
        return Err(WireError::Malformed("unknown trace-context flags"));
    }
    let trace_id = get_u128(cur)?;
    let parent_span = get_u64(cur)?;
    Ok(Some(TraceContext {
        trace_id,
        parent_span,
        sampled: flags & 1 != 0,
    }))
}

/// Validate a collection count against the bytes actually present, the
/// `DecodeBudget` rule: never size an allocation off a claimed count the
/// input cannot back.
fn checked_count(cur: &[u8], claimed: u32, entry_bytes: usize) -> Result<usize, WireError> {
    let n = claimed as usize;
    if n > ENTRIES_PER_FRAME {
        return Err(WireError::Malformed("chunk exceeds entries-per-frame cap"));
    }
    if n.saturating_mul(entry_bytes) > cur.len() {
        return Err(WireError::Malformed("count exceeds bytes present"));
    }
    Ok(n)
}

fn get_gaps(cur: &mut &[u8], n: u32) -> Result<Vec<CoverageGap>, WireError> {
    let n = checked_count(cur, n, 16)?;
    let mut gaps = Vec::with_capacity(n);
    for _ in 0..n {
        let from = get_u64(cur)?;
        let to = get_u64(cur)?;
        gaps.push(CoverageGap { from, to });
    }
    Ok(gaps)
}

/// Parse the optional RTT-aggregate suffix.
///
/// All-or-nothing, like [`get_trace_ext`]: an absent suffix decodes as
/// the empty aggregate with nothing consumed (bytes that don't start
/// with the magic are left for the trailing-bytes check to reject); a
/// magic-led suffix must be fully well-formed. Every invariant the
/// encoder maintains is enforced — nonzero count, `min ≤ max`, bucket
/// indices strictly ascending with nonzero counts summing to `count` —
/// so a decoded suffix always re-encodes bit-identically.
fn get_rtt_suffix(cur: &mut &[u8]) -> Result<RttAgg, WireError> {
    if cur.first() != Some(&RTT_SUFFIX_MAGIC) {
        return Ok(RttAgg::default());
    }
    let _magic = get_u8(cur)?;
    let count = get_u64(cur)?;
    if count == 0 {
        return Err(WireError::Malformed("empty rtt suffix must be absent"));
    }
    let sum = get_u64(cur)?;
    let min = get_u64(cur)?;
    let max = get_u64(cur)?;
    if min > max {
        return Err(WireError::Malformed("rtt suffix min exceeds max"));
    }
    let last_t = get_u64(cur)?;
    let last_rtt = get_u64(cur)?;
    let nbuckets = get_u8(cur)? as usize;
    if nbuckets == 0 || nbuckets > RTT_BUCKETS {
        return Err(WireError::Malformed("rtt suffix bucket count out of range"));
    }
    if nbuckets.saturating_mul(9) > cur.len() {
        return Err(WireError::Malformed("count exceeds bytes present"));
    }
    let mut buckets = [0u64; RTT_BUCKETS];
    let mut total = 0u64;
    let mut prev: Option<u8> = None;
    for _ in 0..nbuckets {
        let i = get_u8(cur)?;
        if i as usize >= RTT_BUCKETS {
            return Err(WireError::Malformed("rtt suffix bucket index out of range"));
        }
        if prev.is_some_and(|p| i <= p) {
            return Err(WireError::Malformed("rtt suffix buckets not ascending"));
        }
        prev = Some(i);
        let n = get_u64(cur)?;
        if n == 0 {
            return Err(WireError::Malformed("rtt suffix carries an empty bucket"));
        }
        buckets[i as usize] = n;
        total = total
            .checked_add(n)
            .ok_or(WireError::Malformed("rtt suffix bucket counts overflow"))?;
    }
    if total != count {
        return Err(WireError::Malformed(
            "rtt suffix bucket counts disagree with count",
        ));
    }
    Ok(RttAgg {
        count,
        sum,
        min,
        max,
        last_t,
        last_rtt,
        buckets,
    })
}

fn get_string(cur: &mut &[u8], what: &'static str) -> Result<String, WireError> {
    let len = get_u32(cur)? as usize;
    if len > cur.len() {
        return Err(WireError::Malformed("string length exceeds bytes present"));
    }
    let (head, rest) = cur.split_at(len);
    let s = std::str::from_utf8(head)
        .map_err(|_| WireError::Malformed(what))?
        .to_string();
    *cur = rest;
    Ok(s)
}

fn get_sample(cur: &mut &[u8]) -> Result<WireSample, WireError> {
    let name = get_string(cur, "metric name not utf-8")?;
    if name.is_empty() {
        return Err(WireError::Malformed("empty metric name"));
    }
    let nlabels = get_u8(cur)? as usize;
    if nlabels > MAX_LABELS_PER_SAMPLE {
        return Err(WireError::Malformed("too many labels on a sample"));
    }
    let mut labels = Vec::with_capacity(nlabels);
    for _ in 0..nlabels {
        let k = get_string(cur, "label name not utf-8")?;
        let v = get_string(cur, "label value not utf-8")?;
        labels.push((k, v));
    }
    let value = match get_u8(cur)? {
        0 => WireValue::Counter(get_u64(cur)?),
        1 => WireValue::Gauge(get_u64(cur)?),
        2 => {
            let count = get_u64(cur)?;
            let sum = get_u64(cur)?;
            let min = get_u64(cur)?;
            let max = get_u64(cur)?;
            let nbuckets = get_u8(cur)? as usize;
            if nbuckets > NUM_BUCKETS {
                return Err(WireError::Malformed(
                    "histogram bucket count exceeds schema",
                ));
            }
            if nbuckets.saturating_mul(9) > cur.len() {
                return Err(WireError::Malformed("count exceeds bytes present"));
            }
            let mut buckets = Vec::with_capacity(nbuckets);
            for _ in 0..nbuckets {
                let i = get_u8(cur)?;
                if i as usize >= NUM_BUCKETS {
                    return Err(WireError::Malformed("histogram bucket index out of range"));
                }
                let n = get_u64(cur)?;
                buckets.push((i, n));
            }
            let nex = get_u8(cur)? as usize;
            if nex > NUM_BUCKETS {
                return Err(WireError::Malformed(
                    "histogram exemplar count exceeds schema",
                ));
            }
            if nex.saturating_mul(25) > cur.len() {
                return Err(WireError::Malformed("count exceeds bytes present"));
            }
            let mut exemplars = Vec::with_capacity(nex);
            for _ in 0..nex {
                let bucket = get_u8(cur)?;
                if bucket as usize >= NUM_BUCKETS {
                    return Err(WireError::Malformed("exemplar bucket index out of range"));
                }
                let trace_id = get_u128(cur)?;
                let value = get_u64(cur)?;
                exemplars.push(BucketExemplar {
                    bucket,
                    trace_id,
                    value,
                });
            }
            WireValue::Histogram {
                count,
                sum,
                min,
                max,
                buckets,
                exemplars,
            }
        }
        _ => return Err(WireError::Malformed("unknown metric value kind")),
    };
    Ok(WireSample {
        name,
        labels,
        value,
    })
}

/// Decode a frame body (type byte + payload). Trailing bytes are a
/// protocol violation — a frame is exactly its declared fields.
pub fn decode_body(mut body: &[u8]) -> Result<Frame, WireError> {
    let cur = &mut body;
    let ty = get_u8(cur)?;
    let frame = match ty {
        0x01 => Frame::Hello {
            version: get_u16(cur)?,
            max_frame: get_u32(cur)?,
        },
        0x02 => {
            let id = get_u64(cur)?;
            let kind = get_u8(cur)?;
            let req = match kind {
                0 => Request::TimeWindows {
                    port: get_u16(cur)?,
                    from: get_u64(cur)?,
                    to: get_u64(cur)?,
                },
                1 => Request::QueueMonitor {
                    port: get_u16(cur)?,
                    at: get_u64(cur)?,
                },
                2 => Request::Replay {
                    port: get_u16(cur)?,
                    from: get_u64(cur)?,
                    to: get_u64(cur)?,
                    d: get_u64(cur)?,
                },
                3 => Request::Rtt {
                    port: get_u16(cur)?,
                    from: get_u64(cur)?,
                    to: get_u64(cur)?,
                    max_flows: get_u32(cur)?,
                },
                _ => return Err(WireError::Malformed("unknown request kind")),
            };
            let trace = get_trace_ext(cur)?;
            Frame::Request { id, req, trace }
        }
        0x03 => Frame::MetricsReq { id: get_u64(cur)? },
        0x04 => Frame::ShutdownReq { id: get_u64(cur)? },
        0x05 => Frame::HealthReq { id: get_u64(cur)? },
        0x06 => Frame::MetricsGet { id: get_u64(cur)? },
        0x07 => Frame::MetricsSubscribe {
            id: get_u64(cur)?,
            interval_ms: get_u32(cur)?,
            max_updates: get_u32(cur)?,
        },
        0x08 => Frame::ShardMapReq { id: get_u64(cur)? },
        0x09 => Frame::StandingQueryReq {
            id: get_u64(cur)?,
            cap: get_u32(cur)?,
            max_windows: get_u32(cur)?,
            stop_after_seal: get_u8(cur)? != 0,
            query: get_string(cur, "standing query not utf-8")?,
            trace: get_trace_ext(cur)?,
        },
        0x0A => Frame::StandingQueryCancel {
            id: get_u64(cur)?,
            sub: get_u64(cur)?,
        },
        0x0B => Frame::TraceDumpReq {
            id: get_u64(cur)?,
            max: get_u32(cur)?,
            slow_only: get_u8(cur)? != 0,
        },
        0x0C => Frame::ProfileDumpReq { id: get_u64(cur)? },
        0x81 => Frame::HelloAck {
            version: get_u16(cur)?,
            max_frame: get_u32(cur)?,
        },
        0x82 => Frame::ResultHeader {
            id: get_u64(cur)?,
            degraded: get_u8(cur)? != 0,
            checkpoints: get_u64(cur)?,
            flows: get_u32(cur)?,
            gaps: get_u32(cur)?,
            trace: get_trace_ext(cur)?,
        },
        0x83 => {
            let id = get_u64(cur)?;
            let n = get_u32(cur)?;
            let n = checked_count(cur, n, 12)?;
            let mut flows = Vec::with_capacity(n);
            for _ in 0..n {
                let flow = FlowId(get_u32(cur)?);
                let est = f64::from_bits(get_u64(cur)?);
                flows.push((flow, est));
            }
            Frame::ResultFlows { id, flows }
        }
        0x84 => {
            let id = get_u64(cur)?;
            let n = get_u32(cur)?;
            Frame::ResultGaps {
                id,
                gaps: get_gaps(cur, n)?,
            }
        }
        0x85 => Frame::ResultEnd { id: get_u64(cur)? },
        0x86 => Frame::MonitorHeader {
            id: get_u64(cur)?,
            degraded: get_u8(cur)? != 0,
            frozen_at: get_u64(cur)?,
            staleness: get_u64(cur)?,
            counts: get_u32(cur)?,
            gaps: get_u32(cur)?,
            trace: get_trace_ext(cur)?,
        },
        0x87 => {
            let id = get_u64(cur)?;
            let n = get_u32(cur)?;
            let n = checked_count(cur, n, 12)?;
            let mut counts = Vec::with_capacity(n);
            for _ in 0..n {
                let flow = FlowId(get_u32(cur)?);
                let count = get_u64(cur)?;
                counts.push((flow, count));
            }
            Frame::MonitorCounts { id, counts }
        }
        0x88 => {
            let id = get_u64(cur)?;
            let code = ErrorCode::from_u16(get_u16(cur)?)?;
            let ngaps = get_u32(cur)?;
            let gaps = get_gaps(cur, ngaps)?;
            let message = get_string(cur, "error message not utf-8")?;
            Frame::Error {
                id,
                code,
                gaps,
                message,
            }
        }
        0x89 => Frame::Busy {
            id: get_u64(cur)?,
            retry_after_ms: get_u32(cur)?,
        },
        0x8A => {
            let id = get_u64(cur)?;
            let text = get_string(cur, "metrics text not utf-8")?;
            Frame::MetricsText { id, text }
        }
        0x8B => Frame::ShutdownAck { id: get_u64(cur)? },
        0x8C => {
            let id = get_u64(cur)?;
            let uptime_ns = get_u64(cur)?;
            let workers = get_u32(cur)?;
            let busy_workers = get_u32(cur)?;
            let queue_depth = get_u32(cur)?;
            let queue_cap = get_u32(cur)?;
            let active_conns = get_u32(cur)?;
            let max_conns = get_u32(cur)?;
            let subscribers = get_u32(cur)?;
            let draining = get_u8(cur)? != 0;
            let version = get_string(cur, "health version not utf-8")?;
            let commit = get_string(cur, "health commit not utf-8")?;
            let shard = get_string(cur, "health shard not utf-8")?;
            Frame::HealthAck {
                id,
                health: HealthInfo {
                    uptime_ns,
                    workers,
                    busy_workers,
                    queue_depth,
                    queue_cap,
                    active_conns,
                    max_conns,
                    subscribers,
                    draining,
                    version,
                    commit,
                    shard,
                },
            }
        }
        0x8D => Frame::MetricsHeader {
            id: get_u64(cur)?,
            seq: get_u64(cur)?,
            t_ns: get_u64(cur)?,
            total: get_u32(cur)?,
            last: get_u8(cur)? != 0,
        },
        0x8E => {
            let id = get_u64(cur)?;
            let n = get_u32(cur)? as usize;
            if n > METRIC_SAMPLES_PER_FRAME {
                return Err(WireError::Malformed("chunk exceeds samples-per-frame cap"));
            }
            // Minimum encoded sample: empty name (4) + label count (1) +
            // kind (1) + scalar (8).
            if n.saturating_mul(14) > cur.len() {
                return Err(WireError::Malformed("count exceeds bytes present"));
            }
            let mut samples = Vec::with_capacity(n);
            for _ in 0..n {
                samples.push(get_sample(cur)?);
            }
            Frame::MetricsChunk { id, samples }
        }
        0x8F => {
            let id = get_u64(cur)?;
            let generation = get_u64(cur)?;
            let replication = get_u32(cur)?;
            let epoch_ns = get_u64(cur)?;
            let n = get_u32(cur)? as usize;
            if n > MAX_BACKENDS_PER_MAP {
                return Err(WireError::Malformed("shard map exceeds backend cap"));
            }
            // Minimum encoded entry: two empty strings (4+4) + healthy (1).
            if n.saturating_mul(9) > cur.len() {
                return Err(WireError::Malformed("count exceeds bytes present"));
            }
            let mut backends = Vec::with_capacity(n);
            for _ in 0..n {
                let shard = get_string(cur, "shard id not utf-8")?;
                let addr = get_string(cur, "backend addr not utf-8")?;
                let healthy = get_u8(cur)? != 0;
                backends.push(ShardMapEntry {
                    shard,
                    addr,
                    healthy,
                });
            }
            Frame::ShardMapAck {
                id,
                map: ShardMap {
                    generation,
                    replication,
                    epoch_ns,
                    backends,
                },
            }
        }
        0x90 => Frame::StandingQueryAck {
            id: get_u64(cur)?,
            cap: get_u32(cur)?,
            query: get_string(cur, "standing query echo not utf-8")?,
            trace: get_trace_ext(cur)?,
        },
        0x91 => {
            let id = get_u64(cur)?;
            let seq = get_u64(cur)?;
            let watermark_ns = get_u64(cur)?;
            let port = get_u16(cur)?;
            let from = get_u64(cur)?;
            let to = get_u64(cur)?;
            let flags = get_u8(cur)?;
            let max = get_u64(cur)?;
            let min = get_u64(cur)?;
            let sum = get_u64(cur)?;
            let count = get_u64(cur)?;
            let last_t = get_u64(cur)?;
            let last_depth = get_u64(cur)?;
            let nflows = get_u32(cur)?;
            let nflows = checked_count(cur, nflows, 12)?;
            let mut flows = Vec::with_capacity(nflows);
            for _ in 0..nflows {
                let flow = FlowId(get_u32(cur)?);
                let est = f64::from_bits(get_u64(cur)?);
                flows.push((flow, est));
            }
            let evictions = get_u64(cur)?;
            let evicted_weight = f64::from_bits(get_u64(cur)?);
            let ngaps = get_u32(cur)?;
            let gaps = get_gaps(cur, ngaps)?;
            let rtt = get_rtt_suffix(cur)?;
            Frame::StandingQueryResult {
                id,
                result: Box::new(StreamResult {
                    seq,
                    watermark_ns,
                    port,
                    from,
                    to,
                    fired: flags & 1 != 0,
                    forced: flags & 2 != 0,
                    degraded: flags & 4 != 0,
                    last: flags & 8 != 0,
                    max,
                    min,
                    sum,
                    count,
                    last_t,
                    last_depth,
                    flows,
                    evictions,
                    evicted_weight,
                    gaps,
                    rtt,
                }),
            }
        }
        0x92 => Frame::SubscribeAck {
            id: get_u64(cur)?,
            interval_ms: get_u32(cur)?,
            max_updates: get_u32(cur)?,
        },
        0x93 => {
            let id = get_u64(cur)?;
            let n = get_u32(cur)? as usize;
            if n > MAX_TRACES_PER_DUMP {
                return Err(WireError::Malformed("trace dump exceeds trace cap"));
            }
            // Minimum encoded trace: trace_id (16) + root span (8) +
            // duration (8) + slow (1) + span count (4).
            if n.saturating_mul(37) > cur.len() {
                return Err(WireError::Malformed("count exceeds bytes present"));
            }
            let mut traces = Vec::with_capacity(n);
            for _ in 0..n {
                let trace_id = get_u128(cur)?;
                let root_span = get_u64(cur)?;
                let duration_ns = get_u64(cur)?;
                let slow = get_u8(cur)? != 0;
                let nspans = get_u32(cur)? as usize;
                if nspans > MAX_SPANS_PER_TRACE {
                    return Err(WireError::Malformed("trace exceeds span cap"));
                }
                // Minimum encoded span: four u64 (32) + three empty
                // strings (12).
                if nspans.saturating_mul(44) > cur.len() {
                    return Err(WireError::Malformed("count exceeds bytes present"));
                }
                let mut spans = Vec::with_capacity(nspans);
                for _ in 0..nspans {
                    let span_id = get_u64(cur)?;
                    let parent_span = get_u64(cur)?;
                    let start_ns = get_u64(cur)?;
                    let end_ns = get_u64(cur)?;
                    let name = get_string(cur, "span name not utf-8")?;
                    let process = get_string(cur, "span process not utf-8")?;
                    let tag = get_string(cur, "span tag not utf-8")?;
                    spans.push(TraceSpan {
                        span_id,
                        parent_span,
                        name,
                        process,
                        tag,
                        start_ns,
                        end_ns,
                    });
                }
                traces.push(Trace {
                    trace_id,
                    root_span,
                    duration_ns,
                    slow,
                    spans,
                });
            }
            Frame::TraceDumpAck { id, traces }
        }
        0x94 => {
            let id = get_u64(cur)?;
            let degraded = get_u8(cur)? != 0;
            let total = get_u32(cur)?;
            if total > MAX_RTT_REPORT_LEN {
                return Err(WireError::Malformed("rtt report length exceeds cap"));
            }
            let trace = get_trace_ext(cur)?;
            Frame::RttHeader {
                id,
                degraded,
                total,
                trace,
            }
        }
        0x95 => {
            let id = get_u64(cur)?;
            let n = get_u32(cur)? as usize;
            if n > RTT_BYTES_PER_FRAME {
                return Err(WireError::Malformed(
                    "rtt chunk exceeds bytes-per-frame cap",
                ));
            }
            if n > cur.len() {
                return Err(WireError::Malformed("count exceeds bytes present"));
            }
            let (head, rest) = cur.split_at(n);
            let bytes = head.to_vec();
            *cur = rest;
            Frame::RttChunk { id, bytes }
        }
        0x96 => {
            let id = get_u64(cur)?;
            let total = get_u32(cur)?;
            if total > MAX_PROF_DUMP_LEN {
                return Err(WireError::Malformed("profile dump length exceeds cap"));
            }
            Frame::ProfHeader { id, total }
        }
        0x97 => {
            let id = get_u64(cur)?;
            let n = get_u32(cur)? as usize;
            if n > PROF_BYTES_PER_FRAME {
                return Err(WireError::Malformed(
                    "prof chunk exceeds bytes-per-frame cap",
                ));
            }
            if n > cur.len() {
                return Err(WireError::Malformed("count exceeds bytes present"));
            }
            let (head, rest) = cur.split_at(n);
            let bytes = head.to_vec();
            *cur = rest;
            Frame::ProfChunk { id, bytes }
        }
        _ => return Err(WireError::Malformed("unknown frame type")),
    };
    if !cur.is_empty() {
        return Err(WireError::Malformed("trailing bytes after frame"));
    }
    Ok(frame)
}

/// Read one length-prefixed frame, honoring `max_frame`.
///
/// An oversized length prefix fails with [`WireError::TooLarge`] *before*
/// anything past the prefix is read or allocated; the connection is no
/// longer framed after that, so callers must close it.
pub fn read_frame<R: Read>(r: &mut R, max_frame: u32) -> Result<Frame, WireError> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 {
        return Err(WireError::Malformed("zero-length frame"));
    }
    if len > max_frame {
        return Err(WireError::TooLarge {
            claimed: len,
            cap: max_frame,
        });
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    decode_body(&body)
}

/// Split per-flow estimates into bounded `ResultFlows` chunks.
pub fn chunk_flows(id: u64, flows: &[(FlowId, f64)]) -> Vec<Frame> {
    flows
        .chunks(ENTRIES_PER_FRAME)
        .map(|c| Frame::ResultFlows {
            id,
            flows: c.to_vec(),
        })
        .collect()
}

/// Split coverage gaps into bounded `ResultGaps` chunks.
pub fn chunk_gaps(id: u64, gaps: &[CoverageGap]) -> Vec<Frame> {
    gaps.chunks(ENTRIES_PER_FRAME)
        .map(|c| Frame::ResultGaps {
            id,
            gaps: c.to_vec(),
        })
        .collect()
}

/// Split monitor culprit counts into bounded `MonitorCounts` chunks.
pub fn chunk_counts(id: u64, counts: &[(FlowId, u64)]) -> Vec<Frame> {
    counts
        .chunks(ENTRIES_PER_FRAME)
        .map(|c| Frame::MonitorCounts {
            id,
            counts: c.to_vec(),
        })
        .collect()
}

/// Split an encoded RTT report into bounded `RttChunk` frames.
pub fn chunk_rtt(id: u64, bytes: &[u8]) -> Vec<Frame> {
    bytes
        .chunks(RTT_BYTES_PER_FRAME)
        .map(|c| Frame::RttChunk {
            id,
            bytes: c.to_vec(),
        })
        .collect()
}

/// The full frame sequence answering an RTT query: header, chunks, end.
/// Both the daemon and the router answer through this one helper, so a
/// routed answer is frame-for-frame identical to a local one given the
/// same report bytes.
pub fn rtt_result_frames(
    id: u64,
    degraded: bool,
    report_bytes: &[u8],
    trace: Option<TraceContext>,
) -> Vec<Frame> {
    let mut frames = vec![Frame::RttHeader {
        id,
        degraded,
        total: report_bytes.len() as u32,
        trace,
    }];
    frames.extend(chunk_rtt(id, report_bytes));
    frames.push(Frame::ResultEnd { id });
    frames
}

/// Split an encoded profile dump into bounded `ProfChunk` frames.
pub fn chunk_prof(id: u64, bytes: &[u8]) -> Vec<Frame> {
    bytes
        .chunks(PROF_BYTES_PER_FRAME)
        .map(|c| Frame::ProfChunk {
            id,
            bytes: c.to_vec(),
        })
        .collect()
}

/// The full frame sequence answering a profile-dump request: header,
/// chunks, end. The daemon and the router both answer through this one
/// helper, so a routed (merged) dump is frame-for-frame identical to a
/// local one given the same report bytes.
pub fn prof_result_frames(id: u64, dump_bytes: &[u8]) -> Vec<Frame> {
    let mut frames = vec![Frame::ProfHeader {
        id,
        total: dump_bytes.len() as u32,
    }];
    frames.extend(chunk_prof(id, dump_bytes));
    frames.push(Frame::ResultEnd { id });
    frames
}

/// Flatten a registry snapshot into wire samples (key order preserved).
pub fn snapshot_to_samples(snap: &RegistrySnapshot) -> Vec<WireSample> {
    snap.iter()
        .map(|(key, value)| WireSample {
            name: key.name.clone(),
            labels: key.labels.clone(),
            value: match value {
                MetricValue::Counter(v) => WireValue::Counter(*v),
                MetricValue::Gauge(v) => WireValue::Gauge(*v),
                MetricValue::Histogram(h) => WireValue::Histogram {
                    count: h.count,
                    sum: h.sum,
                    min: h.min,
                    max: h.max,
                    buckets: h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, &n)| n != 0)
                        .map(|(i, &n)| (i as u8, n))
                        .collect(),
                    exemplars: h.exemplars.clone(),
                },
            },
        })
        .collect()
}

/// Rebuild a registry snapshot from wire samples. Labels are
/// re-canonicalized and duplicate keys last-write-win, so a hostile peer
/// cannot construct a snapshot a local registry could not.
pub fn samples_to_snapshot(samples: &[WireSample]) -> RegistrySnapshot {
    let mut snap = RegistrySnapshot::default();
    for s in samples {
        let borrowed: Vec<(&str, &str)> = s
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        let key = MetricKey::new(&s.name, &borrowed);
        let value = match &s.value {
            WireValue::Counter(v) => MetricValue::Counter(*v),
            WireValue::Gauge(v) => MetricValue::Gauge(*v),
            WireValue::Histogram {
                count,
                sum,
                min,
                max,
                buckets,
                exemplars,
            } => {
                let mut h = HistogramSnapshot {
                    count: *count,
                    sum: *sum,
                    min: *min,
                    max: *max,
                    ..HistogramSnapshot::default()
                };
                for (i, n) in buckets {
                    h.buckets[*i as usize] = *n;
                }
                // Re-canonicalize: snapshot exemplars are bucket-sorted
                // and unique per bucket (last write wins), a hostile
                // peer's ordering notwithstanding.
                let mut ex = exemplars.clone();
                ex.sort_by_key(|e| e.bucket);
                ex.reverse();
                ex.dedup_by_key(|e| e.bucket);
                ex.reverse();
                h.exemplars = ex;
                MetricValue::Histogram(Box::new(h))
            }
        };
        snap.insert(key, value);
    }
    snap
}

/// Split metric samples into one `MetricsHeader` + bounded
/// `MetricsChunk`s + `ResultEnd`: a complete streamed update.
pub fn metrics_update_frames(
    id: u64,
    seq: u64,
    t_ns: u64,
    last: bool,
    samples: &[WireSample],
) -> Vec<Frame> {
    let mut frames = vec![Frame::MetricsHeader {
        id,
        seq,
        t_ns,
        total: samples.len() as u32,
        last,
    }];
    frames.extend(
        samples
            .chunks(METRIC_SAMPLES_PER_FRAME)
            .map(|c| Frame::MetricsChunk {
                id,
                samples: c.to_vec(),
            }),
    );
    frames.push(Frame::ResultEnd { id });
    frames
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(f: &Frame) {
        let body = encode_body(f);
        let back = decode_body(&body).expect("decode");
        // Compare re-encoded bytes, not `PartialEq`: bit-level identity is
        // the actual contract, and it also holds for NaN flow values.
        assert_eq!(encode_body(&back), body, "re-encode differs for {f:?}");
    }

    #[test]
    fn all_frame_shapes_round_trip() {
        round_trip(&Frame::Hello {
            version: 1,
            max_frame: MAX_FRAME_LEN,
        });
        round_trip(&Frame::Request {
            id: 7,
            req: Request::Replay {
                port: 3,
                from: 10,
                to: 999,
                d: 110,
            },
            trace: None,
        });
        round_trip(&Frame::Request {
            id: 7,
            req: Request::TimeWindows {
                port: 3,
                from: 10,
                to: 999,
            },
            trace: Some(TraceContext {
                trace_id: 0xdead_beef_cafe_f00d_0123_4567_89ab_cdef,
                parent_span: 0x1122_3344_5566_7788,
                sampled: true,
            }),
        });
        round_trip(&Frame::ResultFlows {
            id: 1,
            flows: vec![
                (FlowId(4), 1.5),
                (FlowId(9), f64::from_bits(0x7ff8_dead_beef_0001)),
            ],
        });
        round_trip(&Frame::Error {
            id: 2,
            code: ErrorCode::Io,
            gaps: vec![CoverageGap { from: 5, to: 10 }],
            message: "read failed".into(),
        });
        round_trip(&Frame::HealthReq { id: 11 });
        round_trip(&Frame::MetricsGet { id: 12 });
        round_trip(&Frame::MetricsSubscribe {
            id: 13,
            interval_ms: 250,
            max_updates: 4,
        });
        round_trip(&Frame::HealthAck {
            id: 14,
            health: HealthInfo {
                uptime_ns: 1_000_000,
                workers: 4,
                busy_workers: 2,
                queue_depth: 3,
                queue_cap: 128,
                active_conns: 1,
                max_conns: 64,
                subscribers: 1,
                draining: true,
                version: "0.1.0".into(),
                commit: "abc123".into(),
                shard: "shard-1".into(),
            },
        });
        round_trip(&Frame::ShardMapReq { id: 21 });
        round_trip(&Frame::ShardMapAck {
            id: 22,
            map: ShardMap {
                generation: 3,
                replication: 2,
                epoch_ns: 0,
                backends: vec![
                    ShardMapEntry {
                        shard: "a".into(),
                        addr: "127.0.0.1:4000".into(),
                        healthy: true,
                    },
                    ShardMapEntry {
                        shard: "b".into(),
                        addr: "127.0.0.1:4001".into(),
                        healthy: false,
                    },
                ],
            },
        });
        round_trip(&Frame::MetricsHeader {
            id: 15,
            seq: 9,
            t_ns: 77,
            total: 2,
            last: false,
        });
        round_trip(&Frame::MetricsChunk {
            id: 16,
            samples: vec![
                WireSample {
                    name: "pq_serve_shed_total".into(),
                    labels: vec![],
                    value: WireValue::Counter(7),
                },
                WireSample {
                    name: "pq_serve_request_ns".into(),
                    labels: vec![("kind".into(), "replay".into())],
                    value: WireValue::Histogram {
                        count: 2,
                        sum: 300,
                        min: 100,
                        max: 200,
                        buckets: vec![(7, 1), (8, 1)],
                        exemplars: vec![BucketExemplar {
                            bucket: 8,
                            trace_id: 0xabcd,
                            value: 200,
                        }],
                    },
                },
            ],
        });
        round_trip(&Frame::ResultHeader {
            id: 17,
            degraded: false,
            checkpoints: 40,
            flows: 2,
            gaps: 0,
            trace: Some(TraceContext {
                trace_id: 1,
                parent_span: 2,
                sampled: false,
            }),
        });
        round_trip(&Frame::MonitorHeader {
            id: 18,
            degraded: true,
            frozen_at: 7,
            staleness: 9,
            counts: 3,
            gaps: 1,
            trace: Some(TraceContext {
                trace_id: u128::MAX,
                parent_span: u64::MAX,
                sampled: true,
            }),
        });
        round_trip(&Frame::TraceDumpReq {
            id: 19,
            max: 16,
            slow_only: true,
        });
        round_trip(&Frame::TraceDumpAck {
            id: 19,
            traces: vec![Trace {
                trace_id: 0xfeed,
                root_span: 5,
                duration_ns: 1_000_000,
                slow: true,
                spans: vec![TraceSpan {
                    span_id: 5,
                    parent_span: 0,
                    name: "worker_exec".into(),
                    process: "serve:a".into(),
                    tag: "cache=miss".into(),
                    start_ns: 100,
                    end_ns: 900,
                }],
            }],
        });
        round_trip(&Frame::TraceDumpAck {
            id: 20,
            traces: vec![],
        });
    }

    #[test]
    fn standing_query_frames_round_trip() {
        round_trip(&Frame::StandingQueryReq {
            id: 31,
            cap: 64,
            max_windows: 0,
            stop_after_seal: true,
            query: "port 3 window tumbling 1ms where max(depth) > 5 topk 8 emit flows".into(),
            trace: None,
        });
        round_trip(&Frame::StandingQueryReq {
            id: 31,
            cap: 64,
            max_windows: 0,
            stop_after_seal: false,
            query: "port 3 window tumbling 1ms emit depth".into(),
            trace: Some(TraceContext {
                trace_id: 77,
                parent_span: 88,
                sampled: true,
            }),
        });
        round_trip(&Frame::StandingQueryCancel { id: 32, sub: 31 });
        round_trip(&Frame::StandingQueryAck {
            id: 31,
            cap: 64,
            query: "port 3 window tumbling 1ms emit flows".into(),
            trace: None,
        });
        round_trip(&Frame::StandingQueryAck {
            id: 31,
            cap: 64,
            query: "port 3 window tumbling 1ms emit flows".into(),
            trace: Some(TraceContext {
                trace_id: 77,
                parent_span: 99,
                sampled: false,
            }),
        });
        round_trip(&Frame::StandingQueryResult {
            id: 31,
            result: Box::new(StreamResult {
                seq: 2,
                watermark_ns: 5_000_000,
                port: 3,
                from: 1_000_000,
                to: 2_000_000,
                fired: true,
                forced: false,
                degraded: true,
                last: false,
                max: 12,
                min: 1,
                sum: 40,
                count: 7,
                last_t: 1_900_000,
                last_depth: 9,
                flows: vec![
                    (FlowId(4), 1.5),
                    (FlowId(9), f64::from_bits(0x7ff8_dead_beef_0001)),
                ],
                evictions: 3,
                evicted_weight: 2.25,
                gaps: vec![CoverageGap {
                    from: 1_100_000,
                    to: 1_200_000,
                }],
                rtt: RttAgg::default(),
            }),
        });
        // A result carrying an RTT aggregate suffix.
        let mut rtt = RttAgg::default();
        for v in [250_000u64, 300_000, 1_900_000] {
            rtt.offer(1_500_000, v);
        }
        round_trip(&Frame::StandingQueryResult {
            id: 31,
            result: Box::new(StreamResult {
                seq: 3,
                watermark_ns: 5_000_000,
                port: 3,
                from: 1_000_000,
                to: 2_000_000,
                fired: true,
                forced: false,
                degraded: false,
                last: false,
                max: 12,
                min: 1,
                sum: 40,
                count: 7,
                last_t: 1_900_000,
                last_depth: 9,
                flows: vec![],
                evictions: 0,
                evicted_weight: 0.0,
                gaps: vec![],
                rtt,
            }),
        });
        // An empty progress close (no flows, no gaps, watermark only).
        round_trip(&Frame::StandingQueryResult {
            id: 31,
            result: Box::new(StreamResult {
                seq: 0,
                watermark_ns: u64::MAX,
                port: 0,
                from: 0,
                to: 0,
                fired: false,
                forced: false,
                degraded: false,
                last: true,
                max: 0,
                min: u64::MAX,
                sum: 0,
                count: 0,
                last_t: 0,
                last_depth: 0,
                flows: vec![],
                evictions: 0,
                evicted_weight: 0.0,
                gaps: vec![],
                rtt: RttAgg::default(),
            }),
        });
        round_trip(&Frame::SubscribeAck {
            id: 33,
            interval_ms: 10,
            max_updates: 4,
        });
    }

    #[test]
    fn hostile_standing_query_frames_are_rejected() {
        // Inflated flow count on a result frame.
        let frame = Frame::StandingQueryResult {
            id: 1,
            result: Box::new(StreamResult {
                seq: 0,
                watermark_ns: 0,
                port: 0,
                from: 0,
                to: 0,
                fired: false,
                forced: false,
                degraded: false,
                last: false,
                max: 0,
                min: 0,
                sum: 0,
                count: 0,
                last_t: 0,
                last_depth: 0,
                flows: vec![(FlowId(1), 1.0)],
                evictions: 0,
                evicted_weight: 0.0,
                gaps: vec![],
                rtt: RttAgg::default(),
            }),
        };
        let mut body = encode_body(&frame);
        // The flow-count u32 sits right before the single 12-byte flow
        // entry and the trailing 20 bytes (evictions + weight + gap count).
        let count_at = body.len() - 12 - 20 - 4;
        body[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_body(&body), Err(WireError::Malformed(_))));
        // Non-UTF-8 query text.
        let mut body = encode_body(&Frame::StandingQueryReq {
            id: 1,
            cap: 8,
            max_windows: 0,
            stop_after_seal: false,
            query: "pq".into(),
            trace: None,
        });
        let n = body.len();
        body[n - 1] = 0xFF;
        body[n - 2] = 0xFE;
        assert!(matches!(decode_body(&body), Err(WireError::Malformed(_))));
        // Truncation at every cut never panics.
        let body = encode_body(&frame);
        for cut in 0..body.len() {
            assert!(decode_body(&body[..cut]).is_err(), "cut at {cut}");
        }
    }

    fn sample_rtt_agg() -> RttAgg {
        let mut rtt = RttAgg::default();
        for (t, v) in [(10u64, 250_000u64), (20, 300_000), (30, 1_900_000)] {
            rtt.offer(t, v);
        }
        rtt
    }

    #[test]
    fn rtt_frames_round_trip() {
        round_trip(&Frame::Request {
            id: 41,
            req: Request::Rtt {
                port: 3,
                from: 10,
                to: 999,
                max_flows: 16,
            },
            trace: None,
        });
        round_trip(&Frame::Request {
            id: 41,
            req: Request::Rtt {
                port: 3,
                from: 0,
                to: u64::MAX,
                max_flows: 0,
            },
            trace: Some(TraceContext {
                trace_id: 7,
                parent_span: 8,
                sampled: true,
            }),
        });
        round_trip(&Frame::RttHeader {
            id: 41,
            degraded: true,
            total: 1234,
            trace: None,
        });
        round_trip(&Frame::RttHeader {
            id: 41,
            degraded: false,
            total: 0,
            trace: Some(TraceContext {
                trace_id: 9,
                parent_span: 10,
                sampled: false,
            }),
        });
        round_trip(&Frame::RttChunk {
            id: 41,
            bytes: vec![],
        });
        round_trip(&Frame::RttChunk {
            id: 41,
            bytes: (0..=255u8).collect(),
        });
        // The full answer sequence, and truncation never panics.
        let payload: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        for f in rtt_result_frames(41, false, &payload, None) {
            round_trip(&f);
            let body = encode_body(&f);
            for cut in 0..body.len() {
                assert!(decode_body(&body[..cut]).is_err(), "cut at {cut}");
            }
        }
    }

    #[test]
    fn rtt_payload_chunks_reassemble() {
        let payload: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        let frames = chunk_rtt(7, &payload);
        assert!(frames.len() > 1, "payload must span several chunks");
        let mut back = Vec::new();
        for f in &frames {
            match decode_body(&encode_body(f)).expect("decode") {
                Frame::RttChunk { id, bytes } => {
                    assert_eq!(id, 7);
                    assert!(bytes.len() <= RTT_BYTES_PER_FRAME);
                    back.extend_from_slice(&bytes);
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
        assert_eq!(back, payload);
    }

    #[test]
    fn hostile_rtt_frames_are_rejected() {
        // Chunk length pointing past the bytes present.
        let mut body = vec![0x95];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&100u32.to_le_bytes());
        body.extend_from_slice(&[0u8; 10]);
        assert!(matches!(decode_body(&body), Err(WireError::Malformed(_))));
        // Chunk length over the per-frame cap.
        let mut body = vec![0x95];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&(RTT_BYTES_PER_FRAME as u32 + 1).to_le_bytes());
        assert!(matches!(decode_body(&body), Err(WireError::Malformed(_))));
        // Header announcing a report over the reassembly cap.
        let mut body = vec![0x94];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.push(0);
        body.extend_from_slice(&(MAX_RTT_REPORT_LEN + 1).to_le_bytes());
        assert!(matches!(decode_body(&body), Err(WireError::Malformed(_))));
    }

    #[test]
    fn prof_frames_round_trip() {
        round_trip(&Frame::ProfileDumpReq { id: 51 });
        round_trip(&Frame::ProfHeader { id: 51, total: 0 });
        round_trip(&Frame::ProfHeader {
            id: 51,
            total: MAX_PROF_DUMP_LEN,
        });
        round_trip(&Frame::ProfChunk {
            id: 51,
            bytes: vec![],
        });
        round_trip(&Frame::ProfChunk {
            id: 51,
            bytes: (0..=255u8).collect(),
        });
        // The full answer sequence, and truncation never panics.
        let payload: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        for f in prof_result_frames(51, &payload) {
            round_trip(&f);
            let body = encode_body(&f);
            for cut in 0..body.len() {
                assert!(decode_body(&body[..cut]).is_err(), "cut at {cut}");
            }
        }
    }

    #[test]
    fn prof_payload_chunks_reassemble() {
        let payload: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        let frames = chunk_prof(9, &payload);
        assert!(frames.len() > 1, "payload must span several chunks");
        let mut back = Vec::new();
        for f in &frames {
            match decode_body(&encode_body(f)).expect("decode") {
                Frame::ProfChunk { id, bytes } => {
                    assert_eq!(id, 9);
                    assert!(bytes.len() <= PROF_BYTES_PER_FRAME);
                    back.extend_from_slice(&bytes);
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
        assert_eq!(back, payload);
    }

    #[test]
    fn hostile_prof_frames_are_rejected() {
        // Chunk length pointing past the bytes present.
        let mut body = vec![0x97];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&100u32.to_le_bytes());
        body.extend_from_slice(&[0u8; 10]);
        assert!(matches!(decode_body(&body), Err(WireError::Malformed(_))));
        // Chunk length over the per-frame cap.
        let mut body = vec![0x97];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&(PROF_BYTES_PER_FRAME as u32 + 1).to_le_bytes());
        assert!(matches!(decode_body(&body), Err(WireError::Malformed(_))));
        // Header announcing a dump over the reassembly cap.
        let mut body = vec![0x96];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&(MAX_PROF_DUMP_LEN + 1).to_le_bytes());
        assert!(matches!(decode_body(&body), Err(WireError::Malformed(_))));
    }

    #[test]
    fn empty_rtt_suffix_is_the_pre_rtt_layout() {
        let base = StreamResult {
            seq: 1,
            watermark_ns: 9,
            port: 3,
            from: 0,
            to: 1_000_000,
            fired: true,
            forced: false,
            degraded: false,
            last: false,
            max: 5,
            min: 1,
            sum: 9,
            count: 3,
            last_t: 500,
            last_depth: 2,
            flows: vec![(FlowId(4), 1.5)],
            evictions: 0,
            evicted_weight: 0.0,
            gaps: vec![],
            rtt: RttAgg::default(),
        };
        let bare = encode_body(&Frame::StandingQueryResult {
            id: 1,
            result: Box::new(base.clone()),
        });
        let mut with_rtt = base;
        with_rtt.rtt = sample_rtt_agg();
        let suffixed = encode_body(&Frame::StandingQueryResult {
            id: 1,
            result: Box::new(with_rtt),
        });
        // The suffix is a pure suffix: same prefix, magic-led extra bytes.
        assert!(suffixed.len() > bare.len());
        assert_eq!(&suffixed[..bare.len()], &bare[..]);
        assert_eq!(suffixed[bare.len()], RTT_SUFFIX_MAGIC);
        // Truncation inside the suffix never panics, and never silently
        // decodes as a suffix-less result.
        for cut in bare.len() + 1..suffixed.len() {
            assert!(decode_body(&suffixed[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn hostile_rtt_suffixes_are_rejected() {
        let result = StreamResult {
            seq: 0,
            watermark_ns: 0,
            port: 0,
            from: 0,
            to: 0,
            fired: false,
            forced: false,
            degraded: false,
            last: false,
            max: 0,
            min: 0,
            sum: 0,
            count: 0,
            last_t: 0,
            last_depth: 0,
            flows: vec![],
            evictions: 0,
            evicted_weight: 0.0,
            gaps: vec![],
            rtt: sample_rtt_agg(),
        };
        let body = encode_body(&Frame::StandingQueryResult {
            id: 1,
            result: Box::new(result),
        });
        let agg = sample_rtt_agg();
        let suffix_len = {
            let mut s = Vec::new();
            put_rtt_suffix(&mut s, &agg);
            s.len()
        };
        let suffix_at = body.len() - suffix_len;
        // A zero count must be encoded as an absent suffix.
        let mut hostile = body.clone();
        hostile[suffix_at + 1..suffix_at + 9].copy_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            decode_body(&hostile),
            Err(WireError::Malformed(_))
        ));
        // Bucket counts must sum to the sample count.
        let mut hostile = body.clone();
        hostile[suffix_at + 1..suffix_at + 9].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode_body(&hostile),
            Err(WireError::Malformed(_))
        ));
        // min > max contradicts the aggregate invariant.
        let mut hostile = body.clone();
        hostile[suffix_at + 17..suffix_at + 25].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode_body(&hostile),
            Err(WireError::Malformed(_))
        ));
        // A non-magic trailer is trailing garbage, not an empty suffix.
        let mut hostile = body.clone();
        hostile[suffix_at] = 0x00;
        assert!(matches!(
            decode_body(&hostile),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn snapshot_survives_the_wire_bit_exactly() {
        use pq_telemetry::Registry;
        let reg = Registry::new();
        reg.counter("pq_serve_requests_total", &[("kind", "replay")])
            .add(9);
        reg.gauge("pq_serve_queue_depth", &[]).set(4);
        let h = reg.histogram("pq_serve_request_ns", &[]);
        h.record(0);
        h.record(1000);
        h.record_exemplar(u64::MAX, 0x0123_4567_89ab_cdef);
        let snap = reg.snapshot();
        let samples = snapshot_to_samples(&snap);
        let frames = metrics_update_frames(5, 0, 42, true, &samples);
        // Through encode/decode and back into a snapshot.
        let mut decoded = Vec::new();
        for f in &frames {
            let back = decode_body(&encode_body(f)).expect("decode");
            if let Frame::MetricsChunk { samples, .. } = back {
                decoded.extend(samples);
            }
        }
        assert_eq!(samples_to_snapshot(&decoded), snap);
    }

    #[test]
    fn hostile_metric_samples_are_rejected() {
        // Inflated sample count.
        let mut body = vec![0x8E];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_body(&body), Err(WireError::Malformed(_))));
        // Out-of-range histogram bucket index.
        let frame = Frame::MetricsChunk {
            id: 1,
            samples: vec![WireSample {
                name: "m".into(),
                labels: vec![],
                value: WireValue::Histogram {
                    count: 1,
                    sum: 1,
                    min: 1,
                    max: 1,
                    buckets: vec![(64, 1)],
                    exemplars: vec![],
                },
            }],
        };
        let mut body = encode_body(&frame);
        // The bucket index byte precedes its u64 count and the trailing
        // (empty) exemplar-count byte.
        let idx_at = body.len() - 10;
        body[idx_at] = 65;
        assert!(matches!(decode_body(&body), Err(WireError::Malformed(_))));
        // Out-of-range exemplar bucket index.
        let frame = Frame::MetricsChunk {
            id: 1,
            samples: vec![WireSample {
                name: "m".into(),
                labels: vec![],
                value: WireValue::Histogram {
                    count: 1,
                    sum: 1,
                    min: 1,
                    max: 1,
                    buckets: vec![],
                    exemplars: vec![BucketExemplar {
                        bucket: 63,
                        trace_id: 1,
                        value: 1,
                    }],
                },
            }],
        };
        let mut body = encode_body(&frame);
        // The exemplar bucket byte precedes its u128 id and u64 value.
        let idx_at = body.len() - 25;
        body[idx_at] = 65;
        assert!(matches!(decode_body(&body), Err(WireError::Malformed(_))));
        // Empty metric name.
        let frame = Frame::MetricsChunk {
            id: 1,
            samples: vec![WireSample {
                name: String::new(),
                labels: vec![],
                value: WireValue::Counter(1),
            }],
        };
        assert!(matches!(
            decode_body(&encode_body(&frame)),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn truncated_frames_error_not_panic() {
        let body = encode_body(&Frame::MonitorHeader {
            id: 1,
            degraded: true,
            frozen_at: 2,
            staleness: 3,
            counts: 4,
            gaps: 5,
            trace: None,
        });
        for cut in 0..body.len() {
            assert!(decode_body(&body[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn absent_trace_context_is_the_v1_layout() {
        let bare = encode_body(&Frame::Request {
            id: 9,
            req: Request::QueueMonitor { port: 2, at: 500 },
            trace: None,
        });
        let traced = encode_body(&Frame::Request {
            id: 9,
            req: Request::QueueMonitor { port: 2, at: 500 },
            trace: Some(TraceContext {
                trace_id: 42,
                parent_span: 7,
                sampled: true,
            }),
        });
        // The extension is a pure suffix: same prefix, exactly
        // TRACE_EXT_LEN extra bytes, led by the magic.
        assert_eq!(traced.len(), bare.len() + TRACE_EXT_LEN);
        assert_eq!(&traced[..bare.len()], &bare[..]);
        assert_eq!(traced[bare.len()], TRACE_EXT_MAGIC);
    }

    #[test]
    fn hostile_trace_extensions_are_rejected() {
        let bare = encode_body(&Frame::Request {
            id: 9,
            req: Request::QueueMonitor { port: 2, at: 500 },
            trace: None,
        });
        let traced = encode_body(&Frame::Request {
            id: 9,
            req: Request::QueueMonitor { port: 2, at: 500 },
            trace: Some(TraceContext {
                trace_id: 42,
                parent_span: 7,
                sampled: true,
            }),
        });
        // Unknown flag bits.
        let mut body = traced.clone();
        let flags_at = bare.len() + 1;
        body[flags_at] = 0x03;
        assert!(matches!(decode_body(&body), Err(WireError::Malformed(_))));
        // Wrong magic: the block is not an extension, so it is trailing
        // garbage.
        let mut body = traced.clone();
        body[bare.len()] = 0x7D;
        assert!(matches!(decode_body(&body), Err(WireError::Malformed(_))));
        // A truncated extension is never parsed as one.
        for cut in bare.len() + 1..traced.len() {
            assert!(decode_body(&traced[..cut]).is_err(), "cut at {cut}");
        }
        // An over-long tail (extension + extra byte) is rejected too.
        let mut body = traced.clone();
        body.push(0);
        assert!(matches!(decode_body(&body), Err(WireError::Malformed(_))));
    }

    #[test]
    fn hostile_trace_dumps_are_rejected() {
        // Inflated trace count with no bytes behind it.
        let mut body = vec![0x93];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_body(&body), Err(WireError::Malformed(_))));
        // Inflated span count inside an otherwise valid trace.
        let frame = Frame::TraceDumpAck {
            id: 1,
            traces: vec![Trace {
                trace_id: 1,
                root_span: 1,
                duration_ns: 1,
                slow: false,
                spans: vec![],
            }],
        };
        let mut body = encode_body(&frame);
        // The span-count u32 is the last field of the only trace.
        let at = body.len() - 4;
        body[at..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_body(&body), Err(WireError::Malformed(_))));
    }

    #[test]
    fn inflated_count_is_rejected_without_allocating() {
        // A ResultFlows frame claiming u32::MAX entries but carrying none.
        let mut body = vec![0x83];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_body(&body), Err(WireError::Malformed(_))));
        // A ShardMapAck claiming u32::MAX backends but carrying none.
        let mut body = vec![0x8F];
        body.extend_from_slice(&1u64.to_le_bytes()); // id
        body.extend_from_slice(&0u64.to_le_bytes()); // generation
        body.extend_from_slice(&2u32.to_le_bytes()); // replication
        body.extend_from_slice(&0u64.to_le_bytes()); // epoch_ns
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_body(&body), Err(WireError::Malformed(_))));
    }

    #[test]
    fn oversized_length_prefix_is_refused_before_read() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        let mut cur = buf.as_slice();
        assert!(matches!(
            read_frame(&mut cur, MAX_FRAME_LEN),
            Err(WireError::TooLarge { .. })
        ));
        // Nothing past the prefix was consumed.
        assert_eq!(cur.len(), 16);
    }

    #[test]
    fn trailing_bytes_are_a_protocol_error() {
        let mut body = encode_body(&Frame::ResultEnd { id: 3 });
        body.push(0);
        assert!(decode_body(&body).is_err());
    }
}
