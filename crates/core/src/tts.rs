//! Trimmed-timestamp (TTS) arithmetic — Figure 5 of the paper.
//!
//! A window-`i` TTS is the dequeue timestamp right-shifted by `m0 + αi`.
//! Its low `k` bits index a cell; the remaining high bits form the cycle ID
//! that disambiguates ring-buffer laps. A `(cycle, index)` pair therefore
//! reconstructs the TTS, and a TTS reconstructs the (truncated) time span
//! the cell covers.

use crate::params::TimeWindowConfig;
use pq_packet::Nanos;

/// A decomposed trimmed timestamp within one window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Tts {
    /// Cycle ID: the high bits (`tts >> k`).
    pub cycle: u64,
    /// Cell index: the low `k` bits.
    pub index: usize,
}

impl Tts {
    /// Decompose a window-`i` TTS for configuration `config`.
    pub fn from_deq_timestamp(config: &TimeWindowConfig, window: u8, deq_ts: Nanos) -> Tts {
        let tts = deq_ts >> config.shift(window);
        Tts::from_raw(config, tts)
    }

    /// Decompose a raw TTS value.
    pub fn from_raw(config: &TimeWindowConfig, tts: u64) -> Tts {
        Tts {
            cycle: tts >> config.k,
            index: (tts & ((1u64 << config.k) - 1)) as usize,
        }
    }

    /// Recompose the raw TTS value.
    pub fn to_raw(self, config: &TimeWindowConfig) -> u64 {
        (self.cycle << config.k) | self.index as u64
    }

    /// Start of the time span this TTS covers in window `window`.
    pub fn span_start(self, config: &TimeWindowConfig, window: u8) -> Nanos {
        self.to_raw(config) << config.shift(window)
    }

    /// Exclusive end of the time span this TTS covers in window `window`.
    pub fn span_end(self, config: &TimeWindowConfig, window: u8) -> Nanos {
        (self.to_raw(config) + 1) << config.shift(window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example of Figure 5: timestamp 0xAAA9105A with m0 = 7 and
    /// k = 12 splits into cycle 0b1010101010101 and index 0b001000100000 —
    /// wait, the figure shows a 13-bit cycle and 12-bit index after dropping
    /// 7 low bits of a 32-bit timestamp. Check the arithmetic directly.
    #[test]
    fn figure5_example() {
        let config = TimeWindowConfig::new(7, 1, 12, 4);
        let ts: Nanos = 0xAAA9_105A;
        let tts = Tts::from_deq_timestamp(&config, 0, ts);
        let raw = ts >> 7;
        assert_eq!(tts.cycle, raw >> 12);
        assert_eq!(tts.index, (raw & 0xfff) as usize);
        // Cross-check against the figure's bit strings.
        assert_eq!(tts.cycle, 0b1010101010101);
        assert_eq!(tts.index, 0b001000100000);
    }

    #[test]
    fn raw_roundtrip() {
        let config = TimeWindowConfig::UW;
        for raw in [0u64, 1, 4095, 4096, 123_456_789] {
            let tts = Tts::from_raw(&config, raw);
            assert_eq!(tts.to_raw(&config), raw);
        }
    }

    #[test]
    fn deeper_windows_merge_cells() {
        // With alpha = 1, two adjacent window-0 TTS values map to one
        // window-1 TTS (the §4.2 example: TTS 0x3fff000 and 0x3fff001 in
        // window 0 share window-1 TTS 0x1fff800).
        let config = TimeWindowConfig::new(6, 1, 12, 4);
        let a = 0x3fff000u64 << 6; // deq timestamps whose window-0 TTS are
        let b = 0x3fff001u64 << 6; // 0x3fff000 and 0x3fff001
        let a1 = Tts::from_deq_timestamp(&config, 1, a);
        let b1 = Tts::from_deq_timestamp(&config, 1, b);
        assert_eq!(a1, b1);
        assert_eq!(a1.to_raw(&config), 0x1fff800);
    }

    #[test]
    fn span_covers_timestamp() {
        let config = TimeWindowConfig::UW;
        let ts: Nanos = 987_654_321;
        for w in 0..config.t {
            let tts = Tts::from_deq_timestamp(&config, w, ts);
            assert!(tts.span_start(&config, w) <= ts);
            assert!(ts < tts.span_end(&config, w));
            assert_eq!(
                tts.span_end(&config, w) - tts.span_start(&config, w),
                config.cell_period(w)
            );
        }
    }
}
