//! SRAM and control-plane bandwidth models (Figures 13, 14, 15 and the §7.2
//! queue-monitor SRAM figure).
//!
//! Absolute constants are calibrated to the ballpark the paper reports —
//! e.g. the total register SRAM budget is set so a single-port queue
//! monitor lands near the paper's 12.81% utilisation — and every formula is
//! pure arithmetic on the configuration, so relative comparisons (the shape
//! of every figure) are exact.

use crate::params::TimeWindowConfig;
use pq_packet::Nanos;
use serde::{Deserialize, Serialize};

/// Bytes per time-window cell: a 32-bit flow signature plus a 32-bit
/// cycle-ID register pair.
pub const TW_CELL_BYTES: u64 = 8;

/// Bytes per queue-monitor entry: increase and decrease halves of
/// (32-bit flow, 32-bit sequence).
pub const QM_ENTRY_BYTES: u64 = 16;

/// Register copies kept per structure for freeze-and-read (Figure 8: two
/// polling copies plus the special set).
pub const REGISTER_COPIES: u64 = 3;

/// SRAM available to register allocation in the model, in bytes.
///
/// Calibrated so the single-port queue monitor of the case-study setup
/// (32 Ki entries × 16 B × 3 copies = 1.5 MiB) sits at ≈ 12.8% — the
/// utilisation the paper reports in §7.2.
pub const SRAM_BUDGET_BYTES: u64 = 12 * 1024 * 1024;

/// Analysis-program read ceiling in MB/s (PCIe polling + Python front end
/// in the paper; Figure 13's "data exchange limit"). All configurations the
/// paper actually uses sit below this line.
pub const READ_LIMIT_MBPS: f64 = 50.0;

/// Round `ports` up to the next power of two — the paper's `r(#ports)`
/// register partitioning (§6.1).
pub fn r_ports(ports: u32) -> u32 {
    ports.max(1).next_power_of_two()
}

/// Resource summary for one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceModel {
    /// Time-window SRAM in bytes (all copies, all port partitions).
    pub tw_sram_bytes: u64,
    /// Queue-monitor SRAM in bytes.
    pub qm_sram_bytes: u64,
    /// Control-plane read rate required for gap-free coverage, MB/s.
    pub control_mbps: f64,
    /// The set period the read rate is computed against.
    pub set_period: Nanos,
}

impl ResourceModel {
    /// Compute the model for `tw` activated on `ports` ports with a queue
    /// monitor of `qm_entries` entries per port.
    pub fn new(tw: &TimeWindowConfig, ports: u32, qm_entries: u64) -> ResourceModel {
        let partitions = u64::from(r_ports(ports));
        let tw_bytes_one = u64::from(tw.t) * tw.cells() as u64 * TW_CELL_BYTES;
        let qm_bytes_one = qm_entries * QM_ENTRY_BYTES;
        let tw_sram_bytes = tw_bytes_one * partitions * REGISTER_COPIES;
        let qm_sram_bytes = qm_bytes_one * partitions * REGISTER_COPIES;
        // Per set period the control plane reads one copy of everything on
        // every *active* port (not the rounded partition count).
        let set_period = tw.set_period();
        let read_bytes = (tw_bytes_one + qm_bytes_one) * u64::from(ports.max(1));
        let control_mbps = read_bytes as f64 / (set_period as f64 / 1e9) / 1e6;
        ResourceModel {
            tw_sram_bytes,
            qm_sram_bytes,
            control_mbps,
            set_period,
        }
    }

    /// Total SRAM bytes.
    pub fn total_sram(&self) -> u64 {
        self.tw_sram_bytes + self.qm_sram_bytes
    }

    /// Utilisation of the modelled SRAM budget, in percent.
    pub fn sram_utilization_pct(&self) -> f64 {
        self.total_sram() as f64 / SRAM_BUDGET_BYTES as f64 * 100.0
    }

    /// Is the control-plane read rate within the feasibility ceiling?
    pub fn control_feasible(&self) -> bool {
        self.control_mbps <= READ_LIMIT_MBPS
    }
}

/// Storage a *linear* (per-packet) approach needs over `duration` at
/// `pps` packets/sec with `record_bytes` per packet — NetSight/BurstRadar-
/// style logging for Figure 14(a).
pub fn linear_storage_bytes(duration: Nanos, pps: f64, record_bytes: u64) -> f64 {
    pps * (duration as f64 / 1e9) * record_bytes as f64
}

/// Storage PrintQueue's time windows need to *cover* `duration`: the cells
/// of every window whose cumulative span is required, ~independent of
/// packet rate.
///
/// The window count needed is the smallest `T' ≤ T` whose set period
/// reaches `duration`; beyond the configured maximum the duration is simply
/// not coverable and the full size is returned.
pub fn exponential_storage_bytes(tw: &TimeWindowConfig, duration: Nanos) -> f64 {
    let mut covered: Nanos = 0;
    let mut bytes: u64 = 0;
    for i in 0..tw.t {
        if covered >= duration {
            break;
        }
        covered += tw.window_period(i);
        bytes += tw.cells() as u64 * TW_CELL_BYTES;
    }
    bytes as f64
}

/// The window index holding data of age `age` (how far in the past), or the
/// deepest window when the age exceeds the set period.
pub fn window_at_age(tw: &TimeWindowConfig, age: Nanos) -> u8 {
    let mut covered: Nanos = 0;
    for i in 0..tw.t {
        covered += tw.window_period(i);
        if age < covered {
            return i;
        }
    }
    tw.t - 1
}

/// Storage PrintQueue dedicates to representing a span of `duration` whose
/// data has aged `duration` into the structure — Figure 14(a)'s
/// denominator. By then the span's packets live in the window at that age,
/// where one cell covers a whole cell period; a linear system still holds
/// every packet record for the same span (the numerator via
/// [`linear_storage_bytes`]). Larger α pushes age-`duration` data into
/// coarser windows, which is why the ratio curves of Figure 14(a) fan out
/// with α.
pub fn exponential_aged_bytes(tw: &TimeWindowConfig, duration: Nanos) -> f64 {
    let w = window_at_age(tw, duration);
    let cells = (duration / tw.cell_period(w)).clamp(1, tw.cells() as u64);
    (cells * TW_CELL_BYTES) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r_ports_rounds_to_power_of_two() {
        assert_eq!(r_ports(1), 1);
        assert_eq!(r_ports(2), 2);
        assert_eq!(r_ports(3), 4);
        assert_eq!(r_ports(10), 16);
        assert_eq!(r_ports(0), 1);
    }

    #[test]
    fn case_study_qm_utilisation_near_paper() {
        // 32 Ki entries × 16 B × 3 copies = 1.5 MiB of 12 MiB = 12.5%,
        // near the paper's 12.81%.
        let m = ResourceModel::new(&TimeWindowConfig::WS_DM, 1, 32 * 1024);
        let qm_pct = m.qm_sram_bytes as f64 / SRAM_BUDGET_BYTES as f64 * 100.0;
        assert!(
            (11.0..14.5).contains(&qm_pct),
            "queue-monitor utilisation {qm_pct:.2}%"
        );
    }

    #[test]
    fn sram_grows_with_k_and_t() {
        let small = ResourceModel::new(&TimeWindowConfig::new(6, 1, 10, 3), 1, 0);
        let big = ResourceModel::new(&TimeWindowConfig::new(6, 1, 12, 5), 1, 0);
        assert!(big.tw_sram_bytes > small.tw_sram_bytes);
        // k: ×4 cells; T: ×5/3 windows.
        assert_eq!(big.tw_sram_bytes, small.tw_sram_bytes * 4 * 5 / 3);
    }

    #[test]
    fn alpha_does_not_change_sram() {
        // §7.2: "α does not affect resource consumption."
        let a1 = ResourceModel::new(&TimeWindowConfig::new(6, 1, 12, 4), 1, 0);
        let a3 = ResourceModel::new(&TimeWindowConfig::new(6, 3, 12, 4), 1, 0);
        assert_eq!(a1.tw_sram_bytes, a3.tw_sram_bytes);
    }

    #[test]
    fn alpha_reduces_control_bandwidth() {
        // Larger α → longer set period → fewer reads per second.
        let a1 = ResourceModel::new(&TimeWindowConfig::new(6, 1, 12, 4), 1, 0);
        let a2 = ResourceModel::new(&TimeWindowConfig::new(6, 2, 12, 4), 1, 0);
        assert!(a2.control_mbps < a1.control_mbps);
    }

    #[test]
    fn k_does_not_change_control_bandwidth() {
        // §7.2: "The parameter k does not influence parameter feasibility,
        // as the set period and the number of registers are multiplied by
        // the same factor." (Holds for the time-window share.)
        let k11 = ResourceModel::new(&TimeWindowConfig::new(6, 2, 11, 4), 1, 0);
        let k12 = ResourceModel::new(&TimeWindowConfig::new(6, 2, 12, 4), 1, 0);
        assert!((k11.control_mbps - k12.control_mbps).abs() < 1e-9);
    }

    #[test]
    fn paper_configs_are_feasible() {
        for tw in [TimeWindowConfig::UW, TimeWindowConfig::WS_DM] {
            let m = ResourceModel::new(&tw, 1, 32 * 1024);
            assert!(
                m.control_feasible(),
                "{} needs {:.1} MB/s",
                tw.label(),
                m.control_mbps
            );
        }
    }

    #[test]
    fn linear_vs_exponential_grows_with_duration() {
        // Figure 14(a): the advantage ratio grows with the covered
        // duration, reaching orders of magnitude.
        let tw = TimeWindowConfig::new(6, 2, 12, 5);
        let pps = 9.1e6; // UW
        let record = 16u64; // per-packet telemetry record
        let r_short =
            linear_storage_bytes(1 << 19, pps, record) / exponential_storage_bytes(&tw, 1 << 19);
        let r_long =
            linear_storage_bytes(1 << 23, pps, record) / exponential_storage_bytes(&tw, 1 << 23);
        assert!(r_long > r_short, "ratio must grow: {r_short} vs {r_long}");
    }

    #[test]
    fn window_at_age_walks_coverage() {
        let tw = TimeWindowConfig::new(6, 1, 12, 4); // periods 2^18..2^21
        assert_eq!(window_at_age(&tw, 0), 0);
        assert_eq!(window_at_age(&tw, (1 << 18) - 1), 0);
        assert_eq!(window_at_age(&tw, 1 << 18), 1);
        assert_eq!(window_at_age(&tw, (1 << 18) + (1 << 19)), 2);
        assert_eq!(window_at_age(&tw, u64::MAX >> 1), 3);
    }

    #[test]
    fn aged_storage_advantage_fans_out_with_alpha() {
        // The same aged duration costs fewer cells under larger α: the
        // data has been compressed into a coarser window.
        let d = 1u64 << 22;
        let a1 = exponential_aged_bytes(&TimeWindowConfig::new(6, 1, 12, 5), d);
        let a3 = exponential_aged_bytes(&TimeWindowConfig::new(6, 3, 12, 5), d);
        assert!(a3 < a1, "alpha=3 should compress more: {a3} vs {a1}");
        // And the linear:exponential ratio at 2^22 should reach well into
        // the hundreds for α=3 with NetSight-sized (~40 B) postcards
        // (the paper: up to three orders of magnitude).
        let ratio = linear_storage_bytes(d, 9.1e6, 40) / a3;
        assert!(ratio > 100.0, "ratio only {ratio}");
    }

    #[test]
    fn ten_ports_with_small_k_fit() {
        // Figure 15: with α=2 and shrunken k, 10 ports fit the budget.
        let m = ResourceModel::new(&TimeWindowConfig::new(10, 2, 10, 4), 10, 4096);
        assert!(
            m.sram_utilization_pct() < 100.0,
            "10-port config uses {:.1}%",
            m.sram_utilization_pct()
        );
    }
}
