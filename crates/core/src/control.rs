//! The control-plane analysis program (§6 of the paper).
//!
//! Three responsibilities: (1) per-port configuration, (2) checkpointing the
//! time windows and queue monitor by periodically 'freezing' register sets,
//! and (3) executing queries against the stored snapshots.
//!
//! Register freezing follows Figure 8 / Mantis: a flip of the
//! second-highest index bit diverts per-packet updates to a spare register
//! copy *for the duration of the read*, giving the control plane an atomic,
//! serializable snapshot; a data-plane-triggered query flips the highest
//! bit instead, and the frozen 'special' set stays locked (further triggers
//! are ignored) until read. Crucially, the read lasts milliseconds while
//! `t_set` spans tens of milliseconds, so one primary copy receives
//! (essentially) every packet and its ring buffers roll continuously —
//! that continuity is what keeps the deep windows populated.
//!
//! By default control-plane reads complete in zero simulated time, so the
//! flip diverts zero packets: reading reduces to an atomic bulk copy of the
//! live registers, and the spare copies exist only in the SRAM and
//! bandwidth accounting ([`crate::resources`]). The special-set lock is
//! still modeled (a data-plane query arriving while one is outstanding is
//! dropped, §6.2), as is the paper's constraint that polls happen at least
//! once per set period.
//!
//! A [`FaultInjector`] (see [`crate::faults`]) lifts the perfect-substrate
//! assumption: reads can fail, stall, and take real time — during which the
//! spare copy stays occupied, so a second poll is queued behind it and a
//! second trigger is rejected per the special-set-lock semantics — and
//! completed checkpoints can be lost before storage. Failed reads retry
//! with capped exponential backoff and jitter. Whenever the gap between
//! stored periodic checkpoints exceeds `t_set`, the rings have wrapped and
//! history is unrecoverable; the store records a [`CoverageGap`] and
//! queries overlapping it come back flagged degraded instead of silently
//! blending stale state. With no injector configured every code path
//! reduces exactly to the original synchronous, infallible behavior.
//!
//! The snapshot store also enforces the paper's feasibility constraint: a
//! configurable read-rate ceiling models PCIe/analysis-program throughput
//! (Figure 13's "data exchange limit"); reads that would exceed it are
//! reported so experiments can mark infeasible configurations.

use crate::coefficient::Coefficients;
use crate::faults::{FaultConfig, FaultInjector, RetryPolicy};
use crate::metrics::{ControlCounters, ControlHealth};
use crate::params::TimeWindowConfig;
use crate::queue_monitor::{QueueMonitor, QueueMonitorSnapshot};
use crate::snapshot::{FlowEstimates, QueryInterval, TimeWindowSnapshot};
use crate::time_windows::TimeWindowSet;
use pq_packet::{FlowId, Nanos};
use pq_telemetry::{names, Telemetry};
use serde::{Deserialize, Serialize};
use std::ops::Deref;

/// Bound on stored coverage gaps per port (a safety valve for pathological
/// runs; at one gap per missed set period this covers hours of simulated
/// outage before the oldest records rotate out).
const MAX_STORED_GAPS: usize = 4096;

/// Control-plane configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ControlConfig {
    /// Poll period. Must be ≤ the set period or coverage gaps appear
    /// (§6.2: "at least once per t_set"). Defaults to the set period.
    pub poll_period: Nanos,
    /// Maximum number of stored snapshots (a ring of recent history).
    pub max_snapshots: usize,
}

impl ControlConfig {
    /// Poll exactly once per set period, keeping `max_snapshots` snapshots.
    pub fn per_set_period(tw: &TimeWindowConfig, max_snapshots: usize) -> ControlConfig {
        ControlConfig {
            poll_period: tw.set_period(),
            max_snapshots,
        }
    }
}

/// A span of time over which the periodic-checkpoint chain lost coverage:
/// more than `t_set` passed after `from` without a stored checkpoint, so
/// ring history between the endpoints may have been overwritten unread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageGap {
    /// The last successfully stored periodic checkpoint before the gap.
    pub from: Nanos,
    /// The checkpoint (or query horizon) that closed the gap.
    pub to: Nanos,
}

impl CoverageGap {
    /// Gap length in nanoseconds.
    pub fn len(&self) -> Nanos {
        self.to.saturating_sub(self.from)
    }

    /// True for a degenerate (zero-length) gap.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Does this gap overlap the closed query interval?
    pub fn overlaps(&self, interval: QueryInterval) -> bool {
        self.from <= interval.to && self.to >= interval.from
    }

    /// Does `at` fall inside the gap?
    pub fn contains(&self, at: Nanos) -> bool {
        self.from <= at && at <= self.to
    }
}

/// A time-window query answer annotated with control-plane coverage.
///
/// Dereferences to its [`FlowEstimates`], so call sites that only care
/// about counts keep working unchanged; resilience-aware callers inspect
/// [`QueryResult::degraded`] and [`QueryResult::gaps`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryResult {
    /// Per-flow estimated packet counts over the interval.
    pub estimates: FlowEstimates,
    /// Coverage gaps overlapping the query interval.
    pub gaps: Vec<CoverageGap>,
    /// True when any part of the interval fell in a coverage gap: the
    /// estimates may silently miss traffic and should be treated as a
    /// lower-confidence answer.
    pub degraded: bool,
}

impl Deref for QueryResult {
    type Target = FlowEstimates;

    fn deref(&self) -> &FlowEstimates {
        &self.estimates
    }
}

/// A queue-monitor query answer annotated with freshness and coverage.
///
/// Dereferences to the underlying [`QueueMonitorSnapshot`].
#[derive(Debug, Clone)]
pub struct QueueMonitorAnswer<'a> {
    /// The stored snapshot closest to the requested instant.
    pub snapshot: &'a QueueMonitorSnapshot,
    /// When that snapshot was frozen.
    pub frozen_at: Nanos,
    /// Distance between the requested instant and the freeze.
    pub staleness: Nanos,
    /// Coverage gaps containing the requested instant.
    pub gaps: Vec<CoverageGap>,
    /// True when the requested instant fell in a coverage gap or the
    /// nearest snapshot is more than `t_set` away.
    pub degraded: bool,
}

impl Deref for QueueMonitorAnswer<'_> {
    type Target = QueueMonitorSnapshot;

    fn deref(&self) -> &QueueMonitorSnapshot {
        self.snapshot
    }
}

/// A stored checkpoint of one port's data-plane state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// When the freeze happened.
    pub frozen_at: Nanos,
    /// Whether this came from a data-plane trigger (special registers) or a
    /// periodic poll.
    pub on_demand: bool,
    /// For on-demand reads: the triggering packet's query interval.
    pub trigger: Option<QueryInterval>,
    /// Frozen time windows (filtered lazily at query time).
    pub windows: TimeWindowSnapshot,
    /// Frozen queue monitors, one per egress queue (FIFO ports have one).
    pub queue_monitors: Vec<QueueMonitorSnapshot>,
}

impl Checkpoint {
    /// The first (or only) queue's monitor snapshot, if any queue was
    /// monitored.
    pub fn queue_monitor(&self) -> Option<&QueueMonitorSnapshot> {
        self.queue_monitors.first()
    }
}

/// A destination for completed checkpoints, fed incrementally as the
/// control plane stores them (the spill hook behind `pq-store`'s streaming
/// [`StoreWriter`](https://docs.rs/pq-store)).
///
/// The in-RAM snapshot ring stays bounded at `max_snapshots`; a sink
/// observes *every* stored checkpoint before rotation can evict it, so a
/// long run's full history can live on disk while RAM holds only the
/// recent working set. Sink errors never disrupt the data plane: the
/// analysis program counts them in [`ControlHealth::spill_errors`] and
/// keeps polling.
///
/// Sinks must be `Send + Sync`: an [`AnalysisProgram`] is shared
/// immutably across query-service worker threads (`Arc`), so everything
/// it owns — including an attached sink — has to be thread-safe at the
/// type level even though queries never touch the sink.
pub trait CheckpointSink: Send + Sync {
    /// A checkpoint was stored for `port`.
    fn on_checkpoint(&mut self, port: u16, cp: &Checkpoint) -> std::io::Result<()>;

    /// A coverage gap was recorded for `port`.
    fn on_gap(&mut self, _port: u16, _gap: CoverageGap) -> std::io::Result<()> {
        Ok(())
    }
}

/// A failed (or deferred) read waiting to run again.
#[derive(Debug, Clone, Copy)]
struct PendingRead {
    /// Earliest instant the next attempt may run.
    next_attempt_at: Nanos,
    /// How many attempts have already failed (0 = a deferred first try).
    attempt: u32,
    on_demand: bool,
    trigger: Option<QueryInterval>,
}

/// One port's data-plane register state.
///
/// Physically there are three copies (primary, read spare, special — see
/// the module docs); since reads divert zero packets in simulated time,
/// only the primary holds data and the spares appear in the resource
/// accounting alone.
struct PortRegisters {
    time_windows: TimeWindowSet,
    /// One monitor per egress queue — "multiple queues are tracked
    /// individually" (§5). FIFO ports have exactly one.
    queue_monitors: Vec<QueueMonitor>,
    /// A data-plane-triggered special read holds its register set until
    /// this instant; triggers arriving earlier are ignored. With
    /// zero-latency reads this expires immediately, reproducing the
    /// original synchronous-release behavior.
    special_locked_until: Nanos,
    /// A read (periodic or on-demand) occupies the spare copy until this
    /// instant; a periodic poll arriving earlier is queued behind it.
    read_busy_until: Nanos,
    /// A failed or deferred read awaiting its next attempt.
    retry: Option<PendingRead>,
    /// When the last *periodic* checkpoint was stored (for missed-poll
    /// detection; on-demand reads answer a different question and do not
    /// extend coverage of the periodic chain).
    last_checkpoint_at: Option<Nanos>,
    /// Index of the last set-period boundary a dequeue crossed, for
    /// window-rotation span tracing.
    last_rotation: u64,
}

impl PortRegisters {
    fn new(
        tw: &TimeWindowConfig,
        qm_entries: usize,
        qm_cells_per_entry: u32,
        queues: u8,
        passing: bool,
    ) -> PortRegisters {
        let mut time_windows = TimeWindowSet::new(*tw);
        if !passing {
            time_windows = time_windows.without_passing();
        }
        PortRegisters {
            time_windows,
            queue_monitors: (0..queues.max(1))
                .map(|_| QueueMonitor::new(qm_entries, qm_cells_per_entry))
                .collect(),
            special_locked_until: 0,
            read_busy_until: 0,
            retry: None,
            last_checkpoint_at: None,
            last_rotation: 0,
        }
    }

    fn monitor_mut(&mut self, queue: u8) -> &mut QueueMonitor {
        let last = self.queue_monitors.len() - 1;
        &mut self.queue_monitors[usize::from(queue).min(last)]
    }
}

/// The per-switch analysis program plus the data-plane register files it
/// manages. (In hardware these live on opposite sides of PCIe; co-locating
/// them in one type keeps the simulation simple while the access paths stay
/// separate: packets touch only the active copy, the control plane only
/// frozen copies.)
pub struct AnalysisProgram {
    tw_config: TimeWindowConfig,
    control: ControlConfig,
    coeffs: Coefficients,
    ports: Vec<(u16, PortRegisters)>,
    /// Stored checkpoints, oldest first, per port (parallel to `ports`).
    checkpoints: Vec<Vec<Checkpoint>>,
    /// Recorded coverage gaps, oldest first, per port (parallel to `ports`).
    gaps: Vec<Vec<CoverageGap>>,
    /// Optional fault injection (`None` = the perfect substrate: reads are
    /// instantaneous and infallible, exactly the original behavior).
    faults: Option<FaultInjector>,
    /// Backoff policy for failed reads.
    retry_policy: RetryPolicy,
    /// Optional spill destination observing every stored checkpoint (the
    /// streaming persistence hook; `None` keeps everything in RAM only).
    spill: Option<Box<dyn CheckpointSink>>,
    /// The telemetry plane every health counter records into. A private
    /// default plane until [`AnalysisProgram::set_telemetry`] attaches a
    /// shared one, so counting never needs a null check.
    telemetry: Telemetry,
    /// Pre-resolved control-plane counter handles into `telemetry`.
    counters: ControlCounters,
    /// Serialises the freeze-and-read critical section. The simulation
    /// is single-threaded today, so this never blocks — it exists as
    /// the *measurement point*: pq-prof publishes its wait/hold times
    /// as `pq_lock_wait_ns{lock="freeze"}` / `pq_lock_hold_ns`, the
    /// before/after evidence the ROADMAP lock-removal refactor (item 2)
    /// names as its success criterion. Poisoning (a reader panicking
    /// mid-freeze) is recovered and surfaced as a [`CoverageGap`], not
    /// propagated — a panicked worker must not wedge the control loop.
    freeze_gate: pq_prof::PqMutex<()>,
    /// Cumulative register entries read by the control plane (for the
    /// bandwidth model).
    pub entries_read: u64,
    /// Cumulative bytes read.
    pub bytes_read: u64,
    /// Data-plane queries ignored because the special set was locked.
    pub dp_queries_ignored: u64,
    last_poll: Nanos,
}

impl AnalysisProgram {
    /// Configure PrintQueue on `ports` (§6.1), with queue monitors of
    /// `qm_entries` × `qm_cells_per_entry` granularity, and `d` =
    /// minimum-packet transmission delay for the coefficient boot value.
    pub fn new(
        tw_config: TimeWindowConfig,
        control: ControlConfig,
        ports: &[u16],
        qm_entries: usize,
        qm_cells_per_entry: u32,
        d: Nanos,
    ) -> AnalysisProgram {
        Self::with_options(
            tw_config,
            control,
            ports,
            qm_entries,
            qm_cells_per_entry,
            d,
            1,
            true,
        )
    }

    /// [`AnalysisProgram::new`] with per-port queue count (each queue gets
    /// its own monitor) and the Algorithm-1 passing rule made optional
    /// (`passing = false` is the ablation: every eviction drops).
    #[allow(clippy::too_many_arguments)]
    pub fn with_options(
        tw_config: TimeWindowConfig,
        control: ControlConfig,
        ports: &[u16],
        qm_entries: usize,
        qm_cells_per_entry: u32,
        d: Nanos,
        queues_per_port: u8,
        passing: bool,
    ) -> AnalysisProgram {
        assert!(!ports.is_empty(), "activate at least one port");
        assert!(
            control.poll_period <= tw_config.set_period(),
            "poll period {} exceeds set period {} — coverage gap",
            control.poll_period,
            tw_config.set_period()
        );
        let telemetry = Telemetry::new();
        let counters = ControlCounters::resolve(&telemetry);
        AnalysisProgram {
            coeffs: Coefficients::compute(&tw_config, d),
            ports: ports
                .iter()
                .map(|p| {
                    (
                        *p,
                        PortRegisters::new(
                            &tw_config,
                            qm_entries,
                            qm_cells_per_entry,
                            queues_per_port,
                            passing,
                        ),
                    )
                })
                .collect(),
            checkpoints: vec![Vec::new(); ports.len()],
            gaps: vec![Vec::new(); ports.len()],
            faults: None,
            retry_policy: RetryPolicy::default(),
            spill: None,
            telemetry,
            counters,
            freeze_gate: pq_prof::PqMutex::new("freeze", ()),
            tw_config,
            control,
            entries_read: 0,
            bytes_read: 0,
            dp_queries_ignored: 0,
            last_poll: 0,
        }
    }

    /// The time-window configuration.
    pub fn tw_config(&self) -> &TimeWindowConfig {
        &self.tw_config
    }

    /// The recovery coefficients in use.
    pub fn coefficients(&self) -> &Coefficients {
        &self.coeffs
    }

    /// Install a fault injector (see [`crate::faults`]). Reads issued from
    /// now on are subject to the configured failures, latencies, stalls,
    /// and checkpoint drops.
    pub fn set_faults(&mut self, config: FaultConfig) {
        self.faults = Some(FaultInjector::new(config));
    }

    /// The installed fault injector, if any.
    pub fn faults(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }

    /// Replace the retry/backoff policy for failed reads.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry_policy = policy;
    }

    /// The retry/backoff policy in force.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry_policy
    }

    /// Install a checkpoint spill sink. Every checkpoint stored (and every
    /// coverage gap recorded) from now on is also handed to the sink, so
    /// history survives the in-RAM ring's rotation. Replaces any previous
    /// sink.
    pub fn set_spill(&mut self, sink: Box<dyn CheckpointSink>) {
        self.spill = Some(sink);
    }

    /// Remove and return the installed spill sink (e.g. to finalize a
    /// store after the run).
    pub fn take_spill(&mut self) -> Option<Box<dyn CheckpointSink>> {
        self.spill.take()
    }

    /// Control-plane health counters, read out of the telemetry registry
    /// (the registry is the source of truth; this struct is a view).
    pub fn health(&self) -> ControlHealth {
        self.counters.health()
    }

    /// Attach a shared telemetry plane. All health counters, the
    /// freeze-and-read latency histogram, and (when tracing is enabled)
    /// freeze-and-read / window-rotation spans record into it from now on;
    /// counts accumulated under the previous plane are carried over so
    /// totals never regress.
    pub fn set_telemetry(&mut self, plane: &Telemetry) {
        let old = self.counters.health();
        let counters = ControlCounters::resolve(plane);
        counters.seed(&old, self.entries_read, self.bytes_read);
        self.counters = counters;
        self.telemetry = plane.clone();
    }

    /// The telemetry plane in use (a private default until
    /// [`AnalysisProgram::set_telemetry`] replaces it).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Recorded coverage gaps for `port`, oldest first.
    pub fn coverage_gaps(&self, port: u16) -> &[CoverageGap] {
        let i = self.port_index(port).expect("port not activated");
        &self.gaps[i]
    }

    fn port_index(&self, port: u16) -> Option<usize> {
        self.ports.iter().position(|(p, _)| *p == port)
    }

    /// Is PrintQueue active on `port` (the §6.1 ingress gate table)?
    pub fn is_active(&self, port: u16) -> bool {
        self.port_index(port).is_some()
    }

    /// Every activated port, in activation order.
    pub fn ports(&self) -> Vec<u16> {
        self.ports.iter().map(|(p, _)| *p).collect()
    }

    /// Data-plane update: a packet of `flow` dequeued from `port` at
    /// `deq_ts`. Feeds the primary time-window copy.
    pub fn record_dequeue(&mut self, port: u16, flow: FlowId, deq_ts: Nanos) {
        if let Some(i) = self.port_index(port) {
            self.ports[i].1.time_windows.record(flow, deq_ts);
            if self.telemetry.tracing_enabled() {
                // One span per completed set period: the rings rotate every
                // t_set, and a dequeue past the next boundary closes the
                // previous rotation.
                let t_set = self.tw_config.set_period();
                let boundary = deq_ts / t_set;
                let regs = &mut self.ports[i].1;
                if boundary > regs.last_rotation {
                    self.telemetry.spans().record(
                        names::SPAN_WINDOW_ROTATION,
                        regs.last_rotation * t_set,
                        boundary * t_set,
                        u32::from(port),
                    );
                    regs.last_rotation = boundary;
                }
            }
        }
    }

    /// Data-plane update for queue `queue`'s monitor on enqueue.
    pub fn qm_enqueue(&mut self, port: u16, queue: u8, flow: FlowId, depth_cells: u32, now: Nanos) {
        if let Some(i) = self.port_index(port) {
            self.ports[i]
                .1
                .monitor_mut(queue)
                .on_enqueue(flow, depth_cells, now);
        }
    }

    /// Data-plane update for queue `queue`'s monitor on dequeue.
    pub fn qm_dequeue(&mut self, port: u16, queue: u8, flow: FlowId, depth_cells: u32, now: Nanos) {
        if let Some(i) = self.port_index(port) {
            self.ports[i]
                .1
                .monitor_mut(queue)
                .on_dequeue(flow, depth_cells, now);
        }
    }

    /// Periodic control-plane tick. Services due retries first, then — when
    /// a poll period has elapsed — freezes and reads every active port's
    /// registers (§6.2 "periodic reads").
    pub fn on_tick(&mut self, now: Nanos) {
        let serviced = self.service_retries(now);
        if now < self.last_poll + self.control.poll_period {
            return;
        }
        self.last_poll = now;
        for (i, &just_read) in serviced.iter().enumerate() {
            // A port serviced by a retry at this very tick was just read;
            // a port with a pending retry has a read in flight that
            // subsumes this poll; a port whose spare copy is still occupied
            // queues the poll behind the in-flight read.
            if just_read || self.ports[i].1.retry.is_some() {
                continue;
            }
            let busy_until = self.ports[i].1.read_busy_until;
            if now < busy_until {
                self.ports[i].1.retry = Some(PendingRead {
                    next_attempt_at: busy_until,
                    attempt: 0,
                    on_demand: false,
                    trigger: None,
                });
                continue;
            }
            self.attempt_read(i, now, false, None, 0);
        }
    }

    /// Run every due pending read; returns which ports were serviced.
    fn service_retries(&mut self, now: Nanos) -> Vec<bool> {
        let mut serviced = vec![false; self.ports.len()];
        for (i, slot) in serviced.iter_mut().enumerate() {
            let due = matches!(self.ports[i].1.retry, Some(p) if now >= p.next_attempt_at);
            if !due {
                continue;
            }
            let pending = self.ports[i].1.retry.take().expect("pending read is due");
            self.attempt_read(i, now, pending.on_demand, pending.trigger, pending.attempt);
            *slot = true;
        }
        serviced
    }

    /// A data-plane query trigger fired on `port` for a packet whose
    /// queueing spanned `interval` (§6.2 "on-demand reads"). Returns true
    /// when the trigger was honored (possibly completing only after
    /// retries), false when ignored because a special read was already in
    /// progress.
    pub fn dp_query(&mut self, port: u16, interval: QueryInterval, now: Nanos) -> bool {
        let Some(i) = self.port_index(port) else {
            return false;
        };
        let regs = &self.ports[i].1;
        let special_busy =
            now < regs.special_locked_until || matches!(regs.retry, Some(p) if p.on_demand);
        if special_busy {
            // "Concurrent reads will be temporarily ignored until
            // PrintQueue can finish reading the special register set."
            self.dp_queries_ignored += 1;
            self.counters.dp_triggers_rejected.inc();
            return false;
        }
        self.attempt_read(i, now, true, Some(interval), 0);
        true
    }

    /// One freeze-and-read attempt against port `i`. Succeeds and stores a
    /// checkpoint, or (under fault injection) fails/stalls and schedules a
    /// backed-off retry. Returns whether a read completed now.
    fn attempt_read(
        &mut self,
        i: usize,
        now: Nanos,
        on_demand: bool,
        trigger: Option<QueryInterval>,
        attempt: u32,
    ) -> bool {
        self.counters.polls_attempted.inc();
        if attempt > 0 {
            self.counters.polls_retried.inc();
        }
        if self.faults.is_none() {
            // Perfect substrate: the original synchronous, infallible read.
            self.complete_read(i, now, 0, on_demand, trigger, false);
            return true;
        }
        let port = self.ports[i].0;
        let injector = self.faults.as_mut().expect("injector present");
        let failed = if injector.stalled(port, now) {
            self.counters.polls_stalled.inc();
            true
        } else if injector.read_fails(port) {
            self.counters.polls_failed.inc();
            true
        } else {
            false
        };
        if failed {
            if self.retry_policy.at_ceiling(attempt) {
                self.counters.backoff_ceiling_hits.inc();
            }
            let delay = self
                .faults
                .as_mut()
                .expect("injector present")
                .backoff(&self.retry_policy, attempt);
            self.ports[i].1.retry = Some(PendingRead {
                next_attempt_at: now.saturating_add(delay),
                attempt: attempt.saturating_add(1),
                on_demand,
                trigger,
            });
            return false;
        }
        let injector = self.faults.as_mut().expect("injector present");
        let latency = injector.read_latency(port);
        let dropped = injector.drop_checkpoint(port);
        self.complete_read(i, now, latency, on_demand, trigger, dropped);
        true
    }

    /// Freeze-and-read port `i`'s registers into a checkpoint. The rings
    /// keep rolling (see the module docs on why nothing is flipped or
    /// cleared in zero-read-time simulation); the read occupies the spare
    /// (or special) copy for `latency` nanoseconds.
    fn complete_read(
        &mut self,
        i: usize,
        now: Nanos,
        latency: Nanos,
        on_demand: bool,
        trigger: Option<QueryInterval>,
        dropped: bool,
    ) {
        pq_prof::scope!("control/freeze_read");
        let gate = self.freeze_gate.lock();
        if gate.was_poisoned() {
            // A reader died mid-freeze. Recover, but surface the event
            // the way every other degradation surfaces: a coverage gap
            // at the recovery instant (zero-length — no history was
            // provably lost, but the record and the counters mark it).
            let gap = CoverageGap { from: now, to: now };
            self.counters.coverage_gaps.inc();
            if let Some(sink) = self.spill.as_mut() {
                if sink.on_gap(self.ports[i].0, gap).is_err() {
                    self.counters.spill_errors.inc();
                }
            }
            self.gaps[i].push(gap);
        }
        let regs = &mut self.ports[i].1;
        if on_demand {
            // The special set stays locked for the duration of the read;
            // with zero latency this expires immediately, reproducing the
            // original synchronous release.
            regs.special_locked_until = now.saturating_add(latency);
        }
        regs.read_busy_until = regs.read_busy_until.max(now.saturating_add(latency));
        let windows = TimeWindowSnapshot::capture(&regs.time_windows);
        let queue_monitors: Vec<QueueMonitorSnapshot> =
            regs.queue_monitors.iter().map(|m| m.snapshot()).collect();
        drop(gate);

        // Bandwidth accounting: every cell of every window (8 B) plus every
        // queue-monitor entry (16 B: two halves of flow+seq). The bytes
        // crossed PCIe even if the checkpoint is subsequently lost.
        let tw_entries = u64::from(self.tw_config.t) * self.tw_config.cells() as u64;
        let qm_entries: u64 = queue_monitors.iter().map(|m| m.entries.len() as u64).sum();
        self.entries_read += tw_entries + qm_entries;
        self.bytes_read += tw_entries * 8 + qm_entries * 16;
        self.counters.entries_read.add(tw_entries + qm_entries);
        self.counters
            .bytes_read
            .add(tw_entries * 8 + qm_entries * 16);
        self.counters.read_ns.record(latency);
        if self.telemetry.tracing_enabled() {
            self.telemetry.spans().record(
                names::SPAN_FREEZE_READ,
                now,
                now.saturating_add(latency),
                u32::from(self.ports[i].0),
            );
        }

        if dropped {
            // Lost before storage: the periodic chain keeps its old
            // `last_checkpoint_at`, so the next successful store sees (and
            // records) the full gap this loss opened.
            self.counters.checkpoints_dropped.inc();
            return;
        }

        if !on_demand {
            // Missed-poll detection: the rings only hold `t_set` of
            // history, so a longer silence means unrecoverable loss.
            let t_set = self.tw_config.set_period();
            if let Some(last) = self.ports[i].1.last_checkpoint_at {
                if now.saturating_sub(last) > t_set {
                    let gap = CoverageGap {
                        from: last,
                        to: now,
                    };
                    self.counters.coverage_gaps.inc();
                    self.counters.gap_ns.add(gap.len());
                    if let Some(sink) = self.spill.as_mut() {
                        if sink.on_gap(self.ports[i].0, gap).is_err() {
                            self.counters.spill_errors.inc();
                        }
                    }
                    self.gaps[i].push(gap);
                    if self.gaps[i].len() > MAX_STORED_GAPS {
                        let excess = self.gaps[i].len() - MAX_STORED_GAPS;
                        self.gaps[i].drain(..excess);
                    }
                }
            }
            self.ports[i].1.last_checkpoint_at = Some(now);
        }
        self.counters.checkpoints_stored.inc();

        let cp = Checkpoint {
            frozen_at: now,
            on_demand,
            trigger,
            windows,
            queue_monitors,
        };
        if let Some(sink) = self.spill.as_mut() {
            if sink.on_checkpoint(self.ports[i].0, &cp).is_err() {
                self.counters.spill_errors.inc();
            }
        }
        let store = &mut self.checkpoints[i];
        store.push(cp);
        if store.len() > self.control.max_snapshots {
            let excess = store.len() - self.control.max_snapshots;
            store.drain(..excess);
        }
    }

    /// All stored checkpoints for `port`, oldest first.
    pub fn checkpoints(&self, port: u16) -> &[Checkpoint] {
        let i = self.port_index(port).expect("port not activated");
        &self.checkpoints[i]
    }

    /// §6.3 asynchronous time-window query: per-flow packet counts over
    /// `interval` on `port`, splitting the interval across every stored
    /// checkpoint that covers part of it. The answer is annotated with any
    /// coverage gaps overlapping the interval.
    pub fn query_time_windows(&self, port: u16, interval: QueryInterval) -> QueryResult {
        self.query_time_windows_with(port, interval, &self.coeffs)
    }

    /// Like [`AnalysisProgram::query_time_windows`] but with caller-supplied
    /// coefficients (the coefficient-recovery ablation passes all-ones).
    pub fn query_time_windows_with(
        &self,
        port: u16,
        interval: QueryInterval,
        coeffs: &Coefficients,
    ) -> QueryResult {
        let i = self.port_index(port).expect("port not activated");
        let mut result = FlowEstimates::default();
        let mut prev_frozen_at: Option<Nanos> = None;
        for cp in &self.checkpoints[i] {
            // A periodic checkpoint covers at most (prev_freeze, freeze];
            // clamp the query to that slice to avoid double counting when
            // polls are more frequent than the set period.
            let slice_from = interval.from.max(prev_frozen_at.map_or(0, |t| t + 1));
            let slice_to = interval.to.min(cp.frozen_at);
            if !cp.on_demand {
                prev_frozen_at = Some(cp.frozen_at);
            }
            if slice_from > slice_to || cp.on_demand {
                continue;
            }
            let est = cp
                .windows
                .query(QueryInterval::new(slice_from, slice_to), coeffs);
            result.merge(&est);
        }
        let mut gaps: Vec<CoverageGap> = self.gaps[i]
            .iter()
            .filter(|g| g.overlaps(interval))
            .copied()
            .collect();
        // An interval reaching more than `t_set` past the last stored
        // periodic checkpoint extends into territory no future poll can
        // recover — an open-ended gap (e.g. an outage still in progress).
        let t_set = self.tw_config.set_period();
        // A program that never stored a checkpoint has covered nothing
        // since t = 0, so the open gap starts there.
        let last = self.ports[i].1.last_checkpoint_at.unwrap_or(0);
        if interval.to > last.saturating_add(t_set) {
            gaps.push(CoverageGap {
                from: last,
                to: interval.to,
            });
        }
        QueryResult {
            degraded: !gaps.is_empty(),
            estimates: result,
            gaps,
        }
    }

    /// Query an on-demand (special) checkpoint directly: the data-plane
    /// query path, which reads the freshest registers. `which` selects among
    /// on-demand checkpoints (`None` = most recent).
    pub fn query_special(&self, port: u16, which: Option<usize>) -> Option<FlowEstimates> {
        let i = self.port_index(port).expect("port not activated");
        let specials: Vec<usize> = self.checkpoints[i]
            .iter()
            .enumerate()
            .filter(|(_, c)| c.on_demand)
            .map(|(idx, _)| idx)
            .collect();
        let idx = match which {
            Some(w) => *specials.get(w)?,
            None => *specials.last()?,
        };
        let cp = &self.checkpoints[i][idx];
        let interval = cp.trigger?;
        Some(cp.windows.query(interval, &self.coeffs))
    }

    /// §6.3 queue-monitor query: the original culprits at the instant
    /// closest to `at`, for the port's first queue (FIFO ports). The answer
    /// carries freshness and coverage annotations.
    pub fn query_queue_monitor(&self, port: u16, at: Nanos) -> Option<QueueMonitorAnswer<'_>> {
        self.query_queue_monitor_for(port, 0, at)
    }

    /// Per-queue variant of [`AnalysisProgram::query_queue_monitor`]: the
    /// original culprits of one specific egress queue ("the queue monitor
    /// can track each priority or rank separately", §5).
    pub fn query_queue_monitor_for(
        &self,
        port: u16,
        queue: u8,
        at: Nanos,
    ) -> Option<QueueMonitorAnswer<'_>> {
        let i = self.port_index(port).expect("port not activated");
        let cp = self.checkpoints[i]
            .iter()
            .min_by_key(|cp| cp.frozen_at.abs_diff(at))?;
        let snapshot = cp.queue_monitors.get(usize::from(queue))?;
        let staleness = cp.frozen_at.abs_diff(at);
        let gaps: Vec<CoverageGap> = self.gaps[i]
            .iter()
            .filter(|g| g.contains(at))
            .copied()
            .collect();
        let degraded = !gaps.is_empty() || staleness > self.tw_config.set_period();
        Some(QueueMonitorAnswer {
            snapshot,
            frozen_at: cp.frozen_at,
            staleness,
            gaps,
            degraded,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultProfile, LatencyModel};

    fn program(poll: Nanos) -> AnalysisProgram {
        // Tiny: 64 cells, 2 windows → set period 64 + 128 = 192 ns.
        let tw = TimeWindowConfig::new(0, 1, 6, 2);
        AnalysisProgram::new(
            tw,
            ControlConfig {
                poll_period: poll,
                max_snapshots: 8,
            },
            &[0],
            32,
            1,
            1,
        )
    }

    #[test]
    fn poisoned_freeze_gate_recovers_and_records_a_gap() {
        let mut ap = program(64);
        // Panic while holding the freeze gate from another thread: the
        // next freeze-and-read must recover (not panic or wedge) and
        // surface the event as a CoverageGap.
        std::thread::scope(|s| {
            let gate = &ap.freeze_gate;
            let _ = s
                .spawn(move || {
                    let _g = gate.lock();
                    panic!("die mid-freeze");
                })
                .join();
        });
        assert!(ap.coverage_gaps(0).is_empty());
        ap.on_tick(64);
        assert!(
            !ap.checkpoints(0).is_empty(),
            "freeze-and-read still stores checkpoints after poisoning"
        );
        let gaps = ap.coverage_gaps(0);
        assert_eq!(gaps.len(), 1, "poisoning surfaced as a coverage gap");
        assert_eq!(gaps[0].from, gaps[0].to, "recovery gap is zero-length");
        let snap = ap.telemetry().snapshot();
        assert!(
            snap.counter_sum(names::CONTROL_COVERAGE_GAPS) >= 1,
            "gap counter incremented"
        );
    }

    #[test]
    fn inactive_ports_are_ignored() {
        let mut ap = program(64);
        assert!(!ap.is_active(5));
        ap.record_dequeue(5, FlowId(1), 10);
        ap.on_tick(64);
        assert!(ap.checkpoints(0)[0].windows.occupancy(0) == 0);
    }

    #[test]
    fn periodic_polls_create_checkpoints() {
        let mut ap = program(64);
        for t in 0..10u64 {
            ap.record_dequeue(0, FlowId(1), t);
        }
        ap.on_tick(64);
        assert_eq!(ap.checkpoints(0).len(), 1);
        assert!(!ap.checkpoints(0)[0].on_demand);
        assert_eq!(ap.checkpoints(0)[0].frozen_at, 64);
        // Data went into the frozen copy; the snapshot holds it.
        assert_eq!(ap.checkpoints(0)[0].windows.occupancy(0), 10);
    }

    #[test]
    fn rings_persist_across_freezes() {
        let mut ap = program(64);
        ap.record_dequeue(0, FlowId(1), 1);
        ap.on_tick(64);
        // The rings keep rolling: the second snapshot still holds the old
        // packet (the query slicer, not the registers, prevents double
        // counting across checkpoints). 66 maps to cell 2, away from
        // flow 1's cell 1, so nothing is evicted.
        ap.record_dequeue(0, FlowId(2), 66);
        ap.on_tick(128);
        let cps = ap.checkpoints(0);
        assert_eq!(cps.len(), 2);
        assert_eq!(cps[1].windows.occupancy(0), 2);
        // Query across both checkpoints: exactly two packets, no double
        // count of flow 1.
        let est = ap.query_time_windows(0, QueryInterval::new(0, 100));
        assert_eq!(est.counts[&FlowId(1)], 1.0);
        assert_eq!(est.counts[&FlowId(2)], 1.0);
    }

    #[test]
    fn query_spans_checkpoints() {
        let mut ap = program(16);
        // Packets at t = 0..16 land in the first checkpoint, 16..48 in the
        // second; a query over [0, 47] must stitch both without double
        // counting.
        for t in 0..16u64 {
            ap.record_dequeue(0, FlowId((t % 2) as u32), t);
        }
        ap.on_tick(16);
        for t in 16..48u64 {
            ap.record_dequeue(0, FlowId((t % 2) as u32), t);
        }
        ap.on_tick(48);
        let est = ap.query_time_windows(0, QueryInterval::new(0, 47));
        let total = est.total();
        assert!(
            (44.0..=48.0).contains(&total),
            "expected ≈48 packets across checkpoints, got {total}"
        );
    }

    #[test]
    fn dp_query_locks_special_set() {
        let mut ap = program(64);
        ap.record_dequeue(0, FlowId(7), 5);
        assert!(ap.dp_query(0, QueryInterval::new(0, 10), 6));
        // Our freeze-and-read completes synchronously, so the lock releases
        // immediately; a second trigger succeeds and the counter stays 0.
        assert!(ap.dp_query(0, QueryInterval::new(0, 10), 7));
        assert_eq!(ap.dp_queries_ignored, 0);
        let est = ap.query_special(0, Some(0)).expect("special checkpoint");
        assert_eq!(est.counts[&FlowId(7)], 1.0);
    }

    #[test]
    fn snapshot_ring_is_bounded() {
        let mut ap = program(4);
        for poll in 1..=20u64 {
            ap.on_tick(poll * 4);
        }
        assert_eq!(ap.checkpoints(0).len(), 8);
    }

    #[test]
    fn bandwidth_accounting_grows_per_poll() {
        let mut ap = program(64);
        ap.on_tick(64);
        let after_one = ap.bytes_read;
        ap.on_tick(128);
        assert_eq!(ap.bytes_read, after_one * 2);
        // 2 windows × 64 cells × 8 B + 32 QM entries × 16 B.
        assert_eq!(after_one, 2 * 64 * 8 + 32 * 16);
    }

    #[test]
    fn queue_monitor_query_picks_nearest() {
        let mut ap = program(64);
        ap.qm_enqueue(0, 0, FlowId(1), 1, 10);
        ap.on_tick(64);
        ap.qm_enqueue(0, 0, FlowId(2), 1, 70);
        ap.on_tick(128);
        let near_first = ap.query_queue_monitor(0, 70).unwrap();
        let culprits = near_first.original_culprits();
        assert_eq!(culprits.len(), 1);
        assert_eq!(culprits[0].flow, FlowId(1));
        assert_eq!(near_first.frozen_at, 64);
        assert_eq!(near_first.staleness, 6);
        assert!(!near_first.degraded);
        let near_second = ap.query_queue_monitor(0, 127).unwrap();
        assert_eq!(near_second.original_culprits()[0].flow, FlowId(2));
    }

    #[test]
    #[should_panic(expected = "coverage gap")]
    fn poll_slower_than_set_period_rejected() {
        let tw = TimeWindowConfig::new(0, 1, 4, 2);
        let _ = AnalysisProgram::new(
            tw,
            ControlConfig {
                poll_period: tw.set_period() + 1,
                max_snapshots: 1,
            },
            &[0],
            8,
            1,
            1,
        );
    }

    #[test]
    fn zero_fault_injector_matches_no_injector() {
        // A benign injector must leave every observable identical to the
        // original path: same checkpoints, same query answers, no health
        // noise beyond the attempt counter.
        let mut plain = program(64);
        let mut injected = program(64);
        injected.set_faults(FaultConfig::new(3));
        for t in 0..200u64 {
            plain.record_dequeue(0, FlowId((t % 3) as u32), t);
            injected.record_dequeue(0, FlowId((t % 3) as u32), t);
            if t % 64 == 0 {
                plain.on_tick(t);
                injected.on_tick(t);
            }
        }
        assert_eq!(plain.checkpoints(0).len(), injected.checkpoints(0).len());
        let q = QueryInterval::new(0, 199);
        let a = plain.query_time_windows(0, q);
        let b = injected.query_time_windows(0, q);
        assert_eq!(a.estimates.counts, b.estimates.counts);
        assert!(!a.degraded && !b.degraded);
        assert_eq!(injected.health().polls_failed, 0);
        assert_eq!(injected.health().coverage_gaps, 0);
        assert_eq!(plain.bytes_read, injected.bytes_read);
    }

    #[test]
    fn failed_reads_schedule_backed_off_retries() {
        let mut ap = program(64);
        ap.set_retry_policy(RetryPolicy {
            base_backoff: 16,
            max_backoff: 64,
            jitter: 0.0,
        });
        ap.set_faults(FaultConfig::new(5).with_base(FaultProfile::read_failures(1.0)));
        for t in 1..=100u64 {
            ap.on_tick(t * 4);
        }
        let health = ap.health();
        assert!(health.polls_failed > 0, "injector never failed a read");
        assert!(health.polls_retried > 0, "failures were not retried");
        assert_eq!(health.checkpoints_stored, 0, "every read fails");
        assert!(health.backoff_ceiling_hits > 0, "backoff never hit its cap");
        assert!(ap.checkpoints(0).is_empty());
    }

    #[test]
    fn coverage_gap_recorded_after_outage() {
        // t_set = 192 ns. A poll at 64, then control-plane silence until
        // 640 (e.g. the poller was wedged): the next successful poll must
        // record the > t_set gap, and queries over it must be flagged.
        let mut ap = program(64);
        ap.on_tick(64);
        ap.on_tick(640);
        assert_eq!(ap.health().coverage_gaps, 1);
        assert_eq!(ap.coverage_gaps(0), &[CoverageGap { from: 64, to: 640 }]);
        assert_eq!(ap.health().gap_ns, 576);

        let over_gap = ap.query_time_windows(0, QueryInterval::new(100, 300));
        assert!(over_gap.degraded, "query across the gap must be degraded");
        assert_eq!(over_gap.gaps.len(), 1);
        let qm = ap.query_queue_monitor(0, 300).expect("checkpoint exists");
        assert!(qm.degraded, "instant inside the gap must be degraded");

        // A query fully before the gap is clean.
        let before = ap.query_time_windows(0, QueryInterval::new(0, 60));
        assert!(!before.degraded);
    }

    #[test]
    fn open_ended_outage_degrades_future_queries() {
        let mut ap = program(64);
        ap.on_tick(64);
        // No further polls ever happen; a query reaching past 64 + t_set
        // must carry a synthetic open gap.
        let est = ap.query_time_windows(0, QueryInterval::new(0, 10_000));
        assert!(est.degraded);
        assert_eq!(est.gaps.last().unwrap().from, 64);
    }

    #[test]
    fn read_latency_locks_special_set_for_duration() {
        let mut ap = program(64);
        ap.set_faults(FaultConfig::new(2).with_base(FaultProfile {
            read_latency: LatencyModel::Fixed(50),
            ..FaultProfile::none()
        }));
        assert!(ap.dp_query(0, QueryInterval::new(0, 10), 100));
        // The special set is held for 50 ns: a trigger at 120 is rejected,
        // one at 160 is honored.
        assert!(!ap.dp_query(0, QueryInterval::new(0, 10), 120));
        assert_eq!(ap.dp_queries_ignored, 1);
        assert_eq!(ap.health().dp_triggers_rejected, 1);
        assert!(ap.dp_query(0, QueryInterval::new(0, 10), 160));
        assert_eq!(ap.dp_queries_ignored, 1);
    }

    #[test]
    fn poll_queued_behind_inflight_read_completes_later() {
        let mut ap = program(64);
        ap.set_faults(FaultConfig::new(4).with_base(FaultProfile {
            read_latency: LatencyModel::Fixed(100),
            ..FaultProfile::none()
        }));
        ap.on_tick(64); // read occupies the spare copy until 164
        ap.on_tick(128); // poll due but spare busy → queued
        assert_eq!(ap.checkpoints(0).len(), 1);
        ap.on_tick(200); // queued poll drains
        assert!(ap.checkpoints(0).len() >= 2);
    }

    #[test]
    fn dropped_checkpoints_open_gaps() {
        let mut ap = program(64);
        ap.set_faults(FaultConfig::new(9).with_base(FaultProfile {
            drop_checkpoint_prob: 1.0,
            ..FaultProfile::none()
        }));
        for t in 1..=10u64 {
            ap.on_tick(t * 64);
        }
        let health = ap.health();
        assert_eq!(health.checkpoints_stored, 0);
        assert_eq!(health.checkpoints_dropped, 10);
        assert!(ap.checkpoints(0).is_empty());
        // Every read crossed PCIe even though the checkpoints were lost.
        assert!(ap.bytes_read > 0);
    }

    #[test]
    fn empty_queue_monitor_checkpoint_is_guarded() {
        let mut ap = program(64);
        ap.on_tick(64);
        let cp = &ap.checkpoints(0)[0];
        assert!(cp.queue_monitor().is_some(), "FIFO ports have one monitor");
        // Out-of-range queue indices return None instead of panicking.
        assert!(ap.query_queue_monitor_for(0, 9, 64).is_none());
    }
}
